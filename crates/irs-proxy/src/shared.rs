//! Read-mostly shared proxy: the `&self` counterpart of [`IrsProxy`],
//! safe to share across connection threads behind a plain `Arc`.
//!
//! Three pieces of state, each synchronized to its access pattern:
//!
//! * **Filters** — read on every lookup, replaced only on refresh. An
//!   `RwLock<Arc<FilterSet>>` snapshot pointer: lookups hold the read
//!   lock just long enough to clone the `Arc`; a refresh deep-clones
//!   the set *off* the lock, mutates the copy, and swaps the pointer
//!   under a brief write lock. A refresh therefore never blocks
//!   in-flight lookups for longer than one pointer assignment.
//! * **Status cache** — mutated on every hit (LRU recency), so it is
//!   striped: `N` independent [`LruTtlCache`]s, each behind its own
//!   `Mutex`, keyed by the record's filter key. Lookups on different
//!   stripes never contend.
//! * **Counters** — sharded lock-free [`Counter`]s in an
//!   [`irs_obs::Registry`], snapshotted into the same [`ProxyStats`]
//!   struct the sequential proxy exposes and rendered as text
//!   exposition for the `Request::Metrics` wire message.

use crate::filterset::FilterSet;
use crate::health::{BreakerConfig, CircuitBreaker};
use crate::lru::LruTtlCache;
use crate::proxy::{IrsProxy, LookupOutcome, ProxyConfig, ProxyStats};
use irs_core::claim::RevocationStatus;
use irs_core::ids::{LedgerId, RecordId};
use irs_core::time::TimeMs;
use irs_obs::{Counter, Gauge, Registry, SpanRecorder};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Default cache stripe count.
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// The proxy's metric handles: registered once at construction, so the
/// lookup path touches only lock-free counters, never the registry map.
struct ProxyObs {
    registry: Arc<Registry>,
    lookups: Counter,
    filter_negative: Counter,
    cache_hits: Counter,
    ledger_queries: Counter,
    // Degradation counters (see DegradedStats).
    stale_served: Counter,
    unavailable: Counter,
    upstream_failures: Counter,
    // Point-in-time gauges, refreshed on render.
    breaker_opens: Gauge,
    cache_entries: Gauge,
    // Filter-pipeline gauges, mirrored from the current FilterSet
    // snapshot (which owns the authoritative counts).
    filter_rejected: Gauge,
    filter_resident_bytes: Gauge,
}

impl ProxyObs {
    fn new() -> ProxyObs {
        let registry = Arc::new(Registry::new());
        ProxyObs {
            lookups: registry.counter("irs_proxy_lookups_total"),
            filter_negative: registry.counter("irs_proxy_filter_negative_total"),
            cache_hits: registry.counter("irs_proxy_cache_hits_total"),
            ledger_queries: registry.counter("irs_proxy_ledger_queries_total"),
            stale_served: registry.counter("irs_proxy_stale_served_total"),
            unavailable: registry.counter("irs_proxy_unavailable_total"),
            upstream_failures: registry.counter("irs_proxy_upstream_failures_total"),
            breaker_opens: registry.gauge("irs_proxy_breaker_opens"),
            cache_entries: registry.gauge("irs_proxy_cache_entries"),
            filter_rejected: registry.gauge("irs_proxy_filter_rejected_updates"),
            filter_resident_bytes: registry.gauge("irs_proxy_filter_resident_bytes"),
            registry,
        }
    }
}

/// Counters for the degradation ladder: how often the proxy had to fall
/// back past a live upstream answer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradedStats {
    /// Answers served from a stale (possibly TTL-expired) cache entry
    /// because the upstream was unavailable or its breaker open.
    pub stale_served: u64,
    /// Lookups with no answer at all (upstream down, nothing cached).
    pub unavailable: u64,
    /// Upstream exchanges that failed (feeds the breakers).
    pub upstream_failures: u64,
    /// Breaker trips summed over all ledgers.
    pub breaker_opens: u64,
}

/// A proxy whose whole lookup path is `&self`.
pub struct SharedProxy {
    filters: RwLock<Arc<FilterSet>>,
    /// Serializes refreshes so two concurrent `update_filters` calls
    /// cannot lose each other's updates in the clone-swap.
    refresh_lock: Mutex<()>,
    cache_shards: Box<[Mutex<LruTtlCache<RecordId, RevocationStatus>>]>,
    obs: ProxyObs,
    /// Per-ledger circuit breakers, created on first contact. The map is
    /// read-mostly (a ledger is registered once, consulted on every
    /// degraded-path decision); breaker state itself is all atomics.
    health: RwLock<HashMap<LedgerId, Arc<CircuitBreaker>>>,
    breaker_config: BreakerConfig,
}

impl SharedProxy {
    /// Create a shared proxy with [`DEFAULT_CACHE_SHARDS`] cache stripes.
    pub fn new(config: ProxyConfig) -> SharedProxy {
        SharedProxy::with_shards(config, DEFAULT_CACHE_SHARDS)
    }

    /// Create with an explicit cache stripe count. Total capacity is
    /// split evenly across stripes.
    pub fn with_shards(config: ProxyConfig, num_shards: usize) -> SharedProxy {
        assert!(num_shards > 0, "need at least one cache shard");
        let per_shard = (config.cache_capacity / num_shards).max(1);
        let cache_shards = (0..num_shards)
            .map(|_| Mutex::new(LruTtlCache::new(per_shard, config.cache_ttl_ms)))
            .collect();
        SharedProxy {
            filters: RwLock::new(Arc::new(FilterSet::new())),
            refresh_lock: Mutex::new(()),
            cache_shards,
            obs: ProxyObs::new(),
            health: RwLock::new(HashMap::new()),
            breaker_config: BreakerConfig::default(),
        }
    }

    /// Override the circuit-breaker tuning (call before the proxy is
    /// shared; breakers created afterwards use the new config).
    pub fn with_breaker_config(mut self, config: BreakerConfig) -> SharedProxy {
        self.breaker_config = config;
        self
    }

    /// Promote a sequential [`IrsProxy`]: installed filters and counters
    /// carry over; the status cache starts cold (entries are
    /// re-populated by the first post-promotion lookups, bounded by the
    /// same TTL that already bounded their staleness).
    pub fn from_proxy(proxy: IrsProxy) -> SharedProxy {
        let shared = SharedProxy::new(proxy.config());
        *shared.filters.write() = Arc::new(proxy.filters);
        // Fresh counters start at zero, so carrying the sequential
        // totals over is a plain add.
        let stats = proxy.stats;
        shared.obs.lookups.add(stats.lookups);
        shared.obs.filter_negative.add(stats.filter_negative);
        shared.obs.cache_hits.add(stats.cache_hits);
        shared.obs.ledger_queries.add(stats.ledger_queries);
        shared
    }

    fn shard_of(&self, id: &RecordId) -> usize {
        (id.filter_key() % self.cache_shards.len() as u64) as usize
    }

    /// Classify a lookup: merged filter, then cache stripe, then ledger.
    /// Same decision pipeline as [`IrsProxy::lookup`], but `&self`.
    pub fn lookup(&self, id: RecordId, now: TimeMs) -> LookupOutcome {
        self.lookup_traced(id, now, None)
    }

    /// [`lookup`](Self::lookup) with per-stage tracing: the filter
    /// probe and the cache-stripe probe each record a span with their
    /// verdict, so a traced validate can attribute time to the filter
    /// versus the LRU versus the ledger round-trip.
    pub fn lookup_traced(
        &self,
        id: RecordId,
        now: TimeMs,
        trace: Option<&Arc<SpanRecorder>>,
    ) -> LookupOutcome {
        self.obs.lookups.inc();
        {
            let span = SpanRecorder::maybe(trace, "proxy:filter");
            let filters = self.filters_snapshot();
            if filters.might_be_revoked(id.filter_key()) == Some(false) {
                self.obs.filter_negative.inc();
                span.verdict("negative");
                return LookupOutcome::NotRevokedByFilter;
            }
            span.verdict("maybe");
        }
        {
            let span = SpanRecorder::maybe(trace, "proxy:cache");
            if let Some(status) = self.cache_shards[self.shard_of(&id)].lock().get(&id, now) {
                self.obs.cache_hits.inc();
                span.verdict("hit");
                return LookupOutcome::Cached(status);
            }
            span.verdict("miss");
        }
        self.obs.ledger_queries.inc();
        LookupOutcome::NeedsLedgerQuery
    }

    /// Record a ledger answer (populates the cache stripe).
    pub fn complete(&self, id: RecordId, status: RevocationStatus, now: TimeMs) {
        self.cache_shards[self.shard_of(&id)]
            .lock()
            .insert(id, status, now);
    }

    /// Last-resort read for a degraded upstream: the cached status for
    /// `id` regardless of TTL, with its age in milliseconds. Counts into
    /// [`DegradedStats`] as a stale serve when it produces an answer and
    /// as unavailable when it does not.
    pub fn lookup_stale(&self, id: RecordId, now: TimeMs) -> Option<(RevocationStatus, u64)> {
        let found = self.cache_shards[self.shard_of(&id)]
            .lock()
            .peek_stale(&id, now);
        match found {
            Some(hit) => {
                self.obs.stale_served.inc();
                Some(hit)
            }
            None => {
                self.obs.unavailable.inc();
                None
            }
        }
    }

    /// The circuit breaker for `ledger`, created closed on first use.
    pub fn breaker(&self, ledger: LedgerId) -> Arc<CircuitBreaker> {
        if let Some(b) = self.health.read().get(&ledger) {
            return b.clone();
        }
        let mut map = self.health.write();
        map.entry(ledger)
            .or_insert_with(|| Arc::new(CircuitBreaker::new(self.breaker_config)))
            .clone()
    }

    /// Record an upstream exchange outcome for `ledger` into its breaker
    /// (and the degradation counters).
    pub fn record_upstream(&self, ledger: LedgerId, ok: bool, now: TimeMs) {
        let breaker = self.breaker(ledger);
        if ok {
            breaker.on_success(now);
        } else {
            self.obs.upstream_failures.inc();
            breaker.on_failure(now);
        }
    }

    /// Drop a cached status (revocation push / probe finding).
    pub fn invalidate(&self, id: &RecordId) {
        self.cache_shards[self.shard_of(id)].lock().invalidate(id);
    }

    /// The current filter snapshot (cheap `Arc` clone; never blocks on
    /// a refresh in progress beyond its pointer swap).
    pub fn filters_snapshot(&self) -> Arc<FilterSet> {
        self.filters.read().clone()
    }

    /// Refresh the filters: `f` runs against a private copy of the
    /// current set, which then replaces the snapshot atomically.
    /// In-flight lookups keep reading the old snapshot until the swap;
    /// concurrent refreshes are serialized.
    pub fn update_filters<R>(&self, f: impl FnOnce(&mut FilterSet) -> R) -> R {
        let _serialize = self.refresh_lock.lock();
        let current = self.filters_snapshot();
        let mut working = (*current).clone();
        let result = f(&mut working);
        *self.filters.write() = Arc::new(working);
        result
    }

    /// Cache occupancy (sum over stripes).
    pub fn cache_len(&self) -> usize {
        self.cache_shards.iter().map(|s| s.lock().len()).sum()
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> ProxyStats {
        ProxyStats {
            lookups: self.obs.lookups.get(),
            filter_negative: self.obs.filter_negative.get(),
            cache_hits: self.obs.cache_hits.get(),
            ledger_queries: self.obs.ledger_queries.get(),
        }
    }

    /// A point-in-time copy of the degradation counters.
    pub fn degraded_stats(&self) -> DegradedStats {
        let breaker_opens = self.health.read().values().map(|b| b.opens()).sum();
        DegradedStats {
            stale_served: self.obs.stale_served.get(),
            unavailable: self.obs.unavailable.get(),
            upstream_failures: self.obs.upstream_failures.get(),
            breaker_opens,
        }
    }

    /// The proxy's metrics registry (servers attach request-path
    /// histograms here; tests read it directly).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.obs.registry
    }

    /// Text exposition of every proxy metric — the payload behind the
    /// `Request::Metrics` wire message. Refreshes the point-in-time
    /// gauges (breaker trips, cache occupancy) before rendering.
    pub fn render_metrics(&self) -> String {
        self.obs
            .breaker_opens
            .set(self.health.read().values().map(|b| b.opens()).sum());
        self.obs.cache_entries.set(self.cache_len() as u64);
        let filters = self.filters_snapshot();
        self.obs.filter_rejected.set(filters.rejected);
        self.obs
            .filter_resident_bytes
            .set(filters.resident_filter_bytes());
        self.obs.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::ids::LedgerId;
    use irs_filters::BloomFilter;
    use std::sync::atomic::Ordering;
    use std::thread;

    fn rid(n: u64) -> RecordId {
        RecordId::new(LedgerId(1), n)
    }

    fn install_filter(p: &SharedProxy, revoked: &[RecordId]) {
        let mut f = BloomFilter::with_params(1 << 14, 6, 0).unwrap();
        for id in revoked {
            f.insert(id.filter_key());
        }
        p.update_filters(|fs| fs.apply_full(LedgerId(1), 1, f.to_bytes()))
            .unwrap();
    }

    #[test]
    fn pipeline_matches_sequential_proxy() {
        let p = SharedProxy::new(ProxyConfig {
            cache_capacity: 16,
            cache_ttl_ms: 1_000,
        });
        install_filter(&p, &[rid(1)]);
        // Filter miss: local. Filter hit: ledger, then cached, then TTL.
        assert_eq!(
            p.lookup(rid(777_777), TimeMs(0)),
            LookupOutcome::NotRevokedByFilter
        );
        assert_eq!(p.lookup(rid(1), TimeMs(0)), LookupOutcome::NeedsLedgerQuery);
        p.complete(rid(1), RevocationStatus::Revoked, TimeMs(0));
        assert_eq!(
            p.lookup(rid(1), TimeMs(100)),
            LookupOutcome::Cached(RevocationStatus::Revoked)
        );
        assert_eq!(
            p.lookup(rid(1), TimeMs(2_000)),
            LookupOutcome::NeedsLedgerQuery,
            "cache entry expired"
        );
        p.complete(rid(1), RevocationStatus::Revoked, TimeMs(2_000));
        p.invalidate(&rid(1));
        assert_eq!(
            p.lookup(rid(1), TimeMs(2_001)),
            LookupOutcome::NeedsLedgerQuery,
            "invalidate purges"
        );
        let stats = p.stats();
        assert_eq!(stats.lookups, 5);
        assert_eq!(stats.filter_negative, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.ledger_queries, 3);
    }

    #[test]
    fn promotion_carries_filters_and_stats() {
        let mut seq = IrsProxy::new(ProxyConfig::default());
        let mut f = BloomFilter::with_params(1 << 14, 6, 0).unwrap();
        f.insert(rid(3).filter_key());
        seq.filters
            .apply_full(LedgerId(1), 4, f.to_bytes())
            .unwrap();
        let _ = seq.lookup(rid(3), TimeMs(0));
        let shared = SharedProxy::from_proxy(seq);
        assert_eq!(shared.filters_snapshot().version(LedgerId(1)), 4);
        assert_eq!(shared.stats().lookups, 1);
        // Filter still answers.
        assert_eq!(
            shared.lookup(rid(888_888), TimeMs(1)),
            LookupOutcome::NotRevokedByFilter
        );
    }

    #[test]
    fn refresh_does_not_block_lookups() {
        // Readers hammer lookups while a refresher swaps snapshots with
        // an artificially slow rebuild closure. Under the old design
        // (one mutex around everything) the readers would stall for the
        // whole rebuild; here they only ever wait for a pointer swap.
        let p = Arc::new(SharedProxy::new(ProxyConfig::default()));
        install_filter(&p, &[rid(1)]);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let _ = p.lookup(rid(n % 10_000), TimeMs(n));
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for version in 2..20u64 {
            p.update_filters(|fs| {
                let mut f = BloomFilter::with_params(1 << 14, 6, 0).unwrap();
                f.insert(rid(version).filter_key());
                // Simulate a slow refresh (network decode, union rebuild).
                std::thread::sleep(std::time::Duration::from_millis(2));
                fs.apply_full(LedgerId(1), version, f.to_bytes())
            })
            .unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert_eq!(p.filters_snapshot().version(LedgerId(1)), 19);
        assert_eq!(p.stats().lookups, total);
        assert!(total > 0);
    }

    #[test]
    fn stale_lookup_survives_ttl_expiry_and_counts() {
        let p = SharedProxy::new(ProxyConfig {
            cache_capacity: 16,
            cache_ttl_ms: 100,
        });
        p.complete(rid(5), RevocationStatus::Revoked, TimeMs(0));
        // Past TTL: the live path misses, the stale path still answers
        // with an honest age.
        assert_eq!(
            p.lookup(rid(5), TimeMs(500)),
            LookupOutcome::NeedsLedgerQuery
        );
        assert_eq!(
            p.lookup_stale(rid(5), TimeMs(500)),
            Some((RevocationStatus::Revoked, 500))
        );
        assert_eq!(p.lookup_stale(rid(6), TimeMs(500)), None);
        let d = p.degraded_stats();
        assert_eq!(d.stale_served, 1);
        assert_eq!(d.unavailable, 1);
        // Invalidation kills the stale copy too.
        p.invalidate(&rid(5));
        assert_eq!(p.lookup_stale(rid(5), TimeMs(501)), None);
    }

    #[test]
    fn per_ledger_breakers_trip_independently() {
        use crate::health::{BreakerConfig, BreakerState};
        let p = SharedProxy::new(ProxyConfig::default()).with_breaker_config(BreakerConfig {
            failure_threshold: 2,
            open_cooldown_ms: 100,
        });
        for t in 0..2 {
            p.record_upstream(LedgerId(1), false, TimeMs(t));
        }
        p.record_upstream(LedgerId(2), true, TimeMs(1));
        assert_eq!(p.breaker(LedgerId(1)).state(), BreakerState::Open);
        assert_eq!(p.breaker(LedgerId(2)).state(), BreakerState::Closed);
        assert_eq!(p.degraded_stats().breaker_opens, 1);
        assert_eq!(p.degraded_stats().upstream_failures, 2);
        // Ledger 2's staleness is bounded by its last success.
        assert_eq!(p.breaker(LedgerId(2)).staleness_ms(TimeMs(11)), Some(10));
    }

    #[test]
    fn metrics_exposition_and_traced_lookup_spans() {
        let p = SharedProxy::new(ProxyConfig {
            cache_capacity: 16,
            cache_ttl_ms: 1_000,
        });
        install_filter(&p, &[rid(1)]);
        // A traced miss records both pipeline stages with verdicts.
        let rec = SpanRecorder::new();
        assert_eq!(
            p.lookup_traced(rid(1), TimeMs(0), Some(&rec)),
            LookupOutcome::NeedsLedgerQuery
        );
        let spans = rec.spans();
        let named: Vec<_> = spans.iter().map(|s| (s.name, s.verdict)).collect();
        assert_eq!(
            named,
            [("proxy:filter", "maybe"), ("proxy:cache", "miss")],
            "filter then cache, each with its verdict"
        );
        // A filter-negative trace stops at the filter stage.
        let rec = SpanRecorder::new();
        p.lookup_traced(rid(999_999), TimeMs(0), Some(&rec));
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.spans()[0].verdict, "negative");
        // The same counters back stats() and the text exposition.
        p.complete(rid(1), RevocationStatus::Revoked, TimeMs(0));
        p.lookup(rid(1), TimeMs(1));
        let parsed = irs_obs::parse_exposition(&p.render_metrics());
        assert_eq!(parsed["irs_proxy_lookups_total"], 3.0);
        assert_eq!(parsed["irs_proxy_filter_negative_total"], 1.0);
        assert_eq!(parsed["irs_proxy_cache_hits_total"], 1.0);
        assert_eq!(parsed["irs_proxy_cache_entries"], 1.0);
        assert_eq!(parsed["irs_proxy_filter_rejected_updates"], 0.0);
        assert!(parsed["irs_proxy_filter_resident_bytes"] > 0.0);
        // A rejected update (wrong geometry) surfaces in the exposition.
        let odd = BloomFilter::with_params(1 << 12, 6, 0).unwrap();
        assert!(p
            .update_filters(|fs| fs.apply_full(LedgerId(2), 1, odd.to_bytes()))
            .is_err());
        let parsed = irs_obs::parse_exposition(&p.render_metrics());
        assert_eq!(parsed["irs_proxy_filter_rejected_updates"], 1.0);
    }

    #[test]
    fn striped_cache_is_coherent_under_concurrency() {
        let p = Arc::new(SharedProxy::with_shards(
            ProxyConfig {
                cache_capacity: 4_096,
                cache_ttl_ms: 1_000_000,
            },
            8,
        ));
        // No filters installed: every uncached lookup says NeedsLedgerQuery.
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let p = Arc::clone(&p);
                thread::spawn(move || {
                    for i in 0..500u64 {
                        let id = rid(t * 500 + i);
                        p.complete(id, RevocationStatus::Revoked, TimeMs(0));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(p.cache_len(), 2_000);
        for n in 0..2_000u64 {
            assert_eq!(
                p.lookup(rid(n), TimeMs(1)),
                LookupOutcome::Cached(RevocationStatus::Revoked),
                "id {n}"
            );
        }
    }
}
