//! Per-ledger filter management and the merged OR view.
//!
//! §4.4: each ledger publishes a filter over its **revoked** set, "which
//! the proxies would download and then take the OR of all ledger Bloom
//! filters. … if the photo does not hit in the filter, it is definitely
//! not revoked". Two publication pipelines coexist:
//!
//! * **Legacy**: one Bloom filter per ledger, identical geometry across
//!   the ecosystem, ORed into a single merged Bloom. Updates arrive as
//!   full snapshots (first contact) or deltas (steady state).
//! * **Tiered** (DESIGN.md §16): per ledger, a frozen fuse8 base sealed
//!   per epoch plus a small Bloom delta for churn since the seal. The
//!   fuse bases cannot be ORed (each has its own layout), so they are
//!   probed individually at lookup — cheap, since a fuse probe is three
//!   cache lines — while the small delta tiers share one geometry and
//!   are merged into a single delta view maintained *incrementally*:
//!   a delta update touches O(flipped bits), never O(ledgers × m).
//!
//! A ledger that upgrades to the tiered pipeline replaces its legacy
//! Bloom: the proxy drops the old per-ledger filter (and its share of the
//! big merged clone), which is where the tiered memory win comes from.
//!
//! Update accounting is accept-only: `bytes_received` and the update
//! counters move only when an update validates and applies; a rejected
//! update counts into `rejected` and changes nothing else.

use irs_core::ids::LedgerId;
use irs_filters::delta::BloomDelta;
use irs_filters::{BloomFilter, Filter, FilterError, TieredFilter};
use std::collections::HashMap;

/// Per-ledger filters plus their merged views. `Clone` supports the
/// shared proxy's copy-on-write refresh: build the next snapshot
/// off-lock, then swap it in atomically.
#[derive(Clone)]
pub struct FilterSet {
    per_ledger: HashMap<LedgerId, (u64, BloomFilter)>,
    merged: Option<BloomFilter>,
    /// Tiered per-ledger state (fuse base + Bloom delta). A `Vec`, not a
    /// map: the hot lookup path walks every entry anyway (fuse bases are
    /// probed individually), reads never mutate (the set is copy-on-write
    /// behind `SharedProxy`), and applies are refresh-cadence rare.
    tiered: Vec<(LedgerId, TieredFilter)>,
    /// OR of every tiered ledger's delta tier (shared delta geometry).
    merged_delta: Option<BloomFilter>,
    /// Whether `merged_delta` has any bit set — right after a compaction
    /// it usually does not, and the lookup path skips its probe entirely.
    merged_delta_live: bool,
    /// Bytes received across all *accepted* updates (experiment E6).
    pub bytes_received: u64,
    /// Accepted legacy updates applied (full, delta).
    pub updates: (u64, u64),
    /// Accepted tiered updates applied (full installs, base rolls,
    /// delta applies).
    pub tiered_updates: (u64, u64, u64),
    /// Updates rejected (malformed payload, geometry or version
    /// mismatch). Rejected updates contribute nothing to the byte or
    /// update counters.
    pub rejected: u64,
}

impl Default for FilterSet {
    fn default() -> Self {
        Self::new()
    }
}

impl FilterSet {
    /// Empty set.
    pub fn new() -> FilterSet {
        FilterSet {
            per_ledger: HashMap::new(),
            merged: None,
            tiered: Vec::new(),
            merged_delta: None,
            merged_delta_live: false,
            bytes_received: 0,
            updates: (0, 0),
            tiered_updates: (0, 0, 0),
            rejected: 0,
        }
    }

    /// Count an update outcome: accepted updates account their payload
    /// bytes, rejected ones only bump the rejection counter.
    fn account(&mut self, bytes: u64, out: Result<(), FilterError>) -> Result<(), FilterError> {
        match out {
            Ok(()) => {
                self.bytes_received += bytes;
                Ok(())
            }
            Err(e) => {
                self.rejected += 1;
                Err(e)
            }
        }
    }

    /// Install a full legacy snapshot for a ledger.
    pub fn apply_full(
        &mut self,
        ledger: LedgerId,
        version: u64,
        data: bytes::Bytes,
    ) -> Result<(), FilterError> {
        let n = data.len() as u64;
        let out = self.try_apply_full(ledger, version, data);
        self.account(n, out)
    }

    fn try_apply_full(
        &mut self,
        ledger: LedgerId,
        version: u64,
        data: bytes::Bytes,
    ) -> Result<(), FilterError> {
        let filter = BloomFilter::from_bytes(data)?;
        if let Some(existing) = self.any_filter() {
            if existing.m_bits() != filter.m_bits()
                || existing.k() != filter.k()
                || existing.seed() != filter.seed()
            {
                return Err(FilterError::BadParams(
                    "ledger filter geometry differs from ecosystem convention",
                ));
            }
        }
        self.per_ledger.insert(ledger, (version, filter));
        self.updates.0 += 1;
        self.rebuild();
        Ok(())
    }

    /// Apply a legacy delta for a ledger; the held version must match
    /// `from_version`. Atomic: a rejected delta leaves the set untouched.
    pub fn apply_delta(
        &mut self,
        ledger: LedgerId,
        from_version: u64,
        to_version: u64,
        data: bytes::Bytes,
    ) -> Result<(), FilterError> {
        let n = data.len() as u64;
        let out = self.try_apply_delta(ledger, from_version, to_version, data);
        self.account(n, out)
    }

    fn try_apply_delta(
        &mut self,
        ledger: LedgerId,
        from_version: u64,
        to_version: u64,
        data: bytes::Bytes,
    ) -> Result<(), FilterError> {
        let delta = BloomDelta::from_bytes(data)?;
        // A ledger on the tiered pipeline takes its deltas against the
        // delta *tier*, with epoch awareness.
        if self.tiered.iter().any(|(l, _)| *l == ledger) {
            return self.try_apply_tiered_delta_parsed(ledger, from_version, to_version, &delta);
        }
        let Some((version, filter)) = self.per_ledger.get_mut(&ledger) else {
            return Err(FilterError::BadParams("delta for unknown ledger"));
        };
        if *version != from_version {
            return Err(FilterError::BadParams("delta from_version mismatch"));
        }
        delta.apply(filter)?;
        *version = to_version;
        self.updates.1 += 1;
        self.rebuild();
        Ok(())
    }

    /// Install a full tiered state for a ledger (bootstrap or resync).
    /// Replaces any legacy Bloom held for the same ledger.
    pub fn apply_tiered(
        &mut self,
        ledger: LedgerId,
        epoch: u64,
        base: bytes::Bytes,
        delta_version: u64,
        delta: bytes::Bytes,
    ) -> Result<(), FilterError> {
        let n = (base.len() + delta.len()) as u64;
        let out = self.try_apply_tiered(ledger, epoch, base, delta_version, delta);
        self.account(n, out)
    }

    fn try_apply_tiered(
        &mut self,
        ledger: LedgerId,
        epoch: u64,
        base: bytes::Bytes,
        delta_version: u64,
        delta: bytes::Bytes,
    ) -> Result<(), FilterError> {
        let tier = TieredFilter::from_wire(epoch, &base, delta_version, delta)?;
        if let Some(existing) = self.any_tiered_delta() {
            let d = tier.delta();
            if existing.m_bits() != d.m_bits()
                || existing.k() != d.k()
                || existing.seed() != d.seed()
            {
                return Err(FilterError::BadParams(
                    "tiered delta geometry differs from ecosystem convention",
                ));
            }
        }
        // The tiered pipeline supersedes the ledger's legacy Bloom.
        if self.per_ledger.remove(&ledger).is_some() {
            self.rebuild();
        }
        match self.tiered.iter_mut().find(|(l, _)| *l == ledger) {
            Some(entry) => entry.1 = tier,
            None => self.tiered.push((ledger, tier)),
        }
        self.tiered_updates.0 += 1;
        self.rebuild_merged_delta();
        Ok(())
    }

    /// Roll a tiered ledger onto a freshly sealed base (single-epoch
    /// advance onto an empty delta).
    pub fn apply_base(
        &mut self,
        ledger: LedgerId,
        epoch: u64,
        data: bytes::Bytes,
    ) -> Result<(), FilterError> {
        let n = data.len() as u64;
        let out = self.try_apply_base(ledger, epoch, data);
        self.account(n, out)
    }

    fn try_apply_base(
        &mut self,
        ledger: LedgerId,
        epoch: u64,
        data: bytes::Bytes,
    ) -> Result<(), FilterError> {
        let Some((_, tier)) = self.tiered.iter_mut().find(|(l, _)| *l == ledger) else {
            return Err(FilterError::BadParams("base roll for unknown ledger"));
        };
        tier.roll_epoch(epoch, &data)?;
        self.tiered_updates.1 += 1;
        // The roll cleared this ledger's delta tier; rebuilding the small
        // merged delta removes its contribution (epoch rolls are rare and
        // the delta tier is tiny, so this is not a hot path).
        self.rebuild_merged_delta();
        Ok(())
    }

    /// Apply a delta update to a tiered ledger's delta tier.
    pub fn apply_tiered_delta(
        &mut self,
        ledger: LedgerId,
        from_version: u64,
        to_version: u64,
        data: bytes::Bytes,
    ) -> Result<(), FilterError> {
        let n = data.len() as u64;
        let out = match BloomDelta::from_bytes(data) {
            Ok(delta) => {
                self.try_apply_tiered_delta_parsed(ledger, from_version, to_version, &delta)
            }
            Err(e) => Err(e),
        };
        self.account(n, out)
    }

    fn try_apply_tiered_delta_parsed(
        &mut self,
        ledger: LedgerId,
        from_version: u64,
        to_version: u64,
        delta: &BloomDelta,
    ) -> Result<(), FilterError> {
        let Some((_, tier)) = self.tiered.iter_mut().find(|(l, _)| *l == ledger) else {
            return Err(FilterError::BadParams("delta for unknown ledger"));
        };
        if tier.delta_version() != from_version {
            return Err(FilterError::BadParams("delta from_version mismatch"));
        }
        tier.apply_delta(delta, to_version)?;
        self.tiered_updates.2 += 1;
        // Incremental merged-view maintenance: only the flipped positions
        // can have changed, and a position is set in the merged delta iff
        // it is set in *some* ledger's delta tier. O(flips × ledgers),
        // never a full O(ledgers × m) clone-and-OR.
        if let Some(merged) = self.merged_delta.as_mut() {
            for &pos in delta.positions() {
                if self.tiered.iter().any(|(_, t)| t.delta().bit(pos)) {
                    merged.set_bit(pos);
                } else {
                    merged.clear_bit(pos);
                }
            }
            self.merged_delta_live = !merged.is_empty();
        }
        Ok(())
    }

    /// The legacy version held for a ledger (0 = none).
    pub fn version(&self, ledger: LedgerId) -> u64 {
        self.per_ledger.get(&ledger).map(|(v, _)| *v).unwrap_or(0)
    }

    /// The tiered `(epoch, delta_version)` held for a ledger
    /// (`(0, 0)` = not on the tiered pipeline).
    pub fn tiered_state(&self, ledger: LedgerId) -> (u64, u64) {
        self.tiered
            .iter()
            .find(|(l, _)| *l == ledger)
            .map(|(_, t)| (t.epoch(), t.delta_version()))
            .unwrap_or((0, 0))
    }

    /// Number of ledgers with installed filters (either pipeline).
    pub fn ledger_count(&self) -> usize {
        self.per_ledger.len() + self.tiered.len()
    }

    fn any_filter(&self) -> Option<&BloomFilter> {
        self.per_ledger.values().map(|(_, f)| f).next()
    }

    fn any_tiered_delta(&self) -> Option<&BloomFilter> {
        self.tiered.first().map(|(_, t)| t.delta())
    }

    fn rebuild(&mut self) {
        let mut iter = self.per_ledger.values();
        let Some((_, first)) = iter.next() else {
            self.merged = None;
            return;
        };
        let mut merged = first.clone();
        for (_, f) in iter {
            merged
                .union_with(f)
                .expect("geometry validated at install time");
        }
        self.merged = Some(merged);
    }

    fn rebuild_merged_delta(&mut self) {
        let mut iter = self.tiered.iter().map(|(_, t)| t);
        let Some(first) = iter.next() else {
            self.merged_delta = None;
            self.merged_delta_live = false;
            return;
        };
        let mut merged = first.delta().clone();
        for t in iter {
            merged
                .union_with(t.delta())
                .expect("geometry validated at install time");
        }
        self.merged_delta_live = !merged.is_empty();
        self.merged_delta = Some(merged);
    }

    /// Query the installed filters: `Some(false)` = definitely not
    /// revoked on any ledger (answer locally), `Some(true)` = might be
    /// revoked (must query), `None` = no filters installed yet (must
    /// query). Probe order: the merged views first (one Bloom probe
    /// each), then the per-ledger fuse bases (three cache lines each).
    pub fn might_be_revoked(&self, key: u64) -> Option<bool> {
        if self.merged.is_none() && self.tiered.is_empty() {
            return None;
        }
        if let Some(m) = &self.merged {
            if m.contains(key) {
                return Some(true);
            }
        }
        if self.merged_delta_live {
            if let Some(d) = &self.merged_delta {
                if d.contains(key) {
                    return Some(true);
                }
            }
        }
        Some(
            self.tiered
                .iter()
                .any(|(_, t)| t.base().is_some_and(|b| b.contains(key))),
        )
    }

    /// Estimated FPR of the legacy merged filter at its current fill.
    pub fn merged_fpr(&self) -> Option<f64> {
        self.merged.as_ref().map(|f| f.estimated_fpr())
    }

    /// Total proxy-resident filter bytes: per-ledger filters of both
    /// pipelines plus the merged views (the E23 memory metric).
    pub fn resident_filter_bytes(&self) -> u64 {
        let legacy: u64 = self.per_ledger.values().map(|(_, f)| f.bits() / 8).sum();
        let merged = self.merged.as_ref().map_or(0, |f| f.bits() / 8);
        let tiered: u64 = self.tiered.iter().map(|(_, t)| t.resident_bits() / 8).sum();
        let merged_delta = self.merged_delta.as_ref().map_or(0, |f| f.bits() / 8);
        legacy + merged + tiered + merged_delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_filters::delta::BloomDelta;
    use irs_filters::{PublishOutcome, TieredConfig, TieredPublisher, TieredServe};
    use std::collections::HashSet;

    fn filter_with(keys: std::ops::Range<u64>) -> BloomFilter {
        let mut f = BloomFilter::with_params(1 << 14, 6, 7).unwrap();
        for k in keys {
            f.insert(k);
        }
        f
    }

    #[test]
    fn or_of_two_ledgers() {
        let mut fs = FilterSet::new();
        fs.apply_full(LedgerId(1), 1, filter_with(0..100).to_bytes())
            .unwrap();
        fs.apply_full(LedgerId(2), 1, filter_with(100..200).to_bytes())
            .unwrap();
        assert_eq!(fs.ledger_count(), 2);
        for k in 0..200u64 {
            assert_eq!(fs.might_be_revoked(k), Some(true), "key {k}");
        }
        // A far-away key should (almost surely) miss.
        let misses = (10_000..11_000u64)
            .filter(|&k| fs.might_be_revoked(k) == Some(false))
            .count();
        assert!(misses > 950, "misses {misses}");
    }

    #[test]
    fn empty_set_answers_none() {
        let fs = FilterSet::new();
        assert_eq!(fs.might_be_revoked(1), None);
        assert_eq!(fs.merged_fpr(), None);
    }

    #[test]
    fn delta_refresh() {
        let mut fs = FilterSet::new();
        let old = filter_with(0..100);
        fs.apply_full(LedgerId(1), 1, old.to_bytes()).unwrap();
        let new = filter_with(0..150);
        let delta = BloomDelta::diff(&old, &new).unwrap();
        fs.apply_delta(LedgerId(1), 1, 2, delta.to_bytes()).unwrap();
        assert_eq!(fs.version(LedgerId(1)), 2);
        for k in 100..150u64 {
            assert_eq!(fs.might_be_revoked(k), Some(true));
        }
        assert_eq!(fs.updates, (1, 1));
    }

    #[test]
    fn delta_version_mismatch_rejected() {
        let mut fs = FilterSet::new();
        let old = filter_with(0..10);
        fs.apply_full(LedgerId(1), 5, old.to_bytes()).unwrap();
        let delta = BloomDelta::diff(&old, &old).unwrap();
        assert!(fs.apply_delta(LedgerId(1), 4, 6, delta.to_bytes()).is_err());
        assert!(fs.apply_delta(LedgerId(9), 5, 6, delta.to_bytes()).is_err());
        assert_eq!(fs.rejected, 2);
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let mut fs = FilterSet::new();
        fs.apply_full(LedgerId(1), 1, filter_with(0..10).to_bytes())
            .unwrap();
        let odd = BloomFilter::with_params(1 << 12, 6, 7).unwrap();
        assert!(fs.apply_full(LedgerId(2), 1, odd.to_bytes()).is_err());
        assert_eq!(fs.rejected, 1);
    }

    #[test]
    fn bytes_accounted_only_for_accepted_updates() {
        let mut fs = FilterSet::new();
        let payload = filter_with(0..10).to_bytes();
        let n = payload.len() as u64;
        fs.apply_full(LedgerId(1), 1, payload).unwrap();
        assert_eq!(fs.bytes_received, n);
        // A rejected update (wrong geometry) moves neither bytes nor the
        // update counters — only the rejection counter.
        let odd = BloomFilter::with_params(1 << 12, 6, 7).unwrap();
        assert!(fs.apply_full(LedgerId(2), 1, odd.to_bytes()).is_err());
        assert_eq!(fs.bytes_received, n);
        assert_eq!(fs.updates, (1, 0));
        assert_eq!(fs.rejected, 1);
        // Same for a garbage delta.
        assert!(fs
            .apply_delta(LedgerId(1), 1, 2, bytes::Bytes::from_static(b"junk"))
            .is_err());
        assert_eq!(fs.bytes_received, n);
        assert_eq!(fs.rejected, 2);
    }

    /// Drive a server-side publisher and mirror its publications through
    /// the FilterSet exactly as the refresh worker would.
    fn sync_tiered(fs: &mut FilterSet, ledger: LedgerId, snap: &irs_filters::TieredSnapshot) {
        let (have_epoch, have_version) = fs.tiered_state(ledger);
        match snap.serve(have_epoch, have_version) {
            TieredServe::Current => {}
            TieredServe::Delta {
                from_version,
                to_version,
                delta,
            } => fs
                .apply_tiered_delta(ledger, from_version, to_version, delta.to_bytes())
                .unwrap(),
            TieredServe::Base { epoch, base } => fs.apply_base(ledger, epoch, base).unwrap(),
            TieredServe::Tiered {
                epoch,
                base,
                delta_version,
                delta,
            } => fs
                .apply_tiered(ledger, epoch, base, delta_version, delta)
                .unwrap(),
        }
    }

    #[test]
    fn tiered_install_supersedes_legacy_bloom() {
        let mut fs = FilterSet::new();
        fs.apply_full(LedgerId(1), 3, filter_with(0..50).to_bytes())
            .unwrap();
        let legacy_bytes = fs.resident_filter_bytes();
        // Size the delta tier to the workload, as production would; the
        // 50 keys cross compact_at, so the install carries a sealed base.
        let cfg = TieredConfig {
            delta_capacity: 64,
            delta_fpr: 1e-3,
            compact_at: 16,
        };
        let mut publisher = TieredPublisher::new(cfg).unwrap();
        publisher.publish(&(0..50u64).collect()).unwrap();
        sync_tiered(&mut fs, LedgerId(1), &publisher.snapshot());
        // Legacy filter dropped, tiered state installed.
        assert_eq!(fs.version(LedgerId(1)), 0);
        assert_ne!(fs.tiered_state(LedgerId(1)), (0, 0));
        assert_eq!(fs.ledger_count(), 1);
        for k in 0..50u64 {
            assert_eq!(fs.might_be_revoked(k), Some(true), "key {k}");
        }
        assert!(
            fs.resident_filter_bytes() < legacy_bytes,
            "tiered {} should undercut legacy {} resident bytes",
            fs.resident_filter_bytes(),
            legacy_bytes
        );
    }

    #[test]
    fn tiered_pipeline_tracks_publisher_without_false_negatives() {
        let cfg = TieredConfig {
            delta_capacity: 512,
            delta_fpr: 1e-3,
            compact_at: 128,
        };
        let mut pub_a = TieredPublisher::new(cfg).unwrap();
        let mut pub_b = TieredPublisher::new(cfg).unwrap();
        let mut fs = FilterSet::new();
        let mut revoked_a: HashSet<u64> = HashSet::new();
        let mut revoked_b: HashSet<u64> = HashSet::new();
        let mut compactions = 0;
        for round in 0..20u64 {
            for i in (round * 20)..((round + 1) * 20) {
                revoked_a.insert(irs_filters::hash::mix64(i));
                revoked_b.insert(irs_filters::hash::mix64(i + 1_000_000));
            }
            if matches!(
                pub_a.publish(&revoked_a).unwrap(),
                PublishOutcome::Compacted(_)
            ) {
                compactions += 1;
            }
            pub_b.publish(&revoked_b).unwrap();
            sync_tiered(&mut fs, LedgerId(1), &pub_a.snapshot());
            sync_tiered(&mut fs, LedgerId(2), &pub_b.snapshot());
            for &k in revoked_a.iter().chain(revoked_b.iter()) {
                assert_eq!(fs.might_be_revoked(k), Some(true), "lost key {k}");
            }
        }
        assert!(compactions >= 2, "sweep never compacted");
        assert_eq!(fs.ledger_count(), 2);
        // The incremental merged delta is bit-identical to a from-scratch
        // rebuild (only bit state matters; the merged view's insert
        // counter is not maintained and not used).
        let mut rebuilt = fs.clone();
        rebuilt.rebuild_merged_delta();
        let incremental = fs.merged_delta.as_ref().unwrap();
        let ground_truth = rebuilt.merged_delta.as_ref().unwrap();
        for pos in 0..incremental.m_bits() {
            assert_eq!(
                incremental.bit(pos),
                ground_truth.bit(pos),
                "incremental merged-delta maintenance drifted at bit {pos}"
            );
        }
    }

    #[test]
    fn tiered_version_and_epoch_mismatches_rejected() {
        let mut publisher = TieredPublisher::new(TieredConfig::default()).unwrap();
        publisher.publish(&(0..50u64).collect()).unwrap();
        let mut fs = FilterSet::new();
        sync_tiered(&mut fs, LedgerId(1), &publisher.snapshot());
        let snap = publisher.snapshot();
        // Base roll for a ledger we don't hold tiered state for.
        assert!(fs
            .apply_base(LedgerId(9), 2, snap.base_bytes().clone())
            .is_err());
        // Delta against the wrong from_version.
        let empty = BloomDelta::diff(snap.delta(), snap.delta()).unwrap();
        assert!(fs
            .apply_tiered_delta(LedgerId(1), 77, 78, empty.to_bytes())
            .is_err());
        assert_eq!(fs.rejected, 2);
    }
}
