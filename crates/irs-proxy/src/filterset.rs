//! Per-ledger filter management and the merged OR filter.
//!
//! §4.4: each ledger publishes a Bloom filter, "which the proxies would
//! download and then take the OR of all ledger Bloom filters. … if the
//! photo does not hit in the filter, it is definitely not revoked". For
//! that soundness property — and for the paper's 2 %-FPR ⇒ 50×-reduction
//! arithmetic — the published filter must cover each ledger's **revoked**
//! set (see `irs_ledger::store::LedgerStore::filter_index`). Updates
//! arrive as full snapshots (first contact) or deltas (steady state). All
//! ledgers must publish with identical filter geometry for the OR to be
//! meaningful; the ecosystem fixes (m, k, seed) by convention, which this
//! type enforces.

use irs_core::ids::LedgerId;
use irs_filters::delta::BloomDelta;
use irs_filters::{BloomFilter, Filter, FilterError};
use std::collections::HashMap;

/// Per-ledger filters plus their OR. `Clone` supports the shared
/// proxy's copy-on-write refresh: build the next snapshot off-lock,
/// then swap it in atomically.
#[derive(Clone)]
pub struct FilterSet {
    per_ledger: HashMap<LedgerId, (u64, BloomFilter)>,
    merged: Option<BloomFilter>,
    /// Bytes received across all updates (experiment E6).
    pub bytes_received: u64,
    /// Updates applied (full, delta).
    pub updates: (u64, u64),
}

impl Default for FilterSet {
    fn default() -> Self {
        Self::new()
    }
}

impl FilterSet {
    /// Empty set.
    pub fn new() -> FilterSet {
        FilterSet {
            per_ledger: HashMap::new(),
            merged: None,
            bytes_received: 0,
            updates: (0, 0),
        }
    }

    /// Install a full snapshot for a ledger.
    pub fn apply_full(
        &mut self,
        ledger: LedgerId,
        version: u64,
        data: bytes::Bytes,
    ) -> Result<(), FilterError> {
        self.bytes_received += data.len() as u64;
        let filter = BloomFilter::from_bytes(data)?;
        if let Some(existing) = self.any_filter() {
            if existing.m_bits() != filter.m_bits()
                || existing.k() != filter.k()
                || existing.seed() != filter.seed()
            {
                return Err(FilterError::BadParams(
                    "ledger filter geometry differs from ecosystem convention",
                ));
            }
        }
        self.per_ledger.insert(ledger, (version, filter));
        self.updates.0 += 1;
        self.rebuild();
        Ok(())
    }

    /// Apply a delta for a ledger; the held version must match
    /// `from_version`.
    pub fn apply_delta(
        &mut self,
        ledger: LedgerId,
        from_version: u64,
        to_version: u64,
        data: bytes::Bytes,
    ) -> Result<(), FilterError> {
        self.bytes_received += data.len() as u64;
        let delta = BloomDelta::from_bytes(data)?;
        let Some((version, filter)) = self.per_ledger.get_mut(&ledger) else {
            return Err(FilterError::BadParams("delta for unknown ledger"));
        };
        if *version != from_version {
            return Err(FilterError::BadParams("delta from_version mismatch"));
        }
        delta.apply(filter)?;
        *version = to_version;
        self.updates.1 += 1;
        self.rebuild();
        Ok(())
    }

    /// The version held for a ledger (0 = none).
    pub fn version(&self, ledger: LedgerId) -> u64 {
        self.per_ledger.get(&ledger).map(|(v, _)| *v).unwrap_or(0)
    }

    /// Number of ledgers with installed filters.
    pub fn ledger_count(&self) -> usize {
        self.per_ledger.len()
    }

    fn any_filter(&self) -> Option<&BloomFilter> {
        self.per_ledger.values().map(|(_, f)| f).next()
    }

    fn rebuild(&mut self) {
        let mut iter = self.per_ledger.values();
        let Some((_, first)) = iter.next() else {
            self.merged = None;
            return;
        };
        let mut merged = first.clone();
        for (_, f) in iter {
            merged
                .union_with(f)
                .expect("geometry validated at install time");
        }
        self.merged = Some(merged);
    }

    /// Query the merged filter: `Some(false)` = definitely not revoked
    /// on any ledger (answer locally), `Some(true)` = might be revoked
    /// (must query), `None` = no filters installed yet (must query).
    pub fn might_be_revoked(&self, key: u64) -> Option<bool> {
        self.merged.as_ref().map(|f| f.contains(key))
    }

    /// Estimated FPR of the merged filter at its current fill.
    pub fn merged_fpr(&self) -> Option<f64> {
        self.merged.as_ref().map(|f| f.estimated_fpr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_filters::delta::BloomDelta;

    fn filter_with(keys: std::ops::Range<u64>) -> BloomFilter {
        let mut f = BloomFilter::with_params(1 << 14, 6, 7).unwrap();
        for k in keys {
            f.insert(k);
        }
        f
    }

    #[test]
    fn or_of_two_ledgers() {
        let mut fs = FilterSet::new();
        fs.apply_full(LedgerId(1), 1, filter_with(0..100).to_bytes())
            .unwrap();
        fs.apply_full(LedgerId(2), 1, filter_with(100..200).to_bytes())
            .unwrap();
        assert_eq!(fs.ledger_count(), 2);
        for k in 0..200u64 {
            assert_eq!(fs.might_be_revoked(k), Some(true), "key {k}");
        }
        // A far-away key should (almost surely) miss.
        let misses = (10_000..11_000u64)
            .filter(|&k| fs.might_be_revoked(k) == Some(false))
            .count();
        assert!(misses > 950, "misses {misses}");
    }

    #[test]
    fn empty_set_answers_none() {
        let fs = FilterSet::new();
        assert_eq!(fs.might_be_revoked(1), None);
        assert_eq!(fs.merged_fpr(), None);
    }

    #[test]
    fn delta_refresh() {
        let mut fs = FilterSet::new();
        let old = filter_with(0..100);
        fs.apply_full(LedgerId(1), 1, old.to_bytes()).unwrap();
        let new = filter_with(0..150);
        let delta = BloomDelta::diff(&old, &new).unwrap();
        fs.apply_delta(LedgerId(1), 1, 2, delta.to_bytes()).unwrap();
        assert_eq!(fs.version(LedgerId(1)), 2);
        for k in 100..150u64 {
            assert_eq!(fs.might_be_revoked(k), Some(true));
        }
        assert_eq!(fs.updates, (1, 1));
    }

    #[test]
    fn delta_version_mismatch_rejected() {
        let mut fs = FilterSet::new();
        let old = filter_with(0..10);
        fs.apply_full(LedgerId(1), 5, old.to_bytes()).unwrap();
        let delta = BloomDelta::diff(&old, &old).unwrap();
        assert!(fs.apply_delta(LedgerId(1), 4, 6, delta.to_bytes()).is_err());
        assert!(fs.apply_delta(LedgerId(9), 5, 6, delta.to_bytes()).is_err());
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let mut fs = FilterSet::new();
        fs.apply_full(LedgerId(1), 1, filter_with(0..10).to_bytes())
            .unwrap();
        let odd = BloomFilter::with_params(1 << 12, 6, 7).unwrap();
        assert!(fs.apply_full(LedgerId(2), 1, odd.to_bytes()).is_err());
    }

    #[test]
    fn bytes_accounting() {
        let mut fs = FilterSet::new();
        let payload = filter_with(0..10).to_bytes();
        let n = payload.len() as u64;
        fs.apply_full(LedgerId(1), 1, payload).unwrap();
        assert_eq!(fs.bytes_received, n);
    }
}
