//! A fixed-capacity LRU cache with per-entry TTL.
//!
//! O(1) get/insert via a HashMap into an intrusive doubly-linked list kept
//! in a slab. Used for the proxy's status cache; the TTL bounds revocation
//! staleness (Nongoal #4 tolerates bounded delay, and the TTL *is* that
//! bound on the proxy path).

use irs_core::time::TimeMs;
use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    expires: TimeMs,
    prev: usize,
    next: usize,
}

/// LRU + TTL cache.
pub struct LruTtlCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
    capacity: usize,
    ttl_ms: u64,
    hits: u64,
    misses: u64,
    expired: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruTtlCache<K, V> {
    /// Create a cache holding at most `capacity` entries, each valid for
    /// `ttl_ms` after insertion.
    pub fn new(capacity: usize, ttl_ms: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be > 0");
        LruTtlCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            ttl_ms,
            hits: 0,
            misses: 0,
            expired: 0,
        }
    }

    /// Entries currently stored (including not-yet-collected expired ones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses, expired) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.expired)
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Get a live entry, refreshing its recency. Expired entries count as
    /// misses but are *kept* (demoted in place) so that a degraded proxy
    /// can still serve them as stale answers via [`peek_stale`]; capacity
    /// eviction reclaims them eventually.
    ///
    /// [`peek_stale`]: LruTtlCache::peek_stale
    pub fn get(&mut self, key: &K, now: TimeMs) -> Option<V> {
        let Some(&idx) = self.map.get(key) else {
            self.misses += 1;
            return None;
        };
        if self.slab[idx].expires < now {
            self.expired += 1;
            self.misses += 1;
            return None;
        }
        self.detach(idx);
        self.push_front(idx);
        self.hits += 1;
        Some(self.slab[idx].value.clone())
    }

    /// Read an entry regardless of TTL, without touching recency or the
    /// hit/miss counters. Returns the value and its age in milliseconds
    /// since insertion — the staleness bound a degraded proxy attaches to
    /// the answer. This is the stale-serve path: when the upstream ledger
    /// is unreachable, a bounded-stale answer beats no answer (Nongoal #4).
    ///
    /// Both subtractions saturate: if the caller's clock regressed past
    /// the insertion timestamp (chaos clock skew), the age reads 0
    /// rather than underflowing.
    pub fn peek_stale(&self, key: &K, now: TimeMs) -> Option<(V, u64)> {
        let &idx = self.map.get(key)?;
        let node = &self.slab[idx];
        let inserted = node.expires.0.saturating_sub(self.ttl_ms);
        Some((node.value.clone(), now.0.saturating_sub(inserted)))
    }

    /// Insert or refresh an entry (resets its TTL), evicting the LRU entry
    /// if at capacity.
    pub fn insert(&mut self, key: K, value: V, now: TimeMs) {
        let expires = now.plus(self.ttl_ms);
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.slab[idx].expires = expires;
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.remove_idx(victim);
        }
        let node = Node {
            key: key.clone(),
            value,
            expires,
            prev: NIL,
            next: NIL,
        };
        let idx = if let Some(free) = self.free.pop() {
            self.slab[free] = node;
            free
        } else {
            self.slab.push(node);
            self.slab.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn remove_idx(&mut self, idx: usize) {
        self.detach(idx);
        let key = self.slab[idx].key.clone();
        self.map.remove(&key);
        self.free.push(idx);
    }

    /// Remove a key explicitly (e.g. on a revocation push).
    pub fn invalidate(&mut self, key: &K) {
        if let Some(&idx) = self.map.get(key) {
            self.remove_idx(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> TimeMs {
        TimeMs(ms)
    }

    #[test]
    fn basic_get_insert() {
        let mut c: LruTtlCache<u64, &str> = LruTtlCache::new(4, 1000);
        assert_eq!(c.get(&1, t(0)), None);
        c.insert(1, "a", t(0));
        assert_eq!(c.get(&1, t(10)), Some("a"));
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c: LruTtlCache<u64, u64> = LruTtlCache::new(3, 10_000);
        c.insert(1, 1, t(0));
        c.insert(2, 2, t(1));
        c.insert(3, 3, t(2));
        // Touch 1 so 2 becomes LRU.
        c.get(&1, t(3));
        c.insert(4, 4, t(4));
        assert_eq!(c.get(&2, t(5)), None, "2 should be evicted");
        assert_eq!(c.get(&1, t(5)), Some(1));
        assert_eq!(c.get(&3, t(5)), Some(3));
        assert_eq!(c.get(&4, t(5)), Some(4));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn ttl_expiry() {
        let mut c: LruTtlCache<u64, u64> = LruTtlCache::new(4, 100);
        c.insert(1, 1, t(0));
        assert_eq!(c.get(&1, t(100)), Some(1), "at ttl boundary still live");
        assert_eq!(c.get(&1, t(101)), None, "past ttl expired");
        let (_, _, expired) = c.stats();
        assert_eq!(expired, 1);
        // Expired entries linger for stale-serve until capacity evicts
        // them; they never come back as live answers.
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1, t(200)), None);
    }

    #[test]
    fn peek_stale_reads_expired_entries_with_age() {
        let mut c: LruTtlCache<u64, u64> = LruTtlCache::new(4, 100);
        c.insert(1, 41, t(50));
        // Live entry: peek works and reports age since insertion.
        assert_eq!(c.peek_stale(&1, t(60)), Some((41, 10)));
        // Expired for get(), still peekable with an honest age.
        assert_eq!(c.get(&1, t(500)), None);
        assert_eq!(c.peek_stale(&1, t(500)), Some((41, 450)));
        // Unknown key: nothing to serve.
        assert_eq!(c.peek_stale(&2, t(500)), None);
        // Invalidation removes it from the stale path too (a revocation
        // push must never be resurrected as a stale answer).
        c.invalidate(&1);
        assert_eq!(c.peek_stale(&1, t(501)), None);
    }

    #[test]
    fn peek_stale_survives_clock_regression() {
        // Chaos clock skew: `now` regresses to *before* the insertion
        // timestamp. The age arithmetic must saturate to 0 — in a debug
        // build a bare subtraction would panic on underflow here.
        let mut c: LruTtlCache<u64, u64> = LruTtlCache::new(4, 100);
        c.insert(1, 41, t(50));
        assert_eq!(
            c.peek_stale(&1, t(10)),
            Some((41, 0)),
            "a regressed clock reads age 0, not an underflow"
        );
        // Regression all the way to the epoch.
        assert_eq!(c.peek_stale(&1, t(0)), Some((41, 0)));
        // And the normal path still reports a forward age afterwards.
        assert_eq!(c.peek_stale(&1, t(80)), Some((41, 30)));
    }

    #[test]
    fn expired_entries_still_evicted_under_capacity_pressure() {
        // Expired entries are deliberately kept for the stale-serve path,
        // but they occupy slots: under capacity pressure they must leave
        // through ordinary LRU eviction, not pin the cache full forever.
        let mut c: LruTtlCache<u64, u64> = LruTtlCache::new(3, 10);
        c.insert(1, 1, t(0));
        c.insert(2, 2, t(1));
        c.insert(3, 3, t(2));
        // All three are long expired; failed gets demote nothing (expired
        // lookups do not refresh recency), so 1 is still the LRU victim.
        for k in [1u64, 2, 3] {
            assert_eq!(c.get(&k, t(1_000)), None, "entry {k} must be expired");
        }
        assert_eq!(c.len(), 3, "expired entries linger for stale-serve");
        // Inserting past capacity reclaims the expired entries in LRU
        // order — the cache never refuses a live insert to protect a
        // corpse.
        c.insert(4, 4, t(1_001));
        c.insert(5, 5, t(1_002));
        assert_eq!(c.len(), 3);
        assert_eq!(c.peek_stale(&1, t(1_003)), None, "oldest expired evicted");
        assert_eq!(c.peek_stale(&2, t(1_003)), None, "next expired evicted");
        assert!(
            c.peek_stale(&3, t(1_003)).is_some(),
            "newest survivor stays"
        );
        assert_eq!(c.get(&4, t(1_003)), Some(4));
        assert_eq!(c.get(&5, t(1_003)), Some(5));
    }

    #[test]
    fn reinsert_refreshes_ttl_and_value() {
        let mut c: LruTtlCache<u64, u64> = LruTtlCache::new(4, 100);
        c.insert(1, 1, t(0));
        c.insert(1, 2, t(90));
        assert_eq!(c.get(&1, t(150)), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c: LruTtlCache<u64, u64> = LruTtlCache::new(4, 1000);
        c.insert(1, 1, t(0));
        c.invalidate(&1);
        assert_eq!(c.get(&1, t(1)), None);
        c.invalidate(&99); // no-op
    }

    #[test]
    fn slab_reuse_after_eviction() {
        let mut c: LruTtlCache<u64, u64> = LruTtlCache::new(2, 10_000);
        for i in 0..100u64 {
            c.insert(i, i, t(i));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&99, t(200)), Some(99));
        assert_eq!(c.get(&98, t(200)), Some(98));
        assert_eq!(c.get(&0, t(200)), None);
    }

    #[test]
    fn capacity_one() {
        let mut c: LruTtlCache<u64, u64> = LruTtlCache::new(1, 1000);
        c.insert(1, 1, t(0));
        c.insert(2, 2, t(1));
        assert_eq!(c.get(&1, t(2)), None);
        assert_eq!(c.get(&2, t(2)), Some(2));
    }

    #[test]
    fn heavy_churn_consistency() {
        let mut c: LruTtlCache<u64, u64> = LruTtlCache::new(16, 50);
        for step in 0..10_000u64 {
            let k = step % 37;
            if step % 3 == 0 {
                c.insert(k, step, t(step));
            } else {
                if let Some(v) = c.get(&k, t(step)) {
                    // Only steps divisible by 3 ever inserted, and a hit's
                    // value must be the key's residue class.
                    assert_eq!(v % 3, 0);
                    assert_eq!(v % 37, k);
                }
            }
            assert!(c.len() <= 16);
        }
    }
}
