//! Per-ledger health tracking: a lock-free circuit breaker.
//!
//! The proxy records every upstream call outcome into a per-ledger
//! [`CircuitBreaker`]. A run of failures *opens* the breaker: the proxy
//! stops hammering the dead ledger and serves from its last-good filter
//! snapshot and TTL cache instead (stale-serve — see
//! `SharedProxy::lookup_stale`). After a cooldown the breaker goes
//! *half-open* and admits exactly one probe call; a success closes it, a
//! failure re-opens it. All state is atomics (consistent with the
//! concurrency design in DESIGN.md §6): connection threads never take a
//! lock to consult or update health.
//!
//! Time is passed in as [`TimeMs`] — the same injected-clock convention
//! as the rest of the workspace, which keeps every transition testable
//! without sleeps.

use irs_core::time::TimeMs;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker waits before admitting a half-open probe.
    pub open_cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            open_cooldown_ms: 1_000,
        }
    }
}

/// Observable breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls flow.
    Closed,
    /// Tripped: calls are refused (serve stale instead).
    Open,
    /// Cooldown elapsed: one probe call is in flight.
    HalfOpen,
}

const CLOSED: u8 = 0;
const OPEN: u8 = 1;
const HALF_OPEN: u8 = 2;

/// A lock-free circuit breaker (closed → open → half-open → closed).
pub struct CircuitBreaker {
    state: AtomicU8,
    consecutive_failures: AtomicU32,
    opened_at_ms: AtomicU64,
    /// Last time an upstream exchange for this ledger succeeded; 0 =
    /// never. Drives the staleness bound on degraded responses.
    last_good_ms: AtomicU64,
    /// Times the breaker has tripped open (monitoring).
    opens: AtomicU64,
    config: BreakerConfig,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            state: AtomicU8::new(CLOSED),
            consecutive_failures: AtomicU32::new(0),
            opened_at_ms: AtomicU64::new(0),
            last_good_ms: AtomicU64::new(0),
            opens: AtomicU64::new(0),
            config,
        }
    }

    /// Whether a call may proceed right now. While open, returns false
    /// until the cooldown elapses; then exactly one caller wins the
    /// half-open probe slot (the CAS) and gets a true, everyone else
    /// keeps getting false until the probe reports back.
    pub fn allow(&self, now: TimeMs) -> bool {
        match self.state.load(Ordering::SeqCst) {
            CLOSED => true,
            HALF_OPEN => false, // a probe is already in flight
            _open => {
                let opened = self.opened_at_ms.load(Ordering::SeqCst);
                if now.0.saturating_sub(opened) < self.config.open_cooldown_ms {
                    return false;
                }
                // Cooldown over: try to claim the probe slot.
                self.state
                    .compare_exchange(OPEN, HALF_OPEN, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            }
        }
    }

    /// Record a successful upstream exchange: closes the breaker (probe
    /// success) and resets the failure run.
    pub fn on_success(&self, now: TimeMs) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        self.last_good_ms.store(now.0.max(1), Ordering::SeqCst);
        self.state.store(CLOSED, Ordering::SeqCst);
    }

    /// Record a failed upstream exchange. A failed half-open probe
    /// re-opens immediately; in closed state the breaker trips once the
    /// consecutive-failure run reaches the threshold.
    pub fn on_failure(&self, now: TimeMs) {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        let state = self.state.load(Ordering::SeqCst);
        let should_open =
            state == HALF_OPEN || (state == CLOSED && failures >= self.config.failure_threshold);
        if should_open {
            self.opened_at_ms.store(now.0, Ordering::SeqCst);
            // Only count a genuine transition (racing failures may both
            // see CLOSED; the CAS picks one).
            if self.state.swap(OPEN, Ordering::SeqCst) != OPEN {
                self.opens.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Current state for monitoring/tests.
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::SeqCst) {
            CLOSED => BreakerState::Closed,
            OPEN => BreakerState::Open,
            _ => BreakerState::HalfOpen,
        }
    }

    /// Current consecutive-failure run.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures.load(Ordering::SeqCst)
    }

    /// Times the breaker has tripped open.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::SeqCst)
    }

    /// Milliseconds since the last successful upstream exchange —
    /// the staleness bound attached to degraded answers. `None` when the
    /// ledger has never been reached.
    pub fn staleness_ms(&self, now: TimeMs) -> Option<u64> {
        match self.last_good_ms.load(Ordering::SeqCst) {
            0 => None,
            t => Some(now.0.saturating_sub(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_cooldown_ms: cooldown,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = breaker(3, 100);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(TimeMs(1));
        b.on_failure(TimeMs(2));
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        assert!(b.allow(TimeMs(3)));
        b.on_failure(TimeMs(3));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(TimeMs(4)), "open refuses immediately");
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_the_failure_run() {
        let b = breaker(3, 100);
        b.on_failure(TimeMs(1));
        b.on_failure(TimeMs(2));
        b.on_success(TimeMs(3));
        b.on_failure(TimeMs(4));
        b.on_failure(TimeMs(5));
        assert_eq!(b.state(), BreakerState::Closed, "run was reset");
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = breaker(1, 100);
        b.on_failure(TimeMs(0));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(TimeMs(50)), "cooldown not elapsed");
        assert!(b.allow(TimeMs(100)), "first caller wins the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(TimeMs(101)), "second caller must wait");
        // Probe succeeds → closed.
        b.on_success(TimeMs(102));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(TimeMs(103)));
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let b = breaker(1, 100);
        b.on_failure(TimeMs(0));
        assert!(b.allow(TimeMs(100)));
        b.on_failure(TimeMs(100));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(TimeMs(150)), "cooldown restarted at 100");
        assert!(b.allow(TimeMs(200)));
        assert_eq!(b.opens(), 2);
    }

    #[test]
    fn staleness_tracks_last_success() {
        let b = breaker(1, 100);
        assert_eq!(b.staleness_ms(TimeMs(5)), None, "never reached");
        b.on_success(TimeMs(10));
        assert_eq!(b.staleness_ms(TimeMs(25)), Some(15));
        b.on_failure(TimeMs(30));
        assert_eq!(b.staleness_ms(TimeMs(40)), Some(30), "failures age it");
    }

    #[test]
    fn concurrent_probe_race_admits_one() {
        use std::sync::Arc;
        let b = Arc::new(breaker(1, 10));
        b.on_failure(TimeMs(0));
        let winners: usize = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || usize::from(b.allow(TimeMs(10))))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1, "exactly one thread may probe");
    }
}
