//! The IRS proxy (§4.2–§4.4).
//!
//! Browsers never talk to ledgers directly; they query a proxy that
//! (a) hides the viewer's identity behind aggregation (§4.2, modeled on
//! Trusted Recursive Resolver / Oblivious DNS / Private Relay), (b) caches
//! lookups ("which would also further reduce viewing latency"), and
//! (c) holds the OR of every ledger's Bloom filter so that photos that hit
//! no filter are answered locally with *definitely not revoked* (§4.4).
//!
//! * [`lru`] — the TTL'd LRU lookup cache;
//! * [`filterset`] — per-ledger filter versions, delta refresh, and the
//!   merged OR filter;
//! * [`proxy`] — [`IrsProxy`]: the decision pipeline (filter → cache →
//!   ledger) as a sans-io state machine usable from both the simulator and
//!   the TCP server;
//! * [`batch`] — upstream query batching with a k-anonymity floor (the
//!   aggregation that §4.2's privacy argument rests on);
//! * [`privacy`] — attribution accounting for experiment E13.

//! * [`shared`] — [`SharedProxy`]: the same pipeline with a fully
//!   `&self` lookup path (snapshot-swapped filters, striped cache,
//!   atomic counters) for multi-threaded servers;
//! * [`health`] — per-ledger circuit breakers driving the degradation
//!   ladder (retry → failover → stale-serve → fail-open).

pub mod batch;
pub mod filterset;
pub mod health;
pub mod lru;
pub mod privacy;
pub mod proxy;
pub mod shared;

pub use batch::{Batch, BatchConfig, Batcher};
pub use filterset::FilterSet;
pub use health::{BreakerConfig, BreakerState, CircuitBreaker};
pub use lru::LruTtlCache;
pub use proxy::{IrsProxy, LookupOutcome, ProxyConfig, ProxyStats};
pub use shared::{DegradedStats, SharedProxy};
