//! The proxy decision pipeline.
//!
//! Sans-io: [`IrsProxy::lookup`] classifies a validation request into a
//! local answer or a required ledger query, and [`IrsProxy::complete`]
//! feeds the ledger's answer back. The caller (simulator event handler or
//! TCP connection thread) owns all actual I/O, so one implementation
//! serves both deployments — the structured-concurrency-friendly shape
//! the networking guides recommend.

use crate::filterset::FilterSet;
use crate::lru::LruTtlCache;
use irs_core::claim::RevocationStatus;
use irs_core::ids::RecordId;
use irs_core::time::TimeMs;

/// Proxy configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProxyConfig {
    /// Status-cache capacity (entries).
    pub cache_capacity: usize,
    /// Status-cache TTL (ms) — the staleness bound on the proxy path.
    pub cache_ttl_ms: u64,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            cache_capacity: 100_000,
            cache_ttl_ms: 3_600_000,
        }
    }
}

/// What the proxy decides for one lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Answered locally: the merged revoked-set filter misses, so no
    /// ledger has this record revoked.
    NotRevokedByFilter,
    /// Answered locally from the status cache.
    Cached(RevocationStatus),
    /// The caller must query the record's home ledger and then call
    /// [`IrsProxy::complete`].
    NeedsLedgerQuery,
}

/// Load/behavior counters (read by experiments E4/E5/E13/E14).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Total lookups served.
    pub lookups: u64,
    /// Lookups short-circuited by the merged filter.
    pub filter_negative: u64,
    /// Lookups answered from the cache.
    pub cache_hits: u64,
    /// Lookups that required a real ledger query.
    pub ledger_queries: u64,
}

impl ProxyStats {
    /// Fraction of lookups that reached a ledger.
    pub fn ledger_query_fraction(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.ledger_queries as f64 / self.lookups as f64
    }

    /// The §4.4 "load reduction factor": lookups per ledger query.
    pub fn load_reduction(&self) -> f64 {
        if self.ledger_queries == 0 {
            return f64::INFINITY;
        }
        self.lookups as f64 / self.ledger_queries as f64
    }
}

/// The IRS proxy.
///
/// ```
/// use irs_proxy::{IrsProxy, LookupOutcome, ProxyConfig};
/// use irs_core::claim::RevocationStatus;
/// use irs_core::ids::{LedgerId, RecordId};
/// use irs_core::time::TimeMs;
/// use irs_filters::BloomFilter;
///
/// let mut proxy = IrsProxy::new(ProxyConfig::default());
/// // Install a ledger's revoked-set filter containing one record.
/// let revoked = RecordId::new(LedgerId(1), 7);
/// let mut f = BloomFilter::for_capacity(1_000, 0.02).unwrap();
/// f.insert(revoked.filter_key());
/// proxy.filters.apply_full(LedgerId(1), 1, f.to_bytes()).unwrap();
///
/// // A photo outside the revoked set is answered locally…
/// let clean = RecordId::new(LedgerId(1), 1_000);
/// assert_eq!(proxy.lookup(clean, TimeMs(0)), LookupOutcome::NotRevokedByFilter);
/// // …the revoked one needs a real query, whose answer is then cached.
/// assert_eq!(proxy.lookup(revoked, TimeMs(0)), LookupOutcome::NeedsLedgerQuery);
/// proxy.complete(revoked, RevocationStatus::Revoked, TimeMs(0));
/// assert_eq!(
///     proxy.lookup(revoked, TimeMs(1)),
///     LookupOutcome::Cached(RevocationStatus::Revoked)
/// );
/// ```
pub struct IrsProxy {
    /// Per-ledger filters and their OR.
    pub filters: FilterSet,
    cache: LruTtlCache<RecordId, RevocationStatus>,
    /// Counters.
    pub stats: ProxyStats,
    config: ProxyConfig,
}

impl IrsProxy {
    /// Create a proxy.
    pub fn new(config: ProxyConfig) -> IrsProxy {
        IrsProxy {
            filters: FilterSet::new(),
            cache: LruTtlCache::new(config.cache_capacity, config.cache_ttl_ms),
            stats: ProxyStats::default(),
            config,
        }
    }

    /// The configuration this proxy was built with.
    pub fn config(&self) -> ProxyConfig {
        self.config
    }

    /// Classify a lookup. Order: merged revoked-set filter (cheapest,
    /// answers the common "viewed photo is not revoked" case), then
    /// cache, then ledger.
    pub fn lookup(&mut self, id: RecordId, now: TimeMs) -> LookupOutcome {
        self.stats.lookups += 1;
        if self.filters.might_be_revoked(id.filter_key()) == Some(false) {
            self.stats.filter_negative += 1;
            return LookupOutcome::NotRevokedByFilter;
        }
        if let Some(status) = self.cache.get(&id, now) {
            self.stats.cache_hits += 1;
            return LookupOutcome::Cached(status);
        }
        self.stats.ledger_queries += 1;
        LookupOutcome::NeedsLedgerQuery
    }

    /// Record a ledger answer (populates the cache).
    pub fn complete(&mut self, id: RecordId, status: RevocationStatus, now: TimeMs) {
        self.cache.insert(id, status, now);
    }

    /// Drop a cached status (revocation push / probe finding).
    pub fn invalidate(&mut self, id: &RecordId) {
        self.cache.invalidate(id);
    }

    /// Cache occupancy.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::ids::LedgerId;
    use irs_filters::BloomFilter;

    fn rid(n: u64) -> RecordId {
        RecordId::new(LedgerId(1), n)
    }

    fn proxy_with_filter(revoked: &[RecordId]) -> IrsProxy {
        let mut p = IrsProxy::new(ProxyConfig {
            cache_capacity: 16,
            cache_ttl_ms: 1_000,
        });
        let mut f = BloomFilter::with_params(1 << 14, 6, 0).unwrap();
        for id in revoked {
            f.insert(id.filter_key());
        }
        p.filters.apply_full(LedgerId(1), 1, f.to_bytes()).unwrap();
        p
    }

    #[test]
    fn filter_short_circuits_unrevoked() {
        let mut p = proxy_with_filter(&[rid(1), rid(2)]);
        // Ids outside the revoked set overwhelmingly answered locally.
        let mut local = 0;
        for n in 1_000..2_000u64 {
            if p.lookup(rid(n), TimeMs(0)) == LookupOutcome::NotRevokedByFilter {
                local += 1;
            }
        }
        assert!(local > 950, "local {local}");
        assert_eq!(p.stats.lookups, 1_000);
    }

    #[test]
    fn filter_hit_goes_to_ledger_then_cache() {
        let mut p = proxy_with_filter(&[rid(1)]);
        assert_eq!(p.lookup(rid(1), TimeMs(0)), LookupOutcome::NeedsLedgerQuery);
        p.complete(rid(1), RevocationStatus::Revoked, TimeMs(0));
        assert_eq!(
            p.lookup(rid(1), TimeMs(100)),
            LookupOutcome::Cached(RevocationStatus::Revoked)
        );
        assert_eq!(p.stats.ledger_queries, 1);
        assert_eq!(p.stats.cache_hits, 1);
    }

    #[test]
    fn cache_expiry_forces_requery() {
        let mut p = proxy_with_filter(&[rid(1)]);
        p.lookup(rid(1), TimeMs(0));
        p.complete(rid(1), RevocationStatus::NotRevoked, TimeMs(0));
        assert!(matches!(
            p.lookup(rid(1), TimeMs(500)),
            LookupOutcome::Cached(_)
        ));
        // Past the 1s TTL.
        assert_eq!(
            p.lookup(rid(1), TimeMs(1_500)),
            LookupOutcome::NeedsLedgerQuery
        );
    }

    #[test]
    fn no_filter_means_query() {
        let mut p = IrsProxy::new(ProxyConfig::default());
        assert_eq!(p.lookup(rid(5), TimeMs(0)), LookupOutcome::NeedsLedgerQuery);
    }

    #[test]
    fn invalidate_purges_cache() {
        let mut p = proxy_with_filter(&[rid(1)]);
        p.lookup(rid(1), TimeMs(0));
        p.complete(rid(1), RevocationStatus::NotRevoked, TimeMs(0));
        p.invalidate(&rid(1));
        assert_eq!(p.lookup(rid(1), TimeMs(1)), LookupOutcome::NeedsLedgerQuery);
    }

    #[test]
    fn stats_load_reduction() {
        let mut p = proxy_with_filter(&[rid(1)]);
        for n in 100..200u64 {
            let _ = p.lookup(rid(n), TimeMs(0));
        }
        let s = p.stats;
        assert!(
            s.load_reduction() > 10.0,
            "reduction {}",
            s.load_reduction()
        );
        assert!(s.ledger_query_fraction() < 0.1);
        let empty = ProxyStats::default();
        assert_eq!(empty.ledger_query_fraction(), 0.0);
        assert_eq!(empty.load_reduction(), f64::INFINITY);
    }
}
