//! Query batching — the aggregation that *is* the §4.2 privacy mechanism.
//!
//! "At their most essential, these solutions insert trusted proxies which
//! aggregate the requests from many users." Aggregation does two things:
//! the ledger sees the proxy's identity instead of the viewer's, and
//! queries from many users ride the same upstream batch
//! ([`irs_core::wire::Request::Batch`]), so even traffic analysis at the
//! ledger cannot separate viewers. The batcher trades a bounded hold time
//! (and a minimum batch size, i.e. a k-anonymity floor) for that mixing.

use irs_core::ids::RecordId;
use irs_core::time::TimeMs;

/// Batching policy.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Flush when this many queries are pending.
    pub max_batch: usize,
    /// Flush pending queries after this long even if the batch is small —
    /// the revocation-latency cost of mixing.
    pub max_hold_ms: u64,
    /// Do not flush fewer than this many queries before `max_hold_ms`
    /// expires (the k-anonymity floor; 1 disables).
    pub min_batch: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 64,
            max_hold_ms: 200,
            min_batch: 4,
        }
    }
}

/// A pending query: the record plus which local requester asked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Pending {
    id: RecordId,
    requester: u32,
    enqueued: TimeMs,
}

/// Accumulates per-record queries from many local requesters and emits
/// upstream batches.
pub struct Batcher {
    config: BatchConfig,
    pending: Vec<Pending>,
    /// Batches emitted, total queries batched (for the E13 accounting).
    pub batches_emitted: u64,
    /// Total queries that passed through.
    pub queries: u64,
    /// Sum of per-query hold times (ms), for the added-latency metric.
    pub total_hold_ms: u64,
}

/// One emitted batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Batch {
    /// Deduplicated records to query upstream.
    pub ids: Vec<RecordId>,
    /// Distinct local requesters represented — the batch's anonymity set.
    pub anonymity_set: usize,
}

impl Batcher {
    /// Create a batcher.
    pub fn new(config: BatchConfig) -> Batcher {
        Batcher {
            config,
            pending: Vec::new(),
            batches_emitted: 0,
            queries: 0,
            total_hold_ms: 0,
        }
    }

    /// Enqueue a query from a local requester; returns a batch if the
    /// size threshold fired.
    pub fn enqueue(&mut self, id: RecordId, requester: u32, now: TimeMs) -> Option<Batch> {
        self.queries += 1;
        self.pending.push(Pending {
            id,
            requester,
            enqueued: now,
        });
        if self.pending.len() >= self.config.max_batch {
            return Some(self.flush(now));
        }
        None
    }

    /// Time-driven flush: emits iff the oldest pending query has waited
    /// `max_hold_ms`, or the k-floor is met and anything is pending.
    /// Call on a timer tick.
    pub fn poll(&mut self, now: TimeMs) -> Option<Batch> {
        if self.pending.is_empty() {
            return None;
        }
        let oldest = self
            .pending
            .iter()
            .map(|p| p.enqueued)
            .min()
            .expect("nonempty");
        let expired = now.since(oldest) >= self.config.max_hold_ms;
        let k_met = self.distinct_requesters() >= self.config.min_batch;
        if expired || (k_met && self.pending.len() >= self.config.min_batch) {
            return Some(self.flush(now));
        }
        None
    }

    /// Pending queries not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn distinct_requesters(&self) -> usize {
        let mut reqs: Vec<u32> = self.pending.iter().map(|p| p.requester).collect();
        reqs.sort_unstable();
        reqs.dedup();
        reqs.len()
    }

    fn flush(&mut self, now: TimeMs) -> Batch {
        let anonymity_set = self.distinct_requesters();
        let mut ids: Vec<RecordId> = self.pending.iter().map(|p| p.id).collect();
        for p in &self.pending {
            self.total_hold_ms += now.since(p.enqueued);
        }
        ids.sort_unstable();
        ids.dedup();
        self.pending.clear();
        self.batches_emitted += 1;
        Batch { ids, anonymity_set }
    }

    /// Mean per-query hold time so far.
    pub fn mean_hold_ms(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.total_hold_ms as f64 / self.queries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::ids::LedgerId;

    fn rid(n: u64) -> RecordId {
        RecordId::new(LedgerId(1), n)
    }

    fn batcher(max: usize, hold: u64, min: usize) -> Batcher {
        Batcher::new(BatchConfig {
            max_batch: max,
            max_hold_ms: hold,
            min_batch: min,
        })
    }

    #[test]
    fn size_threshold_flushes() {
        let mut b = batcher(3, 1_000, 1);
        assert!(b.enqueue(rid(1), 0, TimeMs(0)).is_none());
        assert!(b.enqueue(rid(2), 1, TimeMs(1)).is_none());
        let batch = b.enqueue(rid(3), 2, TimeMs(2)).expect("flush at 3");
        assert_eq!(batch.ids.len(), 3);
        assert_eq!(batch.anonymity_set, 3);
        assert_eq!(b.pending_len(), 0);
        assert_eq!(b.batches_emitted, 1);
    }

    #[test]
    fn duplicate_records_deduplicated() {
        let mut b = batcher(3, 1_000, 1);
        b.enqueue(rid(7), 0, TimeMs(0));
        b.enqueue(rid(7), 1, TimeMs(0));
        let batch = b.enqueue(rid(7), 2, TimeMs(0)).unwrap();
        assert_eq!(batch.ids, vec![rid(7)]);
        assert_eq!(batch.anonymity_set, 3, "dedup keeps the anonymity count");
    }

    #[test]
    fn hold_timeout_flushes_small_batches() {
        let mut b = batcher(100, 200, 4);
        b.enqueue(rid(1), 0, TimeMs(0));
        assert!(b.poll(TimeMs(100)).is_none(), "not yet expired, k not met");
        let batch = b.poll(TimeMs(200)).expect("expired");
        assert_eq!(batch.ids.len(), 1);
        assert_eq!(batch.anonymity_set, 1);
    }

    #[test]
    fn k_floor_flushes_before_timeout() {
        let mut b = batcher(100, 10_000, 3);
        b.enqueue(rid(1), 0, TimeMs(0));
        b.enqueue(rid(2), 1, TimeMs(1));
        assert!(b.poll(TimeMs(5)).is_none(), "only 2 distinct requesters");
        b.enqueue(rid(3), 2, TimeMs(6));
        let batch = b.poll(TimeMs(7)).expect("k met");
        assert_eq!(batch.anonymity_set, 3);
    }

    #[test]
    fn same_requester_does_not_satisfy_k() {
        let mut b = batcher(100, 10_000, 3);
        for i in 0..10 {
            b.enqueue(rid(i), 0, TimeMs(i));
        }
        assert!(
            b.poll(TimeMs(20)).is_none(),
            "one user's burst is not an anonymity set"
        );
    }

    #[test]
    fn hold_time_accounting() {
        let mut b = batcher(2, 1_000, 1);
        b.enqueue(rid(1), 0, TimeMs(0));
        b.enqueue(rid(2), 1, TimeMs(100)); // flush at t=100
        assert_eq!(b.total_hold_ms, 100); // 100 + 0
        assert_eq!(b.mean_hold_ms(), 50.0);
    }

    #[test]
    fn empty_poll_is_none() {
        let mut b = batcher(10, 100, 1);
        assert!(b.poll(TimeMs(1_000)).is_none());
        assert_eq!(b.mean_hold_ms(), 0.0);
    }
}
