//! Viewer-privacy accounting (§4.2, experiment E13).
//!
//! Goal #2: validation "should not expose the identity of the viewer to
//! any parties beyond those to whom their identity is exposed today". A
//! curious ledger sees whatever query stream reaches it; this module
//! replays a view trace under each deployment and counts what the ledger
//! can attribute.
//!
//! * **Direct**: every check arrives from the viewer's own address —
//!   the ledger attributes (viewer, photo) for every filter-missing view.
//! * **Proxied**: checks arrive from the proxy's address — the ledger
//!   sees (photo, time) but no viewer identity; attribution requires the
//!   proxy to collude. The anonymity set of each query is the proxy's
//!   concurrent user population.

use std::collections::HashSet;

/// One validation query as a ledger would log it.
#[derive(Clone, Copy, Debug)]
pub struct LedgerLogEntry {
    /// Arrival time (ms).
    pub at_ms: u64,
    /// Source identity visible to the ledger: `Some(user)` under direct
    /// deployment, `None` when it arrives via a proxy.
    pub source_user: Option<u32>,
    /// Photo serial queried.
    pub photo_serial: u64,
}

/// What a curious ledger could learn from its log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeakageReport {
    /// Total view events in the trace.
    pub total_views: u64,
    /// Queries that reached the ledger at all.
    pub ledger_visible_queries: u64,
    /// Queries attributable to a specific viewer.
    pub attributable: u64,
    /// Fraction of all views attributable to a viewer (the headline
    /// privacy metric: 0 is today's baseline-equivalent, §4.2's target).
    pub attributable_fraction: f64,
    /// Distinct users whose viewing was exposed at least once.
    pub exposed_users: u64,
}

/// Analyze a ledger log against the trace it came from.
pub fn analyze(total_views: u64, log: &[LedgerLogEntry]) -> LeakageReport {
    let attributable = log.iter().filter(|e| e.source_user.is_some()).count() as u64;
    let exposed: HashSet<u32> = log.iter().filter_map(|e| e.source_user).collect();
    LeakageReport {
        total_views,
        ledger_visible_queries: log.len() as u64,
        attributable,
        attributable_fraction: if total_views == 0 {
            0.0
        } else {
            attributable as f64 / total_views as f64
        },
        exposed_users: exposed.len() as u64,
    }
}

/// The anonymity set of a proxied query: how many users were active at the
/// proxy within ±`window_ms` of the query. Larger is better; a set of 1
/// de-anonymizes by timing.
pub fn anonymity_set_size(query_at_ms: u64, window_ms: u64, user_activity: &[(u64, u32)]) -> usize {
    let lo = query_at_ms.saturating_sub(window_ms);
    let hi = query_at_ms.saturating_add(window_ms);
    let users: HashSet<u32> = user_activity
        .iter()
        .filter(|(t, _)| *t >= lo && *t <= hi)
        .map(|(_, u)| *u)
        .collect();
    users.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_deployment_fully_attributable() {
        let log: Vec<LedgerLogEntry> = (0..10)
            .map(|i| LedgerLogEntry {
                at_ms: i * 10,
                source_user: Some((i % 3) as u32),
                photo_serial: i,
            })
            .collect();
        let r = analyze(10, &log);
        assert_eq!(r.attributable, 10);
        assert_eq!(r.attributable_fraction, 1.0);
        assert_eq!(r.exposed_users, 3);
    }

    #[test]
    fn proxied_deployment_attributes_nothing() {
        let log: Vec<LedgerLogEntry> = (0..10)
            .map(|i| LedgerLogEntry {
                at_ms: i * 10,
                source_user: None,
                photo_serial: i,
            })
            .collect();
        let r = analyze(10, &log);
        assert_eq!(r.attributable, 0);
        assert_eq!(r.attributable_fraction, 0.0);
        assert_eq!(r.exposed_users, 0);
        assert_eq!(r.ledger_visible_queries, 10);
    }

    #[test]
    fn filtering_reduces_visible_queries() {
        // With a filter, most views never produce a ledger log entry.
        let log = vec![LedgerLogEntry {
            at_ms: 5,
            source_user: Some(1),
            photo_serial: 42,
        }];
        let r = analyze(100, &log);
        assert_eq!(r.ledger_visible_queries, 1);
        assert!((r.attributable_fraction - 0.01).abs() < 1e-9);
    }

    #[test]
    fn empty_trace() {
        let r = analyze(0, &[]);
        assert_eq!(r.attributable_fraction, 0.0);
    }

    #[test]
    fn anonymity_set_counts_window_users() {
        let activity = vec![(100u64, 1u32), (150, 2), (190, 3), (500, 4), (110, 1)];
        assert_eq!(anonymity_set_size(150, 50, &activity), 3);
        assert_eq!(anonymity_set_size(500, 10, &activity), 1);
        assert_eq!(anonymity_set_size(5_000, 10, &activity), 0);
    }
}
