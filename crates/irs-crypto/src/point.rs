//! Edwards curve points for Ed25519 (−x² + y² = 1 + d·x²·y²) in extended
//! twisted-Edwards coordinates (X : Y : Z : T) with x = X/Z, y = Y/Z,
//! T = XY/Z.

use crate::field::{sqrt_ratio, Fe};
use crate::scalar::Scalar;
use std::sync::OnceLock;

/// d = −121665/121666 mod p.
fn d() -> Fe {
    static D: OnceLock<Fe> = OnceLock::new();
    *D.get_or_init(|| {
        Fe::from_u64(121_665)
            .neg()
            .mul(Fe::from_u64(121_666).invert())
    })
}

/// 2d, cached for the addition formula.
fn d2() -> Fe {
    static D2: OnceLock<Fe> = OnceLock::new();
    *D2.get_or_init(|| d().add(d()))
}

/// A point on the Ed25519 curve, extended coordinates.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

impl Point {
    /// The neutral element (0, 1).
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// The RFC 8032 base point B (y = 4/5, x even).
    pub fn base() -> Point {
        static B: OnceLock<Point> = OnceLock::new();
        *B.get_or_init(|| {
            let y = Fe::from_u64(4).mul(Fe::from_u64(5).invert());
            let mut enc = y.to_bytes();
            enc[31] &= 0x7f; // sign bit 0 ⇒ even x
            Point::decompress(&enc).expect("base point decompresses")
        })
    }

    /// Unified point addition (a = −1 twisted Edwards, extended coords).
    pub fn add(&self, other: &Point) -> Point {
        let a = self.y.sub(self.x).mul(other.y.sub(other.x));
        let b = self.y.add(self.x).mul(other.y.add(other.x));
        let c = self.t.mul(d2()).mul(other.t);
        let dd = self.z.add(self.z).mul(other.z);
        let e = b.sub(a);
        let f = dd.sub(c);
        let g = dd.add(c);
        let h = b.add(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            t: e.mul(h),
            z: f.mul(g),
        }
    }

    /// Point doubling.
    pub fn double(&self) -> Point {
        let a = self.x.square();
        let b = self.y.square();
        let c = self.z.square().add(self.z.square());
        let h = a.add(b);
        let e = h.sub(self.x.add(self.y).square());
        let g = a.sub(b);
        let f = c.add(g);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            t: e.mul(h),
            z: f.mul(g),
        }
    }

    /// Scalar multiplication by a 32-byte little-endian scalar (which may be
    /// a clamped secret, i.e. not reduced mod L). Plain double-and-add, msb
    /// first — not constant time.
    pub fn mul_bytes(&self, k: &[u8; 32]) -> Point {
        let mut acc = Point::identity();
        for bit in (0..256).rev() {
            acc = acc.double();
            if (k[bit / 8] >> (bit % 8)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// Scalar multiplication by a reduced scalar.
    pub fn mul_scalar(&self, k: &Scalar) -> Point {
        self.mul_bytes(&k.to_bytes())
    }

    /// Compress to the 32-byte RFC 8032 encoding: y with the sign of x in
    /// the top bit.
    pub fn compress(&self) -> [u8; 32] {
        let zi = self.z.invert();
        let x = self.x.mul(zi);
        let y = self.y.mul(zi);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompress an encoded point; `None` if the encoding is invalid
    /// (non-canonical y, or x² has no root).
    pub fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let sign = bytes[31] >> 7;
        let mut ybytes = *bytes;
        ybytes[31] &= 0x7f;
        let y = Fe::from_bytes_canonical(&ybytes)?;
        // x² = (y² − 1) / (d·y² + 1)
        let yy = y.square();
        let u = yy.sub(Fe::ONE);
        let v = d().mul(yy).add(Fe::ONE);
        let mut x = sqrt_ratio(u, v)?;
        if x.is_zero() && sign == 1 {
            // −0 is not a valid encoding.
            return None;
        }
        if x.is_negative() != (sign == 1) {
            x = x.neg();
        }
        Some(Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        })
    }

    /// Affine equality.
    pub fn equals(&self, other: &Point) -> bool {
        // x1/z1 == x2/z2  ⇔  x1·z2 == x2·z1 (same for y).
        self.x.mul(other.z).sub(other.x.mul(self.z)).is_zero()
            && self.y.mul(other.z).sub(other.y.mul(self.z)).is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(v: u64) -> [u8; 32] {
        let mut b = [0u8; 32];
        b[..8].copy_from_slice(&v.to_le_bytes());
        b
    }

    #[test]
    fn base_point_is_on_curve() {
        let b = Point::base();
        // −x² + y² = 1 + d x² y²
        let zi = b.z.invert();
        let x = b.x.mul(zi);
        let y = b.y.mul(zi);
        let lhs = y.square().sub(x.square());
        let rhs = Fe::ONE.add(d().mul(x.square()).mul(y.square()));
        assert_eq!(lhs.to_bytes(), rhs.to_bytes());
    }

    #[test]
    fn base_compressed_encoding_matches_rfc() {
        // RFC 8032: B encodes as 0x5866666666666666...6666 (y = 4/5).
        let enc = Point::base().compress();
        assert_eq!(enc[0], 0x58);
        for &b in &enc[1..31] {
            assert_eq!(b, 0x66);
        }
        assert_eq!(enc[31], 0x66);
    }

    #[test]
    fn add_vs_double() {
        let b = Point::base();
        assert!(b.add(&b).equals(&b.double()));
        let four_a = b.double().double();
        let four_b = b.add(&b).add(&b).add(&b);
        assert!(four_a.equals(&four_b));
    }

    #[test]
    fn identity_laws() {
        let b = Point::base();
        let id = Point::identity();
        assert!(b.add(&id).equals(&b));
        assert!(id.add(&b).equals(&b));
        assert!(id.double().equals(&id));
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let b = Point::base();
        let mut acc = Point::identity();
        for k in 0..10u64 {
            assert!(b.mul_bytes(&scalar(k)).equals(&acc), "k = {k}");
            acc = acc.add(&b);
        }
    }

    #[test]
    fn compress_decompress_roundtrip() {
        for k in 1..8u64 {
            let p = Point::base().mul_bytes(&scalar(k * 7919));
            let enc = p.compress();
            let q = Point::decompress(&enc).expect("valid point");
            assert!(p.equals(&q));
            assert_eq!(q.compress(), enc);
        }
    }

    #[test]
    fn decompress_rejects_invalid() {
        // y = 2 is not on the curve for either sign? Find an invalid one:
        // try encodings until one fails — but deterministically assert at
        // least one of a few known-bad encodings is rejected.
        let mut bad = 0;
        for v in 2u64..40 {
            let mut enc = [0u8; 32];
            enc[..8].copy_from_slice(&v.to_le_bytes());
            if Point::decompress(&enc).is_none() {
                bad += 1;
            }
        }
        assert!(bad > 0, "some small y values must be off-curve");
        // Non-canonical y (≥ p) must be rejected.
        let mut p_enc = [0xffu8; 32];
        p_enc[0] = 0xed;
        p_enc[31] = 0x7f;
        assert!(Point::decompress(&p_enc).is_none());
    }

    #[test]
    fn order_l_times_base_is_identity() {
        // L · B = identity. L bytes little-endian:
        let l_bytes: [u8; 32] = [
            0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9,
            0xde, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            0x00, 0x00, 0x00, 0x10,
        ];
        let p = Point::base().mul_bytes(&l_bytes);
        assert!(p.equals(&Point::identity()));
    }
}
