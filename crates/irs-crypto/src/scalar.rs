//! Arithmetic modulo the Ed25519 group order
//! L = 2^252 + 27742317777372353535851937790883648493.
//!
//! Scalars are four little-endian u64 limbs, always kept fully reduced
//! (< L). Wide (512-bit) reduction uses simple shift-and-subtract long
//! division, which is plenty fast for the signing rates IRS needs.

/// L as little-endian limbs.
const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
];

/// A scalar in [0, L).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct Scalar(pub [u64; 4]);

impl std::fmt::Debug for Scalar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scalar({})", crate::hex::encode(&self.to_bytes()))
    }
}

impl Scalar {
    /// The zero scalar (used by tests and kept for API completeness).
    #[allow(dead_code)]
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);

    /// Parse 32 little-endian bytes, reducing mod L.
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Scalar {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Scalar::from_bytes_mod_order_wide(&wide)
    }

    /// Parse 32 little-endian bytes, rejecting values ≥ L (used to validate
    /// the S half of signatures, preventing malleability).
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        if lt4(&limbs, &L) {
            Some(Scalar(limbs))
        } else {
            None
        }
    }

    /// Reduce a 64-byte little-endian value mod L (RFC 8032 uses this on
    /// SHA-512 outputs).
    pub fn from_bytes_mod_order_wide(bytes: &[u8; 64]) -> Scalar {
        let mut n = [0u64; 8];
        for i in 0..8 {
            n[i] = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        Scalar(reduce512(n))
    }

    /// Clamped secret scalar per RFC 8032 §5.1.5 (as raw limbs; clamped
    /// scalars may exceed L and are only used for scalar multiplication).
    pub fn clamped(bytes: &[u8; 32]) -> [u8; 32] {
        let mut b = *bytes;
        b[0] &= 0xf8;
        b[31] &= 0x7f;
        b[31] |= 0x40;
        b
    }

    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    pub fn add(self, other: Scalar) -> Scalar {
        let mut out = [0u64; 4];
        let mut carry = 0u128;
        for (i, limb) in out.iter_mut().enumerate() {
            let s = self.0[i] as u128 + other.0[i] as u128 + carry;
            *limb = s as u64;
            carry = s >> 64;
        }
        debug_assert_eq!(carry, 0, "both inputs < L < 2^253");
        if !lt4(&out, &L) {
            sub4(&mut out, &L);
        }
        Scalar(out)
    }

    pub fn mul(self, other: Scalar) -> Scalar {
        let mut limbs = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let s = limbs[i + j] as u128 + self.0[i] as u128 * other.0[j] as u128 + carry;
                limbs[i + j] = s as u64;
                carry = s >> 64;
            }
            limbs[i + 4] = carry as u64;
        }
        Scalar(reduce512(limbs))
    }
}

/// Reduce a 512-bit value mod L by shift-and-subtract long division.
fn reduce512(mut n: [u64; 8]) -> [u64; 4] {
    // m = L << 259 occupies bits [259, 512) — still 8 limbs.
    let mut m = [0u64; 8];
    m[4] = L[0] << 3;
    m[5] = (L[1] << 3) | (L[0] >> 61);
    m[6] = (L[2] << 3) | (L[1] >> 61);
    m[7] = (L[3] << 3) | (L[2] >> 61);
    for _ in 0..=259 {
        if !lt8(&n, &m) {
            sub8(&mut n, &m);
        }
        shr1(&mut m);
    }
    debug_assert!(lt8(&n, &{
        let mut l8 = [0u64; 8];
        l8[..4].copy_from_slice(&L);
        l8
    }));
    [n[0], n[1], n[2], n[3]]
}

fn lt4(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

fn sub4(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0i128;
    for i in 0..4 {
        let d = a[i] as i128 - b[i] as i128 - borrow;
        a[i] = d as u64;
        borrow = if d < 0 { 1 } else { 0 };
    }
    debug_assert_eq!(borrow, 0);
}

fn lt8(a: &[u64; 8], b: &[u64; 8]) -> bool {
    for i in (0..8).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

fn sub8(a: &mut [u64; 8], b: &[u64; 8]) {
    let mut borrow = 0i128;
    for i in 0..8 {
        let d = a[i] as i128 - b[i] as i128 - borrow;
        a[i] = d as u64;
        borrow = if d < 0 { 1 } else { 0 };
    }
    debug_assert_eq!(borrow, 0);
}

fn shr1(v: &mut [u64; 8]) {
    for i in 0..8 {
        let carry_in = if i + 1 < 8 { v[i + 1] & 1 } else { 0 };
        v[i] = (v[i] >> 1) | (carry_in << 63);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l_reduces_to_zero() {
        let mut bytes = [0u8; 32];
        for i in 0..4 {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&L[i].to_le_bytes());
        }
        let s = Scalar::from_bytes_mod_order(&bytes);
        assert_eq!(s, Scalar::ZERO);
        assert!(Scalar::from_canonical_bytes(&bytes).is_none());
    }

    #[test]
    fn l_minus_one_is_canonical() {
        let mut limbs = L;
        limbs[0] -= 1;
        let mut bytes = [0u8; 32];
        for i in 0..4 {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&limbs[i].to_le_bytes());
        }
        let s = Scalar::from_canonical_bytes(&bytes).expect("canonical");
        // (L − 1) + 1 ≡ 0
        let mut one = [0u8; 32];
        one[0] = 1;
        let one = Scalar::from_bytes_mod_order(&one);
        assert_eq!(s.add(one), Scalar::ZERO);
    }

    #[test]
    fn small_arithmetic() {
        let n = |v: u64| {
            let mut b = [0u8; 32];
            b[..8].copy_from_slice(&v.to_le_bytes());
            Scalar::from_bytes_mod_order(&b)
        };
        assert_eq!(n(3).mul(n(7)), n(21));
        assert_eq!(n(100).add(n(23)), n(123));
        assert_eq!(n(0).mul(n(7)), Scalar::ZERO);
    }

    #[test]
    fn wide_reduction_matches_iterated_small() {
        // 2^256 mod L computed two ways.
        let mut wide = [0u8; 64];
        wide[32] = 1; // 2^256
        let direct = Scalar::from_bytes_mod_order_wide(&wide);
        // 2^128 as a scalar, squared.
        let mut b = [0u8; 32];
        b[16] = 1;
        let s = Scalar::from_bytes_mod_order(&b);
        assert_eq!(s.mul(s), direct);
    }

    #[test]
    fn mul_commutes_and_distributes() {
        let mk = |seed: u64| {
            let mut b = [0u8; 32];
            for (i, chunk) in b.chunks_mut(8).enumerate() {
                chunk.copy_from_slice(&(seed.wrapping_mul(i as u64 + 1)).to_le_bytes());
            }
            b[31] &= 0x0f;
            Scalar::from_bytes_mod_order(&b)
        };
        for s in 1..20u64 {
            let a = mk(s);
            let b = mk(s.wrapping_mul(0x9e37_79b9));
            let c = mk(s.wrapping_mul(0x85eb_ca6b));
            assert_eq!(a.mul(b), b.mul(a));
            assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
        }
    }

    #[test]
    fn clamping_sets_expected_bits() {
        let c = Scalar::clamped(&[0xffu8; 32]);
        assert_eq!(c[0] & 0x07, 0);
        assert_eq!(c[31] & 0x80, 0);
        assert_eq!(c[31] & 0x40, 0x40);
    }
}
