//! Ed25519 signatures (RFC 8032), built on the from-scratch field, scalar,
//! and point arithmetic in this crate.
//!
//! IRS uses these signatures for:
//! * **ownership claims** — the per-photo key signs the photo hash (the
//!   paper's "encrypt the hash with the private key");
//! * **revocation requests** — proof of ownership is a signature with the
//!   claim key;
//! * **timestamp tokens** — the timestamp authority countersigns claims;
//! * **freshness proofs** — ledgers sign recent validation results.

use crate::point::Point;
use crate::scalar::Scalar;
use crate::sha512::Sha512;
use rand::RngCore;

/// A 32-byte Ed25519 public key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(pub [u8; 32]);

/// A 32-byte Ed25519 secret seed.
#[derive(Clone)]
pub struct SecretKey(pub [u8; 32]);

/// A 64-byte Ed25519 signature (R ‖ S).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; 64]);

/// Errors from signature verification or key parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureError {
    /// The public key bytes do not decode to a curve point.
    InvalidPublicKey,
    /// The R component does not decode to a curve point.
    InvalidR,
    /// The S component is not a canonical scalar (< L).
    NonCanonicalS,
    /// The verification equation failed.
    BadSignature,
}

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignatureError::InvalidPublicKey => write!(f, "invalid public key"),
            SignatureError::InvalidR => write!(f, "invalid signature R component"),
            SignatureError::NonCanonicalS => write!(f, "non-canonical signature S component"),
            SignatureError::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for SignatureError {}

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PublicKey({}…)", &crate::hex::encode(&self.0[..6]))
    }
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SecretKey(…)")
    }
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature({}…)", &crate::hex::encode(&self.0[..6]))
    }
}

/// An Ed25519 keypair. In IRS a fresh keypair is generated *per photo* by
/// the camera, so the keypair — not any user account — is the root of
/// ownership (Goal #1(iv): owner anonymity).
#[derive(Clone, Debug)]
pub struct Keypair {
    /// Secret seed.
    pub secret: SecretKey,
    /// Derived public key.
    pub public: PublicKey,
}

impl Keypair {
    /// Generate a keypair from a cryptographically secure RNG.
    pub fn generate<R: RngCore>(rng: &mut R) -> Keypair {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Keypair::from_seed(&seed)
    }

    /// Derive the keypair deterministically from a 32-byte seed
    /// (RFC 8032 §5.1.5).
    pub fn from_seed(seed: &[u8; 32]) -> Keypair {
        let h = crate::sha512::sha512(seed);
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&h[..32]);
        let s = Scalar::clamped(&s_bytes);
        let a = Point::base().mul_bytes(&s);
        Keypair {
            secret: SecretKey(*seed),
            public: PublicKey(a.compress()),
        }
    }

    /// Sign a message (RFC 8032 §5.1.6).
    pub fn sign(&self, message: &[u8]) -> Signature {
        let h = crate::sha512::sha512(&self.secret.0);
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&h[..32]);
        let s_clamped = Scalar::clamped(&s_bytes);
        let s = Scalar::from_bytes_mod_order(&s_clamped);
        let prefix = &h[32..64];

        let mut hasher = Sha512::new();
        hasher.update(prefix);
        hasher.update(message);
        let r = Scalar::from_bytes_mod_order_wide(&hasher.finalize());
        let r_point = Point::base().mul_scalar(&r).compress();

        let mut hasher = Sha512::new();
        hasher.update(&r_point);
        hasher.update(&self.public.0);
        hasher.update(message);
        let k = Scalar::from_bytes_mod_order_wide(&hasher.finalize());

        let s_sig = r.add(k.mul(s));
        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&r_point);
        sig[32..].copy_from_slice(&s_sig.to_bytes());
        Signature(sig)
    }
}

impl PublicKey {
    /// Verify a signature over `message` (RFC 8032 §5.1.7, cofactorless).
    pub fn verify(&self, message: &[u8], sig: &Signature) -> Result<(), SignatureError> {
        let a = Point::decompress(&self.0).ok_or(SignatureError::InvalidPublicKey)?;
        let r_bytes: [u8; 32] = sig.0[..32].try_into().expect("32 bytes");
        let s_bytes: [u8; 32] = sig.0[32..].try_into().expect("32 bytes");
        let r = Point::decompress(&r_bytes).ok_or(SignatureError::InvalidR)?;
        let s = Scalar::from_canonical_bytes(&s_bytes).ok_or(SignatureError::NonCanonicalS)?;

        let mut hasher = Sha512::new();
        hasher.update(&r_bytes);
        hasher.update(&self.0);
        hasher.update(message);
        let k = Scalar::from_bytes_mod_order_wide(&hasher.finalize());

        // [S]B == R + [k]A
        let lhs = Point::base().mul_scalar(&s);
        let rhs = r.add(&a.mul_scalar(&k));
        if lhs.equals(&rhs) {
            Ok(())
        } else {
            Err(SignatureError::BadSignature)
        }
    }

    /// `true` iff the signature verifies; convenience for call sites that
    /// do not care which way verification failed.
    pub fn verify_ok(&self, message: &[u8], sig: &Signature) -> bool {
        self.verify(message, sig).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn seed(s: &str) -> [u8; 32] {
        hex::decode_array(s).expect("seed hex")
    }

    // RFC 8032 §7.1 TEST 1
    #[test]
    fn rfc8032_test1_empty_message() {
        let kp = Keypair::from_seed(&seed(
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        ));
        assert_eq!(
            hex::encode(&kp.public.0),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        );
        let sig = kp.sign(b"");
        assert_eq!(
            hex::encode(&sig.0),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e065224901555fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
        );
        kp.public.verify(b"", &sig).expect("verifies");
    }

    // RFC 8032 §7.1 TEST 2
    #[test]
    fn rfc8032_test2_one_byte() {
        let kp = Keypair::from_seed(&seed(
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        ));
        assert_eq!(
            hex::encode(&kp.public.0),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let msg = [0x72u8];
        let sig = kp.sign(&msg);
        assert_eq!(
            hex::encode(&sig.0),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
        );
        kp.public.verify(&msg, &sig).expect("verifies");
    }

    // RFC 8032 §7.1 TEST 3
    #[test]
    fn rfc8032_test3_two_bytes() {
        let kp = Keypair::from_seed(&seed(
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        ));
        assert_eq!(
            hex::encode(&kp.public.0),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025"
        );
        let msg = [0xafu8, 0x82];
        let sig = kp.sign(&msg);
        assert_eq!(
            hex::encode(&sig.0),
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"
        );
        kp.public.verify(&msg, &sig).expect("verifies");
    }

    #[test]
    fn wrong_message_rejected() {
        let kp = Keypair::from_seed(&[7u8; 32]);
        let sig = kp.sign(b"the real message");
        assert_eq!(
            kp.public.verify(b"a forged message", &sig),
            Err(SignatureError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = Keypair::from_seed(&[1u8; 32]);
        let kp2 = Keypair::from_seed(&[2u8; 32]);
        let sig = kp1.sign(b"msg");
        assert!(kp2.public.verify(b"msg", &sig).is_err());
    }

    #[test]
    fn corrupted_signature_rejected() {
        let kp = Keypair::from_seed(&[9u8; 32]);
        let sig = kp.sign(b"msg");
        for i in [0usize, 31, 32, 63] {
            let mut bad = sig;
            bad.0[i] ^= 0x01;
            assert!(kp.public.verify(b"msg", &bad).is_err(), "byte {i}");
        }
    }

    #[test]
    fn non_canonical_s_rejected() {
        let kp = Keypair::from_seed(&[3u8; 32]);
        let sig = kp.sign(b"msg");
        let mut bad = sig;
        // Force S ≥ L by setting its top byte to 0xff.
        bad.0[63] = 0xff;
        assert_eq!(
            kp.public.verify(b"msg", &bad),
            Err(SignatureError::NonCanonicalS)
        );
    }

    #[test]
    fn generate_roundtrip() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let kp = Keypair::generate(&mut rng);
        let sig = kp.sign(b"generated key");
        kp.public.verify(b"generated key", &sig).expect("verifies");
    }

    #[test]
    fn deterministic_signatures() {
        let kp = Keypair::from_seed(&[11u8; 32]);
        assert_eq!(kp.sign(b"x").0[..], kp.sign(b"x").0[..]);
    }
}
