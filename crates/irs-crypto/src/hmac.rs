//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the ledger-probing machinery (`irs-ledger::probe`) to derive
//! unforgeable probe tokens, and by `irs-proxy` to key its cache sharding.

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Compute `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = crate::sha256::sha256(key);
        k[..32].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0u8; BLOCK];
    let mut opad = [0u8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] = k[i] ^ 0x36;
        opad[i] = k[i] ^ 0x5c;
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Verify an HMAC tag in constant time.
pub fn hmac_sha256_verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    crate::ct_eq(&hmac_sha256(key, message), tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex::encode(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex::encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(hmac_sha256_verify(b"k", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!hmac_sha256_verify(b"k", b"m", &bad));
        assert!(!hmac_sha256_verify(b"k", b"m", &tag[..31]));
    }
}
