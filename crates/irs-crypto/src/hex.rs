//! Minimal hex encoding/decoding for identifiers, digests, and test vectors.

/// Encode bytes as lowercase hex.
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0x0f) as usize] as char);
    }
    out
}

/// Error returned by [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// Input length was odd.
    OddLength,
    /// A character was not a hex digit; carries its byte offset.
    InvalidChar(usize),
}

impl std::fmt::Display for HexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HexError::OddLength => write!(f, "hex string has odd length"),
            HexError::InvalidChar(i) => write!(f, "invalid hex character at offset {i}"),
        }
    }
}

impl std::error::Error for HexError {}

/// Decode a hex string (upper or lower case) into bytes.
pub fn decode(s: &str) -> Result<Vec<u8>, HexError> {
    let bytes = s.as_bytes();
    if bytes.len() % 2 != 0 {
        return Err(HexError::OddLength);
    }
    let nibble = |b: u8, i: usize| -> Result<u8, HexError> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(HexError::InvalidChar(i)),
        }
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for i in (0..bytes.len()).step_by(2) {
        out.push((nibble(bytes[i], i)? << 4) | nibble(bytes[i + 1], i + 1)?);
    }
    Ok(out)
}

/// Decode into a fixed-size array, erroring if the length does not match.
pub fn decode_array<const N: usize>(s: &str) -> Result<[u8; N], HexError> {
    let v = decode(s)?;
    v.try_into().map_err(|_| HexError::OddLength)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0u8, 1, 2, 0x7f, 0x80, 0xff];
        let s = encode(&data);
        assert_eq!(s, "0001027f80ff");
        assert_eq!(decode(&s).unwrap(), data.to_vec());
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn errors() {
        assert_eq!(decode("abc"), Err(HexError::OddLength));
        assert_eq!(decode("zz"), Err(HexError::InvalidChar(0)));
        assert_eq!(decode("a·"), Err(HexError::OddLength)); // multibyte char
    }

    #[test]
    fn fixed_size() {
        let arr: [u8; 4] = decode_array("01020304").unwrap();
        assert_eq!(arr, [1, 2, 3, 4]);
        assert!(decode_array::<4>("0102").is_err());
    }
}
