//! Cryptographic substrate for the Internet Revocation System (IRS).
//!
//! The IRS reproduction deliberately avoids external cryptography crates, so
//! this crate implements the primitives the paper's protocol needs from
//! scratch:
//!
//! * [`sha256`](mod@sha256) / [`sha512`](mod@sha512) — FIPS 180-4 hash
//!   functions, used for photo hashes, record digests, and inside Ed25519.
//! * [`hmac`] — HMAC (RFC 2104) over SHA-256, used for keyed probe tokens.
//! * [`ed25519`] — RFC 8032 Ed25519 signatures, used for ownership claims,
//!   revocation requests, timestamp-authority countersignatures, and ledger
//!   freshness proofs.
//! * [`hex`] — hex encoding/decoding for identifiers in logs and examples.
//!
//! # Security caveats
//!
//! This is research code supporting a systems reproduction, **not** a
//! hardened cryptographic library. In particular field and scalar arithmetic
//! are *not* constant time (scalar multiplication is plain double-and-add),
//! and no zeroization of secrets is performed. The algorithms themselves are
//! the standard ones and are validated against the RFC 8032 and FIPS 180-4
//! test vectors in the unit tests.

pub mod ed25519;
pub mod hex;
pub mod hmac;
pub mod sha256;
pub mod sha512;

mod field;
mod point;
mod scalar;

pub use ed25519::{Keypair, PublicKey, SecretKey, Signature, SignatureError};
pub use sha256::{sha256, Sha256};
pub use sha512::{sha512, Sha512};

/// A 32-byte digest, the universal "hash of a photo / record" type in IRS.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Hash arbitrary bytes with SHA-256.
    pub fn of(data: &[u8]) -> Self {
        Digest(sha256(data))
    }

    /// Hash the concatenation of several byte strings, each length-prefixed
    /// so that the encoding is injective (no extension/concat ambiguity).
    pub fn of_parts(parts: &[&[u8]]) -> Self {
        let mut h = Sha256::new();
        for p in parts {
            h.update(&(p.len() as u64).to_be_bytes());
            h.update(p);
        }
        Digest(h.finalize())
    }

    /// The zero digest; used as a sentinel in a few wire messages.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Borrow the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// First 8 bytes interpreted as a big-endian integer. Handy for
    /// hash-based sharding and filter keys.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({}…)", &hex::encode(&self.0[..6]))
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&hex::encode(&self.0))
    }
}

/// Constant-time equality on byte slices of equal length.
///
/// Returns `false` immediately if lengths differ (the length is assumed to be
/// public). Used when comparing MACs and signatures.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_of_parts_is_injective_wrt_boundaries() {
        let a = Digest::of_parts(&[b"ab", b"c"]);
        let b = Digest::of_parts(&[b"a", b"bc"]);
        let c = Digest::of_parts(&[b"abc"]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn digest_display_roundtrip() {
        let d = Digest::of(b"hello");
        let s = d.to_string();
        assert_eq!(s.len(), 64);
        assert_eq!(hex::decode(&s).unwrap(), d.0.to_vec());
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"diff"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn digest_prefix_u64_is_big_endian() {
        let mut raw = [0u8; 32];
        raw[0] = 0x01;
        raw[7] = 0xff;
        assert_eq!(Digest(raw).prefix_u64(), 0x0100_0000_0000_00ff);
    }
}
