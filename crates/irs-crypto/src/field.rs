//! Arithmetic in GF(2^255 − 19), the base field of Curve25519.
//!
//! Elements are four 64-bit little-endian limbs kept *almost reduced*
//! (< 2^256); canonical form (< p) is produced on serialization and
//! comparison. Not constant time — see the crate-level caveat.

/// p = 2^255 − 19 as limbs.
const P: [u64; 4] = [
    0xffff_ffff_ffff_ffed,
    0xffff_ffff_ffff_ffff,
    0xffff_ffff_ffff_ffff,
    0x7fff_ffff_ffff_ffff,
];

/// An element of GF(2^255 − 19).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fe(pub [u64; 4]);

impl std::fmt::Debug for Fe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.to_bytes();
        write!(f, "Fe({})", crate::hex::encode(&b))
    }
}

impl Fe {
    pub const ZERO: Fe = Fe([0, 0, 0, 0]);
    pub const ONE: Fe = Fe([1, 0, 0, 0]);

    /// Construct from a small integer.
    pub fn from_u64(v: u64) -> Fe {
        Fe([v, 0, 0, 0])
    }

    /// Parse 32 little-endian bytes; the top bit is ignored (mask 2^255),
    /// per the usual Curve25519 convention.
    pub fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        limbs[3] &= 0x7fff_ffff_ffff_ffff;
        Fe(limbs)
    }

    /// Like [`Fe::from_bytes`] but rejects non-canonical encodings (≥ p).
    pub fn from_bytes_canonical(bytes: &[u8; 32]) -> Option<Fe> {
        let fe = Fe::from_bytes(bytes);
        if bytes[31] & 0x80 != 0 || !lt(&fe.0, &P) {
            None
        } else {
            Some(fe)
        }
    }

    /// Serialize to canonical 32 little-endian bytes (value fully reduced).
    pub fn to_bytes(self) -> [u8; 32] {
        let r = self.reduced();
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&r.0[i].to_le_bytes());
        }
        out
    }

    /// Fully reduce into [0, p).
    pub fn reduced(self) -> Fe {
        let mut v = self.0;
        // Almost-reduced values are < 2^256 < 4p + 76, so at most two
        // subtractions of p plus a fold of bit 255 are needed. Folding bit
        // 255 first: 2^255 ≡ 19.
        let top = v[3] >> 63;
        v[3] &= 0x7fff_ffff_ffff_ffff;
        add_small(&mut v, top * 19);
        // Now v < 2^255 + 19·2 ⇒ subtract p at most twice.
        for _ in 0..2 {
            if !lt(&v, &P) {
                sub_in_place(&mut v, &P);
            }
        }
        Fe(v)
    }

    pub fn is_zero(self) -> bool {
        self.reduced().0 == [0, 0, 0, 0]
    }

    /// The parity (lowest bit) of the canonical representative; this is the
    /// "sign" bit used in point compression.
    pub fn is_negative(self) -> bool {
        self.reduced().0[0] & 1 == 1
    }

    pub fn add(self, other: Fe) -> Fe {
        let mut out = [0u64; 4];
        let mut carry = 0u128;
        for (i, limb) in out.iter_mut().enumerate() {
            let s = self.0[i] as u128 + other.0[i] as u128 + carry;
            *limb = s as u64;
            carry = s >> 64;
        }
        // 2^256 ≡ 38 (mod p)
        let mut v = out;
        add_small(&mut v, (carry as u64) * 38);
        Fe(v)
    }

    pub fn sub(self, other: Fe) -> Fe {
        let mut out = [0u64; 4];
        let mut borrow = 0i128;
        for (i, limb) in out.iter_mut().enumerate() {
            let d = self.0[i] as i128 - other.0[i] as i128 - borrow;
            *limb = d as u64;
            borrow = if d < 0 { 1 } else { 0 };
        }
        // A wrap adds 2^256 ≡ 38, so compensate by subtracting 38; this can
        // wrap at most once more.
        let mut v = out;
        while borrow == 1 {
            let mut b = 0i128;
            let mut w = [0u64; 4];
            for i in 0..4 {
                let d = v[i] as i128 - if i == 0 { 38 } else { 0 } - b;
                w[i] = d as u64;
                b = if d < 0 { 1 } else { 0 };
            }
            v = w;
            borrow = b;
        }
        Fe(v)
    }

    pub fn neg(self) -> Fe {
        Fe::ZERO.sub(self)
    }

    pub fn mul(self, other: Fe) -> Fe {
        // Schoolbook 4×4 → 8 limbs, row-wise with a per-row carry. The
        // accumulation `limb + a·b + carry` maxes out at exactly 2^128 − 1,
        // so each step fits in u128.
        let mut limbs = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let s = limbs[i + j] as u128 + self.0[i] as u128 * other.0[j] as u128 + carry;
                limbs[i + j] = s as u64;
                carry = s >> 64;
            }
            // limbs[i+4] has not been written by earlier rows (their carries
            // landed at most at index i+3), so this cannot overflow.
            debug_assert_eq!(limbs[i + 4], 0);
            limbs[i + 4] = carry as u64;
        }
        // Fold: value = lo + 2^256·hi ≡ lo + 38·hi.
        let mut out = [0u64; 4];
        let mut c = 0u128;
        for i in 0..4 {
            let s = limbs[i] as u128 + 38u128 * limbs[i + 4] as u128 + c;
            out[i] = s as u64;
            c = s >> 64;
        }
        // c < 38·2 ⇒ fold once more.
        add_small(&mut out, (c as u64) * 38);
        Fe(out)
    }

    pub fn square(self) -> Fe {
        self.mul(self)
    }

    /// Raise to a little-endian byte exponent (square-and-multiply, msb
    /// first over `bits` bits).
    pub fn pow_le(self, exp: &[u8; 32], bits: usize) -> Fe {
        let mut acc = Fe::ONE;
        for i in (0..bits).rev() {
            acc = acc.square();
            if (exp[i / 8] >> (i % 8)) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat: a^(p−2).
    pub fn invert(self) -> Fe {
        // p − 2 = 2^255 − 21, little-endian bytes: eb ff … ff 7f
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb;
        exp[31] = 0x7f;
        self.pow_le(&exp, 255)
    }

    /// a^((p−5)/8), the core exponentiation for square roots mod p ≡ 5 (mod 8).
    pub fn pow_p58(self) -> Fe {
        // (p − 5)/8 = 2^252 − 3, little-endian bytes: fd ff … ff 0f
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfd;
        exp[31] = 0x0f;
        self.pow_le(&exp, 253)
    }
}

/// sqrt(−1) mod p, computed once as 2^((p−1)/4).
pub(crate) fn sqrt_m1() -> Fe {
    // (p − 1)/4 = 2^253 − 5, little-endian bytes: fb ff … ff 1f
    let mut exp = [0xffu8; 32];
    exp[0] = 0xfb;
    exp[31] = 0x1f;
    Fe::from_u64(2).pow_le(&exp, 254)
}

/// Compute sqrt(u/v) if it exists (per RFC 8032 decompression).
pub(crate) fn sqrt_ratio(u: Fe, v: Fe) -> Option<Fe> {
    let v3 = v.square().mul(v);
    let v7 = v3.square().mul(v);
    let mut x = u.mul(v3).mul(u.mul(v7).pow_p58());
    let vxx = v.mul(x.square());
    if vxx.sub(u).is_zero() {
        return Some(x);
    }
    if vxx.add(u).is_zero() {
        x = x.mul(sqrt_m1());
        return Some(x);
    }
    None
}

fn add_small(v: &mut [u64; 4], small: u64) {
    let mut carry = small as u128;
    for limb in v.iter_mut() {
        let s = *limb as u128 + carry;
        *limb = s as u64;
        carry = s >> 64;
        if carry == 0 {
            break;
        }
    }
    // A final carry out of limb 3 means the value wrapped 2^256 ≡ 38; this
    // cannot recurse more than once because the operand was < 2^256.
    if carry != 0 {
        add_small(v, 38);
    }
}

fn lt(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

fn sub_in_place(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0i128;
    for i in 0..4 {
        let d = a[i] as i128 - b[i] as i128 - borrow;
        a[i] = d as u64;
        borrow = if d < 0 { 1 } else { 0 };
    }
    debug_assert_eq!(borrow, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(v: u64) -> Fe {
        Fe::from_u64(v)
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = fe(12345);
        let b = fe(99999);
        assert_eq!(a.add(b).sub(b).to_bytes(), a.to_bytes());
        assert_eq!(a.sub(b).add(b).to_bytes(), a.to_bytes());
    }

    #[test]
    fn mul_matches_small_ints() {
        assert_eq!(fe(7).mul(fe(6)).to_bytes(), fe(42).to_bytes());
        assert_eq!(fe(0).mul(fe(6)).to_bytes(), Fe::ZERO.to_bytes());
    }

    #[test]
    fn p_reduces_to_zero() {
        assert!(Fe(P).is_zero());
        assert_eq!(Fe(P).to_bytes(), [0u8; 32]);
    }

    #[test]
    fn neg_of_one_is_p_minus_one() {
        let m1 = Fe::ONE.neg();
        assert_eq!(m1.add(Fe::ONE).to_bytes(), [0u8; 32]);
        // p − 1 is even ⇒ "non-negative" under the sign convention? No:
        // p − 1 ends in 0xec ⇒ lowest bit 0 ⇒ not negative... check bytes.
        let b = m1.to_bytes();
        assert_eq!(b[0], 0xec);
        assert_eq!(b[31], 0x7f);
    }

    #[test]
    fn inverse() {
        for v in [1u64, 2, 3, 12345, u64::MAX] {
            let a = fe(v);
            assert_eq!(a.mul(a.invert()).to_bytes(), Fe::ONE.to_bytes());
        }
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = sqrt_m1();
        assert_eq!(i.square().to_bytes(), Fe::ONE.neg().to_bytes());
    }

    #[test]
    fn sqrt_ratio_of_square() {
        let a = fe(123456789);
        let sq = a.square();
        let r = sqrt_ratio(sq, Fe::ONE).expect("square has a root");
        // Root is ±a.
        let ok = r.sub(a).is_zero() || r.add(a).is_zero();
        assert!(ok);
    }

    #[test]
    fn sqrt_ratio_rejects_nonsquare() {
        // 2 is a non-residue mod p (p ≡ 5 mod 8 ⇒ 2 is a QNR).
        assert!(sqrt_ratio(fe(2), Fe::ONE).is_none());
    }

    #[test]
    fn canonical_parse_rejects_p() {
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        assert!(Fe::from_bytes_canonical(&p_bytes).is_none());
        let mut ok = p_bytes;
        ok[0] = 0xec; // p − 1
        assert!(Fe::from_bytes_canonical(&ok).is_some());
    }

    #[test]
    fn distributivity_random() {
        // Cheap pseudo-random check without pulling in rand here.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..50 {
            let a = Fe([next(), next(), next(), next() >> 1]);
            let b = Fe([next(), next(), next(), next() >> 1]);
            let c = Fe([next(), next(), next(), next() >> 1]);
            let lhs = a.mul(b.add(c));
            let rhs = a.mul(b).add(a.mul(c));
            assert_eq!(lhs.to_bytes(), rhs.to_bytes());
        }
    }
}
