//! Property tests on the cryptographic algebra: signatures as a black box
//! (the field/scalar internals are private; their laws are asserted via
//! the signature scheme's behavior, plus the hash functions' stability).

use irs_crypto::{ct_eq, hmac::hmac_sha256, sha256, sha512, Digest, Keypair};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sign/verify succeeds for arbitrary seeds and messages.
    #[test]
    fn sign_verify_total(seed in any::<[u8; 32]>(), msg in prop::collection::vec(any::<u8>(), 0..300)) {
        let kp = Keypair::from_seed(&seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public.verify_ok(&msg, &sig));
    }

    /// Signatures are deterministic (Ed25519 is): same seed+message ⇒
    /// identical bytes.
    #[test]
    fn signing_is_deterministic(seed in any::<[u8; 32]>(), msg in prop::collection::vec(any::<u8>(), 0..64)) {
        let kp1 = Keypair::from_seed(&seed);
        let kp2 = Keypair::from_seed(&seed);
        prop_assert_eq!(kp1.sign(&msg).0.to_vec(), kp2.sign(&msg).0.to_vec());
        prop_assert_eq!(kp1.public, kp2.public);
    }

    /// A signature never verifies under a different message.
    #[test]
    fn signature_binds_message(
        seed in any::<[u8; 32]>(),
        msg in prop::collection::vec(any::<u8>(), 1..100),
        other in prop::collection::vec(any::<u8>(), 1..100),
    ) {
        prop_assume!(msg != other);
        let kp = Keypair::from_seed(&seed);
        let sig = kp.sign(&msg);
        prop_assert!(!kp.public.verify_ok(&other, &sig));
    }

    /// A signature never verifies under a different key.
    #[test]
    fn signature_binds_key(
        seed1 in any::<[u8; 32]>(),
        seed2 in any::<[u8; 32]>(),
        msg in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(seed1 != seed2);
        let kp1 = Keypair::from_seed(&seed1);
        let kp2 = Keypair::from_seed(&seed2);
        let sig = kp1.sign(&msg);
        prop_assert!(!kp2.public.verify_ok(&msg, &sig));
    }

    /// Hash functions: deterministic, length-fixed, and sensitive to every
    /// byte position we flip.
    #[test]
    fn hashes_are_injective_under_bit_flips(
        data in prop::collection::vec(any::<u8>(), 1..200),
        pos in any::<prop::sample::Index>(),
    ) {
        let i = pos.index(data.len());
        let mut mutated = data.clone();
        mutated[i] ^= 0x01;
        prop_assert_ne!(sha256(&data), sha256(&mutated));
        prop_assert_ne!(sha512(&data).to_vec(), sha512(&mutated).to_vec());
    }

    /// Streaming SHA-256 equals one-shot for any split point.
    #[test]
    fn sha256_streaming_consistent(
        data in prop::collection::vec(any::<u8>(), 0..500),
        split in any::<prop::sample::Index>(),
    ) {
        let s = split.index(data.len() + 1);
        let mut h = irs_crypto::Sha256::new();
        h.update(&data[..s]);
        h.update(&data[s..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// HMAC binds both key and message.
    #[test]
    fn hmac_binds_key_and_message(
        key in prop::collection::vec(any::<u8>(), 0..100),
        msg in prop::collection::vec(any::<u8>(), 0..100),
        other_key in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        prop_assume!(key != other_key);
        let tag = hmac_sha256(&key, &msg);
        prop_assert_ne!(tag, hmac_sha256(&other_key, &msg));
    }

    /// ct_eq agrees with ==.
    #[test]
    fn ct_eq_matches_plain_eq(
        a in prop::collection::vec(any::<u8>(), 0..64),
        b in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }

    /// Digest::of_parts is injective across boundary placements.
    #[test]
    fn digest_parts_boundary_sensitive(
        a in prop::collection::vec(any::<u8>(), 1..20),
        b in prop::collection::vec(any::<u8>(), 1..20),
    ) {
        let joined: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        let split = Digest::of_parts(&[&a, &b]);
        let whole = Digest::of_parts(&[&joined]);
        prop_assert_ne!(split, whole);
    }
}
