//! Property tests on the placement tier (DESIGN.md §15): the rendezvous
//! hash must spread keys evenly, move almost nothing when the cluster
//! grows, and serialize bit-for-bit deterministically — these are the
//! invariants the whole scale-out story leans on, so they get fuzzed
//! rather than spot-checked.

use irs_core::ids::LedgerId;
use irs_ledger::{ShardMap, ShardSpec};
use proptest::prelude::*;
use std::collections::HashMap;

/// Distinct ledger ids → shard specs (replica addresses don't affect
/// placement; give each shard one synthetic address anyway so the specs
/// look like production ones).
fn specs(ids: &[u16]) -> Vec<ShardSpec> {
    ids.iter()
        .map(|&id| {
            ShardSpec::new(
                LedgerId(id),
                vec![format!("10.0.{}.{}:4000", id >> 8, id & 0xff)],
            )
        })
        .collect()
}

/// A strategy for `min..=8` distinct ledger ids (drawn as a set, used
/// as a vec — iteration order varies per case, which is itself a useful
/// property to sweep: placement must not depend on shard order).
fn distinct_ids(min: usize) -> impl Strategy<Value = std::collections::HashSet<u16>> {
    prop::collection::hash_set(any::<u16>(), min..=8)
}

/// Deterministic key stream: splitmix-style walk from a seed, so each
/// proptest case sweeps a different 10^5-key slice of the keyspace.
fn keys(seed: u64, n: usize) -> impl Iterator<Item = u64> {
    (0..n as u64).map(move |i| {
        let mut x = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    })
}

const KEYS: usize = 100_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Balance: at 10^5 keys every shard's load is within 15% of the
    /// ideal `keys / shards` share, for any shard count and id set.
    #[test]
    fn rendezvous_balances_within_15_percent(
        ids in distinct_ids(2),
        seed in any::<u64>(),
    ) {
        let ids: Vec<u16> = ids.into_iter().collect();
        let map = ShardMap::new(1, specs(&ids)).unwrap();
        let mut counts: HashMap<LedgerId, usize> = HashMap::new();
        for key in keys(seed, KEYS) {
            *counts.entry(map.shard_for_key(key).ledger).or_default() += 1;
        }
        let ideal = KEYS as f64 / ids.len() as f64;
        for (&ledger, &count) in &counts {
            let skew = (count as f64 - ideal).abs() / ideal;
            prop_assert!(
                skew <= 0.15,
                "shard {ledger} holds {count} of {KEYS} keys \
                 ({skew:.3} from the ideal {ideal:.0})"
            );
        }
        // Every shard got *some* keys — no silent zero-weight shard.
        prop_assert_eq!(counts.len(), ids.len());
    }

    /// Serde determinism: encode → decode → encode is bit-identical,
    /// and the decoded map places every key exactly like the original.
    #[test]
    fn serialization_round_trips_bit_for_bit(
        ids in distinct_ids(1),
        epoch in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let ids: Vec<u16> = ids.into_iter().collect();
        let map = ShardMap::new(epoch, specs(&ids)).unwrap();
        let bytes = map.to_bytes();
        let decoded = ShardMap::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded.epoch(), map.epoch());
        prop_assert_eq!(decoded.shards(), map.shards());
        prop_assert!(decoded.to_bytes() == bytes, "re-encode drifted");
        for key in keys(seed, 1_000) {
            prop_assert_eq!(
                decoded.shard_for_key(key).ledger,
                map.shard_for_key(key).ledger
            );
        }
    }

    /// Corruption is detected: flipping any single bit of the encoding
    /// must fail the CRC (or the structural checks), never decode to a
    /// silently different map.
    #[test]
    fn any_single_bit_flip_is_rejected(
        ids in distinct_ids(1),
        epoch in any::<u64>(),
        flip in any::<u64>(),
    ) {
        let ids: Vec<u16> = ids.into_iter().collect();
        let map = ShardMap::new(epoch, specs(&ids)).unwrap();
        let mut bytes = map.to_bytes();
        let bit = (flip as usize) % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(ShardMap::from_bytes(&bytes).is_err());
    }

    /// Minimal movement: adding one shard to an N-shard map moves at
    /// most ~1/(N+1) of the keys (the rendezvous guarantee), and every
    /// key that moves lands on the new shard — no churn between
    /// surviving shards.
    #[test]
    fn adding_a_shard_moves_at_most_its_fair_share(
        ids in distinct_ids(2),
        seed in any::<u64>(),
    ) {
        let ids: Vec<u16> = ids.into_iter().collect();
        let (new_id, rest) = ids.split_first().unwrap();
        let before = ShardMap::new(1, specs(rest)).unwrap();
        let after = ShardMap::new(2, specs(&ids)).unwrap();
        let mut moved = 0usize;
        for key in keys(seed, KEYS) {
            let src = before.shard_for_key(key).ledger;
            let dst = after.shard_for_key(key).ledger;
            if src != dst {
                prop_assert!(
                    dst == LedgerId(*new_id),
                    "key churned between surviving shards (to {dst})"
                );
                moved += 1;
            }
        }
        // Expected movement is 1/(N+1); allow sampling slack on top.
        let fair = KEYS as f64 / ids.len() as f64;
        let bound = fair * 1.15;
        prop_assert!(
            (moved as f64) <= bound,
            "moved {moved} keys; fair share is {fair:.0} (+15% slack)"
        );
    }
}
