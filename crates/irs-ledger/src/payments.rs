//! Anonymous claim payments (§3.2).
//!
//! "Some ledger implementations … might store payment information in a
//! way that allows such an association to be made; a privacy-focused
//! ledger could use a payment system that intentionally makes such an
//! association difficult even if their database is leaked (e.g., a payment
//! system where an owner buys tokens which are exchanged with other users
//! in a mixing market before being used to pay for claims)."
//!
//! Implementation: ledger-signed bearer tokens with double-spend tracking,
//! plus a mixing market that uniformly permutes tokens across
//! participants. The privacy metric is exactly the paper's threat: given a
//! *leaked* issuer database (serial → purchaser), what fraction of
//! redeemed-at-claim tokens still point at the person who actually made
//! the claim?

use irs_crypto::{Digest, Keypair, PublicKey, Signature};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngCore;
use std::collections::{HashMap, HashSet};

/// A bearer payment token: anyone holding it can pay for one claim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BearerToken {
    /// Random 32-byte serial.
    pub serial: [u8; 32],
    /// Issuer signature over the serial.
    pub sig: Signature,
}

/// Errors from redemption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PaymentError {
    /// Signature invalid (not issued by this ledger).
    BadToken,
    /// Token already redeemed.
    DoubleSpend,
}

impl std::fmt::Display for PaymentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PaymentError::BadToken => write!(f, "token not issued by this ledger"),
            PaymentError::DoubleSpend => write!(f, "token already redeemed"),
        }
    }
}

/// The ledger-side token issuer.
///
/// The purchase log (`serial digest → purchaser`) models the database the
/// paper worries about leaking; [`TokenIssuer::attribute`] is the
/// adversary's query against it.
pub struct TokenIssuer {
    keypair: Keypair,
    purchases: HashMap<Digest, u32>,
    redeemed: HashSet<Digest>,
}

impl TokenIssuer {
    /// Create an issuer with its own signing key.
    pub fn new(seed: u64) -> TokenIssuer {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&seed.to_le_bytes());
        s[8..16].copy_from_slice(b"IRSTOKEN");
        TokenIssuer {
            keypair: Keypair::from_seed(&s),
            purchases: HashMap::new(),
            redeemed: HashSet::new(),
        }
    }

    /// The token verification key.
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public
    }

    /// Sell `n` tokens to `buyer` (identity recorded, as a real payment
    /// processor would).
    pub fn sell(&mut self, buyer: u32, n: usize, rng: &mut StdRng) -> Vec<BearerToken> {
        (0..n)
            .map(|_| {
                let mut serial = [0u8; 32];
                rng.fill_bytes(&mut serial);
                let sig = self.keypair.sign(&serial);
                self.purchases.insert(Digest::of(&serial), buyer);
                BearerToken { serial, sig }
            })
            .collect()
    }

    /// Redeem a token as payment for a claim.
    pub fn redeem(&mut self, token: &BearerToken) -> Result<(), PaymentError> {
        if !self.keypair.public.verify_ok(&token.serial, &token.sig) {
            return Err(PaymentError::BadToken);
        }
        let digest = Digest::of(&token.serial);
        if !self.redeemed.insert(digest) {
            return Err(PaymentError::DoubleSpend);
        }
        Ok(())
    }

    /// The leaked-database query: who *bought* this token?
    pub fn attribute(&self, token: &BearerToken) -> Option<u32> {
        self.purchases.get(&Digest::of(&token.serial)).copied()
    }

    /// Redeemed token count.
    pub fn redeemed_count(&self) -> usize {
        self.redeemed.len()
    }
}

/// A mixing market: participants deposit tokens, the market shuffles, and
/// everyone withdraws the same number of (different) tokens.
#[derive(Default)]
pub struct MixingMarket {
    deposits: Vec<(u32, BearerToken)>,
}

impl MixingMarket {
    /// Empty market.
    pub fn new() -> MixingMarket {
        MixingMarket::default()
    }

    /// Deposit tokens under a participant id.
    pub fn deposit(&mut self, participant: u32, tokens: Vec<BearerToken>) {
        for t in tokens {
            self.deposits.push((participant, t));
        }
    }

    /// Number of deposited tokens.
    pub fn pool_size(&self) -> usize {
        self.deposits.len()
    }

    /// Shuffle and return each participant's withdrawal (same count they
    /// deposited, uniformly random tokens).
    pub fn mix(mut self, rng: &mut StdRng) -> HashMap<u32, Vec<BearerToken>> {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for (p, _) in &self.deposits {
            *counts.entry(*p).or_default() += 1;
        }
        let mut tokens: Vec<BearerToken> = self.deposits.drain(..).map(|(_, t)| t).collect();
        tokens.shuffle(rng);
        let mut out: HashMap<u32, Vec<BearerToken>> = HashMap::new();
        let mut participants: Vec<u32> = counts.keys().copied().collect();
        participants.sort_unstable();
        let mut iter = tokens.into_iter();
        for p in participants {
            let n = counts[&p];
            out.insert(p, iter.by_ref().take(n).collect());
        }
        out
    }
}

/// The privacy experiment: `users` each buy `tokens_each`, optionally mix,
/// then each redeems one token for a claim. Returns the fraction of claims
/// the leaked purchase database attributes to the *correct* claimant.
pub fn attribution_rate(users: u32, tokens_each: usize, mix: bool, seed: u64) -> f64 {
    let mut rng = rand::SeedableRng::seed_from_u64(seed);
    let mut issuer = TokenIssuer::new(seed);
    let mut holdings: HashMap<u32, Vec<BearerToken>> = (0..users)
        .map(|u| (u, issuer.sell(u, tokens_each, &mut rng)))
        .collect();
    if mix {
        let mut market = MixingMarket::new();
        for (u, tokens) in holdings.drain() {
            market.deposit(u, tokens);
        }
        holdings = market.mix(&mut rng);
    }
    let mut correct = 0u32;
    for u in 0..users {
        let token = holdings.get_mut(&u).and_then(|v| v.pop()).expect("token");
        issuer.redeem(&token).expect("valid token");
        if issuer.attribute(&token) == Some(u) {
            correct += 1;
        }
    }
    correct as f64 / users as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sell_redeem_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut issuer = TokenIssuer::new(1);
        let tokens = issuer.sell(7, 3, &mut rng);
        assert_eq!(tokens.len(), 3);
        for t in &tokens {
            issuer.redeem(t).unwrap();
        }
        assert_eq!(issuer.redeemed_count(), 3);
    }

    #[test]
    fn double_spend_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut issuer = TokenIssuer::new(2);
        let t = issuer.sell(1, 1, &mut rng)[0];
        issuer.redeem(&t).unwrap();
        assert_eq!(issuer.redeem(&t), Err(PaymentError::DoubleSpend));
    }

    #[test]
    fn forged_token_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut issuer = TokenIssuer::new(3);
        let other = TokenIssuer::new(4);
        let mut serial = [0u8; 32];
        rng.fill_bytes(&mut serial);
        let forged = BearerToken {
            serial,
            sig: Keypair::from_seed(&[9u8; 32]).sign(&serial),
        };
        assert_eq!(issuer.redeem(&forged), Err(PaymentError::BadToken));
        let _ = other;
    }

    #[test]
    fn mixing_preserves_counts_and_tokens() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut issuer = TokenIssuer::new(5);
        let mut market = MixingMarket::new();
        let mut all_serials: Vec<[u8; 32]> = Vec::new();
        for u in 0..5u32 {
            let tokens = issuer.sell(u, 4, &mut rng);
            all_serials.extend(tokens.iter().map(|t| t.serial));
            market.deposit(u, tokens);
        }
        assert_eq!(market.pool_size(), 20);
        let out = market.mix(&mut rng);
        let mut returned: Vec<[u8; 32]> = out
            .values()
            .flat_map(|v| v.iter().map(|t| t.serial))
            .collect();
        assert_eq!(returned.len(), 20);
        returned.sort_unstable();
        all_serials.sort_unstable();
        assert_eq!(returned, all_serials, "mixing is a permutation");
        for v in out.values() {
            assert_eq!(v.len(), 4, "everyone withdraws what they deposited");
        }
    }

    #[test]
    fn unmixed_claims_fully_attributable() {
        assert_eq!(attribution_rate(20, 2, false, 6), 1.0);
    }

    #[test]
    fn mixed_claims_mostly_unattributable() {
        // With 20 users × 2 tokens, a uniform mix leaves ≈ 1/20 chance of
        // getting your own token back.
        let rate = attribution_rate(20, 2, true, 7);
        assert!(rate <= 0.25, "attribution after mixing: {rate}");
    }

    #[test]
    fn mixed_tokens_still_redeemable() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut issuer = TokenIssuer::new(8);
        let mut market = MixingMarket::new();
        for u in 0..3u32 {
            market.deposit(u, issuer.sell(u, 2, &mut rng));
        }
        let out = market.mix(&mut rng);
        for tokens in out.values() {
            for t in tokens {
                issuer.redeem(t).unwrap();
            }
        }
        assert_eq!(issuer.redeemed_count(), 6);
    }
}
