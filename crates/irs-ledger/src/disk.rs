//! Storage abstraction under the durability subsystem.
//!
//! The WAL, snapshot, and recovery code talk to a small [`Disk`] trait
//! instead of `std::fs` directly, so the same code path runs against the
//! real filesystem ([`StdDisk`]) in production and against the seeded
//! fault-injecting [`crate::chaosdisk::ChaosDisk`] in crash experiments —
//! the durability analogue of `irs-net`'s chaos transport sitting where a
//! TCP stack would.
//!
//! The contract is deliberately narrow: whole-file reads, append-only
//! writes, explicit syncs, and atomic whole-file replacement. That is all
//! a log-structured ledger needs, and a small surface keeps the fault
//! model of the chaos backend honest (every operation has a well-defined
//! durability meaning).

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

/// Append-oriented storage with explicit durability points.
///
/// Durability semantics callers may rely on:
///
/// * bytes passed to [`append`](Disk::append) are *visible* to subsequent
///   [`read`](Disk::read)s immediately, but only *durable* (survive a
///   crash) once a later [`sync`](Disk::sync) on the same path returns;
/// * [`write_atomic`](Disk::write_atomic) replaces the whole file
///   all-or-nothing and is durable on return (tmp + fsync + rename);
/// * on crash, an unsynced append tail may survive only as a *prefix*
///   (the torn-write model — bytes persist in write order).
pub trait Disk: Send + Sync {
    /// Read the whole file. `ErrorKind::NotFound` when it does not exist.
    fn read(&self, path: &str) -> io::Result<Vec<u8>>;
    /// Append bytes to the end of the file, creating it if needed.
    fn append(&self, path: &str, data: &[u8]) -> io::Result<()>;
    /// Make previously appended bytes durable (fsync).
    fn sync(&self, path: &str) -> io::Result<()>;
    /// Atomically replace the file's contents; durable on return.
    fn write_atomic(&self, path: &str, data: &[u8]) -> io::Result<()>;
    /// Whether the file exists.
    fn exists(&self, path: &str) -> bool;
    /// Remove the file (ok if absent).
    fn remove(&self, path: &str) -> io::Result<()>;
}

/// [`Disk`] over the real filesystem, rooted at a directory.
///
/// Open append handles are cached per path so a hot WAL does not reopen
/// its file on every record. Appends to one path must be externally
/// serialized (the WAL writer's lock does this); `sync` may run
/// concurrently with appends, which is exactly what group commit wants.
pub struct StdDisk {
    root: PathBuf,
    handles: Mutex<HashMap<String, Arc<std::fs::File>>>,
}

impl StdDisk {
    /// Create a disk rooted at `root`, creating the directory if needed.
    pub fn new(root: impl AsRef<Path>) -> io::Result<StdDisk> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(StdDisk {
            root,
            handles: Mutex::new(HashMap::new()),
        })
    }

    /// The root directory files live under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn full(&self, path: &str) -> PathBuf {
        self.root.join(path)
    }

    fn handle(&self, path: &str) -> io::Result<Arc<std::fs::File>> {
        let mut handles = self.handles.lock();
        if let Some(f) = handles.get(path) {
            return Ok(f.clone());
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.full(path))?;
        let file = Arc::new(file);
        handles.insert(path.to_string(), file.clone());
        Ok(file)
    }

    /// Best-effort fsync of the root directory (makes renames durable).
    fn sync_dir(&self) {
        if let Ok(dir) = std::fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
    }
}

impl Disk for StdDisk {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.full(path))
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let file = self.handle(path)?;
        (&*file).write_all(data)
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        self.handle(path)?.sync_all()
    }

    fn write_atomic(&self, path: &str, data: &[u8]) -> io::Result<()> {
        let tmp = self.full(&format!("{path}.tmp"));
        let dst = self.full(path);
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &dst)?;
        // The cached append handle (if any) points at the replaced inode.
        self.handles.lock().remove(path);
        self.sync_dir();
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.full(path).exists()
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.handles.lock().remove(path);
        match std::fs::remove_file(self.full(path)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }
}

#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "irs-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_read_sync_roundtrip() {
        let dir = test_dir("disk");
        let disk = StdDisk::new(&dir).unwrap();
        assert!(!disk.exists("wal.log"));
        disk.append("wal.log", b"hello ").unwrap();
        disk.append("wal.log", b"world").unwrap();
        disk.sync("wal.log").unwrap();
        assert_eq!(disk.read("wal.log").unwrap(), b"hello world");
        assert!(disk.exists("wal.log"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_and_resets_append_handle() {
        let dir = test_dir("disk");
        let disk = StdDisk::new(&dir).unwrap();
        disk.append("snap.bin", b"old-contents").unwrap();
        disk.write_atomic("snap.bin", b"new").unwrap();
        assert_eq!(disk.read("snap.bin").unwrap(), b"new");
        // Appends after the swap land on the new inode, not the old one.
        disk.append("snap.bin", b"+tail").unwrap();
        assert_eq!(disk.read("snap.bin").unwrap(), b"new+tail");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_and_remove() {
        let dir = test_dir("disk");
        let disk = StdDisk::new(&dir).unwrap();
        assert_eq!(
            disk.read("nope").unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        disk.remove("nope").unwrap(); // absent is fine
        disk.append("x", b"1").unwrap();
        disk.remove("x").unwrap();
        assert!(!disk.exists("x"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
