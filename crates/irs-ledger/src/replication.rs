//! WAL-shipping primary→follower replication.
//!
//! The CRC-framed WAL (see [`crate::wal`]) *is* the replication stream:
//! every durable record carries a dense, monotone sequence number
//! assigned at append time, and a follower tails the stream by polling
//! `Request::WalSubscribe { from_seq }` — each poll returns one bounded
//! `Response::WalSegment` batch, and polling `from_seq = n` doubles as
//! the follower's acknowledgement that everything below `n` is durably
//! applied on its side (no separate ack op threads through the mux).
//!
//! Three invariants carry the zero-acked-write-loss guarantee:
//!
//! 1. **The primary never ships a frame it could still lose.** The
//!    [`ReplicationLog`] serves only sequence numbers at or below the
//!    WAL's synced high-water mark, so a follower can never hold a
//!    record the primary's crash would erase — promotion cannot
//!    *invent* unacked writes.
//! 2. **The follower never acks a frame it could still lose.** A
//!    segment is applied into the follower's own store *and* local WAL
//!    (committed per its fsync policy) before the next poll advances
//!    `from_seq`.
//! 3. **Under [`ReplicationPolicy::WaitForFollower`], the primary never
//!    acks a write the follower has not.** The durable-apply path blocks
//!    (bounded) until the follower's ack covers the record's sequence
//!    number, so a kill-the-primary failover loses nothing acknowledged.
//!
//! Sequence numbers are scoped to one primary *process instance*: a
//! restarted primary restarts them after whatever its log holds, so a
//! follower must re-bootstrap from a snapshot whenever its connection to
//! the primary is re-established rather than trust seq continuity
//! across the gap. The [`Follower`] does exactly that, and treats any
//! hole, overlap, or corruption in a shipped segment as a signal to
//! stop and re-sync — never to apply around it.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use irs_core::ids::LedgerId;
use irs_core::tsa::TimestampAuthority;
use irs_obs::{Gauge, Histogram, Registry};
use std::sync::{Condvar, Mutex};

use crate::concurrent::{ConcurrentLedger, DurabilityConfig, SNAPSHOT_PATH, WAL_PATH};
use crate::disk::Disk;
use crate::recovery::RecoveryError;
use crate::snapshot::{decode_snapshot, encode_snapshot, SnapshotError};
use crate::store::StoreError;
use crate::wal::{crc32, decode_frames, encode_header, WalError, WAL_HEADER_LEN};
use crate::LedgerConfig;

/// How many shipped frames the primary retains in memory for followers
/// that fall behind. A follower further behind than this re-bootstraps
/// from a snapshot instead of tailing the log.
pub const DEFAULT_RETAIN_FRAMES: usize = 8192;

/// Sidecar file on the follower's disk recording the sequence number its
/// bootstrap snapshot covered: `[seq u64][crc32 u32]`. On reopen, the
/// follower's replication cursor is this base plus the records in its
/// local WAL.
pub const REPLICA_SEQ_PATH: &str = "replica.seq";

/// When the primary acknowledges a durable write, relative to follower
/// replication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicationPolicy {
    /// Ack after the local fsync policy is satisfied (replication is
    /// asynchronous; a failover can lose writes acked after the
    /// follower's last poll).
    LocalOnly,
    /// Ack only after a follower's poll cursor covers the record, or
    /// fail the write with a storage error after `timeout_ms` — the
    /// write may still be present locally (at-least-once), but nothing
    /// is promised to the client that the follower does not hold.
    WaitForFollower {
        /// Upper bound on the ack wait before the write errors.
        timeout_ms: u64,
    },
}

impl ReplicationPolicy {
    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReplicationPolicy::LocalOnly => "local-only",
            ReplicationPolicy::WaitForFollower { .. } => "wait-follower",
        }
    }
}

/// One shipped batch of WAL frames (the payload of `Response::WalSegment`).
#[derive(Clone, Debug, PartialEq)]
pub struct SegmentData {
    /// Sequence number of the first frame in `frames` (equals the
    /// requested `from_seq` when `frames` is empty).
    pub first_seq: u64,
    /// Highest durable sequence number on the primary at serve time.
    pub durable_seq: u64,
    /// Oldest sequence number the primary still retains.
    pub log_start_seq: u64,
    /// Concatenated CRC-framed WAL records.
    pub frames: Bytes,
}

struct LogInner {
    /// Retained frames keyed by sequence number. A `BTreeMap` rather
    /// than a deque because concurrent writers publish out of order
    /// (each under its own shard lock); `segment` only ever serves a
    /// contiguous run, so holes are never shipped.
    frames: BTreeMap<u64, Vec<u8>>,
    /// Oldest sequence number still retained (== next publish seq when
    /// `frames` is empty).
    start_seq: u64,
    /// Highest sequence number a follower poll has acknowledged.
    acked_seq: u64,
}

/// The primary's in-memory tail of shipped-frame history, plus the
/// follower-ack high-water mark the [`ReplicationPolicy::WaitForFollower`]
/// gate blocks on. Single-follower: an ack prunes everything it covers.
pub struct ReplicationLog {
    inner: Mutex<LogInner>,
    ack_cond: Condvar,
    retain: usize,
    /// Highest sequence number shipped as durable (scrape-time view).
    durable_gauge: Gauge,
    /// Highest follower-acknowledged sequence number.
    acked_gauge: Gauge,
    /// `durable - acked` at last serve: the follower's replication lag.
    lag_gauge: Gauge,
}

impl ReplicationLog {
    /// Create a log whose first published frame will carry `next_seq`,
    /// registering the replication gauges in `registry`.
    pub fn new(next_seq: u64, retain: usize, registry: &Registry) -> ReplicationLog {
        ReplicationLog {
            inner: Mutex::new(LogInner {
                frames: BTreeMap::new(),
                start_seq: next_seq,
                acked_seq: 0,
            }),
            ack_cond: Condvar::new(),
            retain: retain.max(1),
            durable_gauge: registry.gauge("irs_ledger_repl_durable_seq"),
            acked_gauge: registry.gauge("irs_ledger_repl_acked_seq"),
            lag_gauge: registry.gauge("irs_ledger_repl_lag"),
        }
    }

    /// Retain one appended frame for shipping. Called from the WAL
    /// append hook (under a shard lock — this mutex is a leaf). Frames
    /// above the retention cap evict the oldest retained frame; a
    /// follower that needed it will observe `log_start_seq` moving past
    /// its cursor and re-bootstrap.
    pub fn publish(&self, seq: u64, frame: Vec<u8>) {
        let mut inner = self.inner.lock().expect("replication log poisoned");
        inner.frames.insert(seq, frame);
        while inner.frames.len() > self.retain {
            let (&oldest, _) = inner.frames.first_key_value().expect("non-empty");
            inner.frames.remove(&oldest);
            inner.start_seq = inner.start_seq.max(oldest + 1);
        }
    }

    /// Record a follower acknowledgement of every sequence number at or
    /// below `seq`: wakes blocked [`wait_acked`](Self::wait_acked)
    /// callers and prunes covered frames.
    pub fn record_ack(&self, seq: u64) {
        let mut inner = self.inner.lock().expect("replication log poisoned");
        if seq > inner.acked_seq {
            inner.acked_seq = seq;
            self.acked_gauge.set(seq);
            while let Some((&oldest, _)) = inner.frames.first_key_value() {
                if oldest > seq {
                    break;
                }
                inner.frames.remove(&oldest);
                inner.start_seq = inner.start_seq.max(oldest + 1);
            }
            self.ack_cond.notify_all();
        }
    }

    /// Highest follower-acknowledged sequence number.
    pub fn acked_seq(&self) -> u64 {
        self.inner
            .lock()
            .expect("replication log poisoned")
            .acked_seq
    }

    /// Block until a follower ack covers `seq`, or `timeout` elapses.
    /// Returns whether the ack arrived. Called *outside* any shard lock.
    pub fn wait_acked(&self, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("replication log poisoned");
        while inner.acked_seq < seq {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            inner = self
                .ack_cond
                .wait_timeout(inner, deadline - now)
                .expect("replication log poisoned")
                .0;
        }
        true
    }

    /// Serve one bounded contiguous batch starting at `from_seq`, never
    /// shipping past `durable_seq` (the caller passes the WAL's
    /// replicable high-water mark — a follower must not receive a frame
    /// the primary could still lose). If `from_seq` predates retention,
    /// the reply is empty with `log_start_seq > from_seq`, which the
    /// follower reads as "re-bootstrap".
    pub fn segment(&self, from_seq: u64, max_frames: u32, durable_seq: u64) -> SegmentData {
        let inner = self.inner.lock().expect("replication log poisoned");
        self.durable_gauge.set(durable_seq);
        self.lag_gauge
            .set(durable_seq.saturating_sub(inner.acked_seq));
        let mut frames = Vec::new();
        if from_seq >= inner.start_seq {
            let mut seq = from_seq;
            let mut count = 0u32;
            while count < max_frames && seq <= durable_seq {
                match inner.frames.get(&seq) {
                    Some(frame) => {
                        frames.extend_from_slice(frame);
                        seq += 1;
                        count += 1;
                    }
                    None => break,
                }
            }
        }
        SegmentData {
            first_seq: from_seq,
            durable_seq,
            log_start_seq: inner.start_seq,
            frames: frames.into(),
        }
    }
}

/// Why a shipped segment was rejected (or the apply path failed).
#[derive(Debug)]
pub enum ApplyError {
    /// The segment starts past the follower's cursor, or the primary no
    /// longer retains the cursor: records are missing in between. The
    /// follower must re-bootstrap from a snapshot, never apply a hole.
    Gap {
        /// The sequence number the follower needs next.
        expected: u64,
        /// The first sequence number the segment (or retention) offers.
        got: u64,
    },
    /// Every frame in the segment is below the follower's cursor — a
    /// reordered or replayed delivery, rejected outright.
    Duplicate {
        /// The segment's last sequence number.
        through: u64,
    },
    /// Frame framing, checksum, or payload decode failed.
    Corrupt(&'static str),
    /// The follower's local WAL rejected the write.
    Wal(WalError),
    /// The record contradicts the follower's state (broken stream).
    Store(StoreError),
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::Gap { expected, got } => {
                write!(f, "sequence gap: expected {expected}, segment offers {got}")
            }
            ApplyError::Duplicate { through } => {
                write!(f, "duplicate segment (through seq {through})")
            }
            ApplyError::Corrupt(what) => write!(f, "corrupt segment: {what}"),
            ApplyError::Wal(e) => write!(f, "follower wal: {e}"),
            ApplyError::Store(e) => write!(f, "follower store: {e}"),
        }
    }
}

impl std::error::Error for ApplyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApplyError::Wal(e) => Some(e),
            ApplyError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for ApplyError {
    fn from(e: WalError) -> ApplyError {
        ApplyError::Wal(e)
    }
}

impl From<StoreError> for ApplyError {
    fn from(e: StoreError) -> ApplyError {
        ApplyError::Store(e)
    }
}

/// Errors constructing (or reopening) a follower.
#[derive(Debug)]
pub enum FollowerError {
    /// The bootstrap snapshot failed validation.
    Snapshot(SnapshotError),
    /// Local durable state failed to materialize or recover.
    Recovery(RecoveryError),
    /// Local disk i/o failed.
    Io(std::io::Error),
    /// The sidecar recording the bootstrap base seq is damaged.
    SidecarCorrupt,
}

impl std::fmt::Display for FollowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FollowerError::Snapshot(e) => write!(f, "follower bootstrap: {e}"),
            FollowerError::Recovery(e) => write!(f, "follower recovery: {e}"),
            FollowerError::Io(e) => write!(f, "follower i/o: {e}"),
            FollowerError::SidecarCorrupt => write!(f, "replica.seq sidecar corrupt"),
        }
    }
}

impl std::error::Error for FollowerError {}

impl From<SnapshotError> for FollowerError {
    fn from(e: SnapshotError) -> FollowerError {
        FollowerError::Snapshot(e)
    }
}

impl From<RecoveryError> for FollowerError {
    fn from(e: RecoveryError) -> FollowerError {
        FollowerError::Recovery(e)
    }
}

impl From<std::io::Error> for FollowerError {
    fn from(e: std::io::Error) -> FollowerError {
        FollowerError::Io(e)
    }
}

fn encode_sidecar(seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&crc32(&seq.to_be_bytes()).to_be_bytes());
    out
}

fn decode_sidecar(bytes: &[u8]) -> Result<u64, FollowerError> {
    if bytes.len() != 12 {
        return Err(FollowerError::SidecarCorrupt);
    }
    let (seq_bytes, crc_bytes) = bytes.split_at(8);
    let stored = u32::from_be_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(seq_bytes) != stored {
        return Err(FollowerError::SidecarCorrupt);
    }
    Ok(u64::from_be_bytes([
        seq_bytes[0],
        seq_bytes[1],
        seq_bytes[2],
        seq_bytes[3],
        seq_bytes[4],
        seq_bytes[5],
        seq_bytes[6],
        seq_bytes[7],
    ]))
}

/// A replica that catches up from a primary snapshot and then applies
/// the shipped WAL stream into its own [`ConcurrentLedger`] + local WAL.
///
/// Transport-agnostic: the caller fetches the bootstrap snapshot and
/// polls segments over whatever channel it has (see `irs-net`'s
/// `LedgerClient` helpers), handing the payloads to
/// [`bootstrap`](Self::bootstrap) / [`apply_segment`](Self::apply_segment).
pub struct Follower {
    ledger: Arc<ConcurrentLedger>,
    disk: Arc<dyn Disk>,
    /// Sequence number the bootstrap snapshot covered.
    base_seq: u64,
    /// Next sequence number this follower needs (== the `from_seq` its
    /// next poll should carry; everything below is durably applied).
    next_seq: u64,
    /// Mirror of `next_seq - 1` for scrapes.
    applied_gauge: Gauge,
    /// Primary's durable seq as of the last applied segment.
    source_durable_gauge: Gauge,
    /// Wall time of one segment apply (decode + store + local WAL).
    apply_us: Histogram,
}

impl Follower {
    /// Materialize a follower from a primary snapshot (`Response::Snapshot`
    /// payload): validate it, persist it locally under a fresh local WAL
    /// (generation 0), record the covered seq in the sidecar, and recover
    /// a serving ledger from the lot. `durability.snapshot_every` is
    /// forced off — the follower's local WAL must not rotate, because its
    /// record count is what locates the replication cursor on reopen.
    pub fn bootstrap(
        config: LedgerConfig,
        tsa: TimestampAuthority,
        num_shards: usize,
        mut durability: DurabilityConfig,
        snapshot_seq: u64,
        snapshot_data: &[u8],
    ) -> Result<Follower, FollowerError> {
        let snap = decode_snapshot(snapshot_data)?;
        if snap.ledger != config.id {
            return Err(FollowerError::Snapshot(SnapshotError::Corrupt(
                "snapshot belongs to a different ledger",
            )));
        }
        // Re-anchor the snapshot to the follower's fresh local WAL:
        // generation 0, replay resuming right after the header.
        let local = encode_snapshot(
            snap.ledger,
            0,
            WAL_HEADER_LEN as u64,
            &snap.records,
            &snap.filter,
        );
        let disk = durability.disk.clone();
        disk.write_atomic(WAL_PATH, &encode_header(config.id, 0))?;
        disk.write_atomic(SNAPSHOT_PATH, &local)?;
        disk.write_atomic(REPLICA_SEQ_PATH, &encode_sidecar(snapshot_seq))?;
        durability.snapshot_every = None;
        let ledger = ConcurrentLedger::recover(config, tsa, num_shards, durability)?;
        Ok(Follower::assemble(
            ledger,
            disk,
            snapshot_seq,
            snapshot_seq + 1,
        ))
    }

    /// Reopen a follower from its own disk after a crash: recover the
    /// local snapshot + WAL, then recompute the replication cursor as
    /// the sidecar base plus the local WAL's record count (valid because
    /// the local WAL never rotates).
    pub fn reopen(
        config: LedgerConfig,
        tsa: TimestampAuthority,
        num_shards: usize,
        mut durability: DurabilityConfig,
    ) -> Result<Follower, FollowerError> {
        let disk = durability.disk.clone();
        let base_seq = decode_sidecar(&disk.read(REPLICA_SEQ_PATH)?)?;
        durability.snapshot_every = None;
        let ledger = ConcurrentLedger::recover(config, tsa, num_shards, durability)?;
        let replayed = ledger
            .recovery_report()
            .map(|r| r.wal_records as u64)
            .unwrap_or(0);
        Ok(Follower::assemble(
            ledger,
            disk,
            base_seq,
            base_seq + replayed + 1,
        ))
    }

    fn assemble(
        ledger: ConcurrentLedger,
        disk: Arc<dyn Disk>,
        base_seq: u64,
        next_seq: u64,
    ) -> Follower {
        let registry = ledger.metrics().clone();
        let applied_gauge = registry.gauge("irs_ledger_repl_applied_seq");
        let source_durable_gauge = registry.gauge("irs_ledger_repl_source_durable_seq");
        let apply_us = registry.histogram("irs_ledger_repl_apply_us");
        applied_gauge.set(next_seq - 1);
        Follower {
            ledger: Arc::new(ledger),
            disk,
            base_seq,
            next_seq,
            applied_gauge,
            source_durable_gauge,
            apply_us,
        }
    }

    /// The ledger this follower applies into. Promotion is handing this
    /// handle to a server: the follower's state is already durable and
    /// byte-identical to everything it acked, so it serves immediately.
    pub fn ledger(&self) -> Arc<ConcurrentLedger> {
        self.ledger.clone()
    }

    /// This ledger's identifier.
    pub fn id(&self) -> LedgerId {
        self.ledger.id()
    }

    /// The sequence number the bootstrap snapshot covered.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The `from_seq` the next poll should carry: everything below it is
    /// durably applied here (polling it is the ack).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Replication lag against the last segment's view of the primary:
    /// `durable_seq - (next_seq - 1)`.
    pub fn lag(&self) -> u64 {
        self.source_durable_gauge
            .get()
            .saturating_sub(self.next_seq - 1)
    }

    /// Apply one shipped segment, strictly in order:
    ///
    /// * retention moved past our cursor, or the segment starts beyond
    ///   it → [`ApplyError::Gap`] (re-bootstrap; never apply a hole);
    /// * every frame below our cursor → [`ApplyError::Duplicate`];
    /// * framing/CRC/payload damage → [`ApplyError::Corrupt`];
    /// * partial overlap → the already-applied prefix is skipped.
    ///
    /// Records are inserted with the primary's serials, timestamps, and
    /// epochs (byte-identical state), appended to the local WAL under
    /// the same shard locks, and committed before return — only then is
    /// advancing the poll cursor (the ack) sound. Returns the number of
    /// records applied.
    pub fn apply_segment(&mut self, seg: &SegmentData) -> Result<usize, ApplyError> {
        let started = Instant::now();
        self.source_durable_gauge.set(seg.durable_seq);
        if seg.log_start_seq > self.next_seq {
            return Err(ApplyError::Gap {
                expected: self.next_seq,
                got: seg.log_start_seq,
            });
        }
        let records = decode_frames(&seg.frames).map_err(ApplyError::Corrupt)?;
        if records.is_empty() {
            return Ok(0);
        }
        let end_seq = seg.first_seq + records.len() as u64 - 1;
        if seg.first_seq > self.next_seq {
            return Err(ApplyError::Gap {
                expected: self.next_seq,
                got: seg.first_seq,
            });
        }
        if end_seq < self.next_seq {
            return Err(ApplyError::Duplicate { through: end_seq });
        }
        let skip = (self.next_seq - seg.first_seq) as usize;
        let mut applied = 0usize;
        let mut last_lsn = None;
        for record in &records[skip..] {
            let receipt = self.ledger.apply_replicated(record)?;
            last_lsn = Some(receipt.lsn);
            self.next_seq += 1;
            applied += 1;
        }
        // Durable before acked: commit the batch once, then advance the
        // cursor the next poll exposes.
        if let Some(lsn) = last_lsn {
            self.ledger.commit_replicated(lsn)?;
        }
        self.applied_gauge.set(self.next_seq - 1);
        self.apply_us.record_since(started);
        Ok(applied)
    }

    /// The follower's local disk (tests inject faults through it).
    pub fn disk(&self) -> &Arc<dyn Disk> {
        &self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_roundtrips_and_rejects_damage() {
        let bytes = encode_sidecar(123_456);
        assert_eq!(decode_sidecar(&bytes).unwrap(), 123_456);
        let mut flipped = bytes.clone();
        flipped[3] ^= 0x10;
        assert!(matches!(
            decode_sidecar(&flipped),
            Err(FollowerError::SidecarCorrupt)
        ));
        assert!(matches!(
            decode_sidecar(&bytes[..7]),
            Err(FollowerError::SidecarCorrupt)
        ));
    }

    #[test]
    fn log_serves_only_contiguous_durable_runs() {
        let registry = Registry::new();
        let log = ReplicationLog::new(1, 64, &registry);
        log.publish(1, vec![0xa1]);
        log.publish(3, vec![0xa3]); // hole at 2: concurrent shard won the race
        let seg = log.segment(1, 16, 3);
        assert_eq!(seg.first_seq, 1);
        assert_eq!(seg.frames.as_ref(), &[0xa1]); // stops at the hole
        log.publish(2, vec![0xa2]);
        let seg = log.segment(1, 16, 3);
        assert_eq!(seg.frames.as_ref(), &[0xa1, 0xa2, 0xa3]);
        // Durability bound: seq 3 not shipped when durable_seq = 2.
        let seg = log.segment(1, 16, 2);
        assert_eq!(seg.frames.as_ref(), &[0xa1, 0xa2]);
        // max_frames bound.
        let seg = log.segment(1, 2, 3);
        assert_eq!(seg.frames.as_ref(), &[0xa1, 0xa2]);
    }

    #[test]
    fn log_retention_moves_start_seq() {
        let registry = Registry::new();
        let log = ReplicationLog::new(1, 4, &registry);
        for seq in 1..=10u64 {
            log.publish(seq, vec![seq as u8]);
        }
        let seg = log.segment(1, 16, 10);
        assert!(seg.frames.is_empty());
        assert_eq!(seg.log_start_seq, 7); // 8 retained → 4 kept: 7..=10
        let seg = log.segment(7, 16, 10);
        assert_eq!(seg.frames.as_ref(), &[7, 8, 9, 10]);
    }

    #[test]
    fn acks_prune_and_release_waiters() {
        let registry = Registry::new();
        let log = Arc::new(ReplicationLog::new(1, 64, &registry));
        log.publish(1, vec![1]);
        log.publish(2, vec![2]);
        assert!(!log.wait_acked(2, Duration::from_millis(10)));
        let waiter = {
            let log = log.clone();
            std::thread::spawn(move || log.wait_acked(2, Duration::from_secs(5)))
        };
        log.record_ack(2);
        assert!(waiter.join().unwrap());
        assert_eq!(log.acked_seq(), 2);
        // Pruned: a poll below the ack sees retention moved past it.
        let seg = log.segment(1, 16, 2);
        assert!(seg.frames.is_empty());
        assert_eq!(seg.log_start_seq, 3);
        // Stale ack never regresses the high-water mark.
        log.record_ack(1);
        assert_eq!(log.acked_seq(), 2);
    }
}
