//! The appeals process (§3.2, and the §5 re-claiming attack's remedy).
//!
//! "The original owner presents the ledger with the original photo and a
//! signed timestamp of the original claim, along with the copied version
//! of the photo. The ledger then compares the original with the copy,
//! using robust hashing (as in PhotoDNA) and/or human inspection. If they
//! believe that the copy is derived from the original photo, they then
//! mark it as permanently revoked."

use crate::service::Ledger;
use irs_core::ids::RecordId;
use irs_core::photo::PhotoFile;
use irs_core::time::TimeMs;
use irs_core::wallet::AppealEvidence;
use irs_crypto::PublicKey;
use irs_imaging::phash::{MatchVerdict, RobustMatcher};

/// Outcome of adjudicating one appeal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppealOutcome {
    /// Copy is derived from the appellant's earlier original: the accused
    /// record was permanently revoked.
    Upheld,
    /// The images are not derived: appeal rejected.
    RejectedNotDerived,
    /// Evidence did not hold up (bad signature, timestamp, or ordering).
    RejectedBadEvidence(EvidenceDefect),
    /// Robust-hash distance fell in the gray zone: queue for the human
    /// inspection the paper allows.
    EscalateToHuman,
}

/// Why evidence was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvidenceDefect {
    /// Appellant's claim signature does not cover the presented photo.
    OwnershipSignature,
    /// Timestamp token failed verification.
    Timestamp,
    /// The appellant's claim is not older than the accused claim — first
    /// to claim wins, by authenticated timestamp.
    NotEarlier,
    /// Accused record does not exist on this ledger.
    UnknownAccused,
}

/// Adjudicates appeals against records held by one ledger.
pub struct AppealsJudge {
    matcher: RobustMatcher,
    /// Appeals resolved, by outcome kind (ops metrics).
    pub upheld: u64,
    /// Appeals rejected (either rejection kind).
    pub rejected: u64,
    /// Appeals escalated to human review.
    pub escalated: u64,
}

impl Default for AppealsJudge {
    fn default() -> Self {
        Self::new(RobustMatcher::default())
    }
}

impl AppealsJudge {
    /// Create a judge with a configured matcher.
    pub fn new(matcher: RobustMatcher) -> AppealsJudge {
        AppealsJudge {
            matcher,
            upheld: 0,
            rejected: 0,
            escalated: 0,
        }
    }

    /// Adjudicate: `evidence` is the appellant's package; `accused` is the
    /// re-claimed record on `ledger`; `accused_photo` is the published
    /// photo carrying the accused label; `trusted_tsa` verifies timestamp
    /// tokens. On `Upheld` the accused record is permanently revoked in
    /// the ledger.
    pub fn adjudicate(
        &mut self,
        ledger: &mut Ledger,
        evidence: &AppealEvidence,
        accused: RecordId,
        accused_photo: &PhotoFile,
        trusted_tsa: &PublicKey,
        _now: TimeMs,
    ) -> AppealOutcome {
        // 1. Evidence integrity: the claim must prove ownership of the
        //    presented original.
        if !evidence
            .claim
            .proves_ownership_of(&evidence.original_photo.digest())
        {
            self.rejected += 1;
            return AppealOutcome::RejectedBadEvidence(EvidenceDefect::OwnershipSignature);
        }
        // 2. The timestamp must cover this claim and verify.
        if evidence.timestamp.stamped != evidence.claim.digest()
            || !evidence.timestamp.verify(trusted_tsa)
        {
            self.rejected += 1;
            return AppealOutcome::RejectedBadEvidence(EvidenceDefect::Timestamp);
        }
        // 3. The accused record must exist, and must be *younger* than the
        //    appellant's claim (first claim wins).
        let Some(accused_rec) = ledger.store().get(&accused) else {
            self.rejected += 1;
            return AppealOutcome::RejectedBadEvidence(EvidenceDefect::UnknownAccused);
        };
        if accused_rec.claim.timestamp.time <= evidence.timestamp.time {
            self.rejected += 1;
            return AppealOutcome::RejectedBadEvidence(EvidenceDefect::NotEarlier);
        }
        // 4. Robust-hash comparison of the two photos. The judge has the
        //    original in hand, so it can afford the crop-search variant —
        //    without it, a cropped re-claim (the cheapest §5 evasion)
        //    sails through.
        match self
            .matcher
            .compare_with_crop_search(&evidence.original_photo.image, &accused_photo.image)
        {
            MatchVerdict::Derived => {
                ledger
                    .store_mut()
                    .permanently_revoke(&accused)
                    .expect("accused exists");
                self.upheld += 1;
                AppealOutcome::Upheld
            }
            MatchVerdict::Uncertain => {
                self.escalated += 1;
                AppealOutcome::EscalateToHuman
            }
            MatchVerdict::Distinct => {
                self.rejected += 1;
                AppealOutcome::RejectedNotDerived
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Ledger, LedgerConfig};
    use irs_core::camera::Camera;
    use irs_core::claim::{ClaimRequest, RevocationStatus};
    use irs_core::ids::LedgerId;
    use irs_core::tsa::TimestampAuthority;
    use irs_core::wallet::OwnerWallet;
    use irs_core::wire::{Request, Response};
    use irs_imaging::manipulate::Manipulation;

    struct Scenario {
        ledger: Ledger,
        wallet: OwnerWallet,
        original_id: RecordId,
        tsa_key: PublicKey,
    }

    /// Owner claims at t=100; attacker re-claims a transcoded copy at
    /// t=5000.
    fn setup(attacker_image_op: Option<Manipulation>) -> (Scenario, RecordId, PhotoFile) {
        let tsa = TimestampAuthority::from_seed(7);
        let tsa_key = tsa.public_key();
        let mut ledger = Ledger::new(LedgerConfig::new(LedgerId(1)), tsa);
        let mut cam = Camera::new(5, 256, 256);
        let shot = cam.capture(100);
        let original_photo = shot.photo.clone();
        let Response::Claimed { id, timestamp } =
            ledger.handle(Request::Claim(shot.claim), TimeMs(100))
        else {
            panic!("claim failed");
        };
        let mut wallet = OwnerWallet::new();
        wallet.store(shot, id, timestamp);

        // Attacker takes the published photo (possibly manipulated) and
        // re-claims it under their own key.
        let attacker_image = match attacker_image_op {
            Some(op) => op.apply(&original_photo.image),
            None => original_photo.image.clone(),
        };
        let attacker_photo = PhotoFile::new(attacker_image);
        let attacker_kp = irs_crypto::Keypair::from_seed(&[66u8; 32]);
        let attacker_claim = ClaimRequest::create(&attacker_kp, &attacker_photo.digest());
        let Response::Claimed { id: accused, .. } =
            ledger.handle(Request::Claim(attacker_claim), TimeMs(5_000))
        else {
            panic!("attacker claim failed");
        };
        (
            Scenario {
                ledger,
                wallet,
                original_id: id,
                tsa_key,
            },
            accused,
            attacker_photo,
        )
    }

    #[test]
    fn exact_copy_appeal_upheld() {
        let (mut s, accused, accused_photo) = setup(None);
        let ev = s.wallet.appeal_evidence(&s.original_id).unwrap();
        let mut judge = AppealsJudge::default();
        let outcome = judge.adjudicate(
            &mut s.ledger,
            &ev,
            accused,
            &accused_photo,
            &s.tsa_key,
            TimeMs(10_000),
        );
        assert_eq!(outcome, AppealOutcome::Upheld);
        assert_eq!(
            s.ledger.store().status(&accused).unwrap().0,
            RevocationStatus::PermanentlyRevoked
        );
        assert_eq!(judge.upheld, 1);
    }

    #[test]
    fn transcoded_copy_appeal_upheld() {
        let (mut s, accused, accused_photo) = setup(Some(Manipulation::Jpeg(50)));
        let ev = s.wallet.appeal_evidence(&s.original_id).unwrap();
        let mut judge = AppealsJudge::default();
        let outcome = judge.adjudicate(
            &mut s.ledger,
            &ev,
            accused,
            &accused_photo,
            &s.tsa_key,
            TimeMs(10_000),
        );
        assert_eq!(outcome, AppealOutcome::Upheld);
    }

    #[test]
    fn unrelated_photo_appeal_rejected() {
        let (mut s, _accused, _) = setup(None);
        // Accuse a record whose photo is unrelated to the original.
        let mut cam2 = Camera::new(99, 256, 256);
        let other_shot = cam2.capture(4_000);
        let other_photo = other_shot.photo.clone();
        let Response::Claimed { id: innocent, .. } = s
            .ledger
            .handle(Request::Claim(other_shot.claim), TimeMs(4_500))
        else {
            panic!("claim failed");
        };
        let ev = s.wallet.appeal_evidence(&s.original_id).unwrap();
        let mut judge = AppealsJudge::default();
        let outcome = judge.adjudicate(
            &mut s.ledger,
            &ev,
            innocent,
            &other_photo,
            &s.tsa_key,
            TimeMs(10_000),
        );
        assert_eq!(outcome, AppealOutcome::RejectedNotDerived);
        assert_eq!(
            s.ledger.store().status(&innocent).unwrap().0,
            RevocationStatus::NotRevoked,
            "innocent record must be untouched"
        );
    }

    #[test]
    fn later_claimant_cannot_appeal_against_earlier() {
        // The *attacker* (later claim) appeals against the owner — must be
        // rejected on timestamp ordering.
        let (mut s, accused, accused_photo) = setup(None);
        let attacker_kp = irs_crypto::Keypair::from_seed(&[66u8; 32]);
        let attacker_claim = ClaimRequest::create(&attacker_kp, &accused_photo.digest());
        let accused_rec = s.ledger.store().get(&accused).unwrap().claim.clone();
        let fake_ev = irs_core::wallet::AppealEvidence {
            original_id: accused,
            original_photo: accused_photo.clone(),
            claim: attacker_claim,
            timestamp: accused_rec.timestamp,
        };
        let mut judge = AppealsJudge::default();
        let outcome = judge.adjudicate(
            &mut s.ledger,
            &fake_ev,
            s.original_id,
            &accused_photo,
            &s.tsa_key,
            TimeMs(10_000),
        );
        assert_eq!(
            outcome,
            AppealOutcome::RejectedBadEvidence(EvidenceDefect::NotEarlier)
        );
    }

    #[test]
    fn forged_ownership_rejected() {
        let (mut s, accused, accused_photo) = setup(None);
        let mut ev = s.wallet.appeal_evidence(&s.original_id).unwrap();
        // Present a different photo than the claim covers.
        ev.original_photo = accused_photo.clone();
        ev.original_photo.image = Manipulation::Brightness(40).apply(&ev.original_photo.image);
        let mut judge = AppealsJudge::default();
        let outcome = judge.adjudicate(
            &mut s.ledger,
            &ev,
            accused,
            &accused_photo,
            &s.tsa_key,
            TimeMs(10_000),
        );
        assert_eq!(
            outcome,
            AppealOutcome::RejectedBadEvidence(EvidenceDefect::OwnershipSignature)
        );
    }

    #[test]
    fn unknown_accused_rejected() {
        let (mut s, _, accused_photo) = setup(None);
        let ev = s.wallet.appeal_evidence(&s.original_id).unwrap();
        let ghost = RecordId::new(LedgerId(1), 999);
        let mut judge = AppealsJudge::default();
        let outcome = judge.adjudicate(
            &mut s.ledger,
            &ev,
            ghost,
            &accused_photo,
            &s.tsa_key,
            TimeMs(10_000),
        );
        assert_eq!(
            outcome,
            AppealOutcome::RejectedBadEvidence(EvidenceDefect::UnknownAccused)
        );
    }
}
