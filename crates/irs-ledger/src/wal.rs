//! Append-only write-ahead log with CRC-checksummed records.
//!
//! Every state mutation of the ledger (claim, revoke/unrevoke, appeal
//! pin) is appended here *before* the operation is acknowledged, in the
//! classic ARIES discipline: the log is the ledger, the in-memory store
//! is a cache. Records are length-prefixed and CRC-32-checksummed so
//! recovery can tell a *torn tail* (the crash cut the final append — drop
//! it, nothing acknowledged was lost) from *mid-log corruption* (the
//! media lied about bytes it had accepted — fail closed, see
//! [`crate::recovery`]).
//!
//! File layout:
//!
//! ```text
//! [magic "IRSWAL01" (8)] [ledger id (2)] [generation (8)] [header crc (4)]
//! [frame]*
//! frame := [payload len u32] [crc32(len‖payload) u32] [payload]
//! ```
//!
//! The generation number increments when the log is rotated after a
//! snapshot commit; snapshots record the `(generation, offset)` they were
//! cut at, which lets recovery decide whether a crash landed before or
//! after the rotation (§ DESIGN.md "Durability & recovery").

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use irs_core::claim::{ClaimRequest, RevokeRequest};
use irs_core::ids::{LedgerId, RecordId};
use irs_core::tsa::TimestampToken;
use irs_core::wire::Wire;
use parking_lot::Mutex;

use crate::disk::Disk;
use crate::store::ClaimOrigin;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"IRSWAL01";
/// Fixed header length: magic + ledger id + generation + header CRC.
pub const WAL_HEADER_LEN: usize = 8 + 2 + 8 + 4;
/// Sanity cap on a single record's payload. A length prefix above this is
/// unconditionally media corruption (torn writes truncate, they do not
/// invent bytes), so recovery fails closed on it.
pub const MAX_RECORD: usize = 4096;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial), the checksum guarding WAL frames and
/// snapshot files.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Errors from the WAL layer.
#[derive(Debug)]
pub enum WalError {
    /// Underlying storage failed.
    Io(io::Error),
    /// The log is corrupt at `offset` in a way tearing cannot explain.
    Corrupt {
        /// Byte offset of the bad frame (or header).
        offset: u64,
        /// What was wrong.
        reason: &'static str,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { offset, reason } => {
                write!(f, "wal corrupt at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> WalError {
        WalError::Io(e)
    }
}

/// When the WAL fsyncs relative to acknowledgements.
///
/// The ladder trades durability for throughput, top to bottom:
/// `Always` loses nothing acknowledged; `EveryN` bounds loss to the last
/// `n-1` operations; `OsDefault` leaves flushing to the page cache and
/// bounds nothing (but still recovers every record the OS got to media).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync before every acknowledgement (group commit batches
    /// concurrent acks into one flush).
    Always,
    /// fsync once every `n` appends.
    EveryN(u32),
    /// Never fsync explicitly; the OS writes back when it pleases.
    OsDefault,
}

impl FsyncPolicy {
    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::EveryN(_) => "every-n",
            FsyncPolicy::OsDefault => "os-default",
        }
    }
}

/// One logged ledger mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A claim was recorded at `serial`.
    Claim {
        /// Serial the claim was stored under.
        serial: u64,
        /// Who claimed it.
        origin: ClaimOrigin,
        /// Whether it entered the ledger already revoked (§4.4
        /// auto-registration).
        initially_revoked: bool,
        /// The owner's claim material.
        request: ClaimRequest,
        /// The timestamp token issued at claim time (logged, not
        /// re-stamped, so recovery rebuilds identical records).
        timestamp: TimestampToken,
    },
    /// A signed revoke/unrevoke was applied. Replay re-checks the epoch
    /// chain; the signature was verified before logging.
    Revoke(RevokeRequest),
    /// An appeals outcome pinned the record permanently revoked.
    AppealPin {
        /// The record pinned.
        id: RecordId,
    },
}

/// WAL records hold only fixed-size wire types (no length-prefixed
/// strings), so encoding them cannot hit `WireError::BadValue`.
const FIXED_ENCODE: &str = "WAL record fields are fixed-size and always encode";

const TAG_CLAIM: u8 = 1;
const TAG_REVOKE: u8 = 2;
const TAG_APPEAL_PIN: u8 = 3;

impl WalRecord {
    /// Encode the payload (tag + fields), without framing.
    fn encode_payload(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(256);
        match self {
            WalRecord::Claim {
                serial,
                origin,
                initially_revoked,
                request,
                timestamp,
            } => {
                buf.put_u8(TAG_CLAIM);
                serial.encode(&mut buf).expect(FIXED_ENCODE);
                buf.put_u8(match origin {
                    ClaimOrigin::Owner => 0,
                    ClaimOrigin::Custodial => 1,
                });
                buf.put_u8(*initially_revoked as u8);
                request.encode(&mut buf).expect(FIXED_ENCODE);
                timestamp.encode(&mut buf).expect(FIXED_ENCODE);
            }
            WalRecord::Revoke(req) => {
                buf.put_u8(TAG_REVOKE);
                req.encode(&mut buf).expect(FIXED_ENCODE);
            }
            WalRecord::AppealPin { id } => {
                buf.put_u8(TAG_APPEAL_PIN);
                id.encode(&mut buf).expect(FIXED_ENCODE);
            }
        }
        buf
    }

    fn decode_payload(payload: &[u8]) -> Result<WalRecord, &'static str> {
        let mut buf = Bytes::copy_from_slice(payload);
        if !buf.has_remaining() {
            return Err("empty payload");
        }
        let tag = buf.get_u8();
        let rec = match tag {
            TAG_CLAIM => {
                let serial = u64::decode(&mut buf).map_err(|_| "claim serial")?;
                if !buf.has_remaining() {
                    return Err("claim origin");
                }
                let origin = match buf.get_u8() {
                    0 => ClaimOrigin::Owner,
                    1 => ClaimOrigin::Custodial,
                    _ => return Err("claim origin tag"),
                };
                if !buf.has_remaining() {
                    return Err("claim revoked flag");
                }
                let initially_revoked = match buf.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return Err("claim revoked flag"),
                };
                WalRecord::Claim {
                    serial,
                    origin,
                    initially_revoked,
                    request: ClaimRequest::decode(&mut buf).map_err(|_| "claim request")?,
                    timestamp: TimestampToken::decode(&mut buf).map_err(|_| "claim timestamp")?,
                }
            }
            TAG_REVOKE => {
                WalRecord::Revoke(RevokeRequest::decode(&mut buf).map_err(|_| "revoke request")?)
            }
            TAG_APPEAL_PIN => WalRecord::AppealPin {
                id: RecordId::decode(&mut buf).map_err(|_| "appeal pin id")?,
            },
            _ => return Err("unknown record tag"),
        };
        if buf.has_remaining() {
            return Err("trailing payload bytes");
        }
        Ok(rec)
    }

    /// Encode as a complete frame: `[len][crc][payload]` with the CRC
    /// covering the length prefix *and* the payload, so a bit flip in the
    /// length itself is caught.
    pub fn encode_framed(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let len = payload.len() as u32;
        debug_assert!((len as usize) <= MAX_RECORD, "record exceeds MAX_RECORD");
        let mut crc_input = Vec::with_capacity(4 + payload.len());
        crc_input.extend_from_slice(&len.to_be_bytes());
        crc_input.extend_from_slice(&payload);
        let crc = crc32(&crc_input);
        let mut out = Vec::with_capacity(8 + payload.len());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&crc.to_be_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// How the frame scanner classified the bytes at one offset.
#[allow(clippy::large_enum_variant)] // short-lived per-frame scratch; boxing would allocate per replayed record
enum Frame {
    /// A valid record of the given total frame length.
    Ok(WalRecord, usize),
    /// The bytes end mid-frame — only legal at the very end of the log.
    Incomplete,
    /// Checksum failed over a complete frame.
    BadCrc(usize),
    /// The frame cannot be valid regardless of what follows.
    Poison(&'static str),
}

fn scan_frame(bytes: &[u8]) -> Frame {
    if bytes.len() < 8 {
        return Frame::Incomplete;
    }
    let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if len > MAX_RECORD {
        // Tearing truncates; it cannot fabricate an over-limit length in a
        // fully-present prefix. This is media corruption wherever it sits.
        return Frame::Poison("record length exceeds MAX_RECORD");
    }
    if bytes.len() < 8 + len {
        return Frame::Incomplete;
    }
    let stored_crc = u32::from_be_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let mut crc_input = Vec::with_capacity(4 + len);
    crc_input.extend_from_slice(&bytes[..4]);
    crc_input.extend_from_slice(&bytes[8..8 + len]);
    if crc32(&crc_input) != stored_crc {
        return Frame::BadCrc(8 + len);
    }
    match WalRecord::decode_payload(&bytes[8..8 + len]) {
        Ok(rec) => Frame::Ok(rec, 8 + len),
        // Passed the CRC but does not parse: written corrupt, fail closed.
        Err(reason) => Frame::Poison(reason),
    }
}

/// Result of parsing a WAL file.
#[derive(Debug)]
pub struct WalContents {
    /// Ledger the log belongs to.
    pub ledger: LedgerId,
    /// Rotation generation from the header.
    pub generation: u64,
    /// Valid records in append order, with the byte offset each started at.
    pub records: Vec<(u64, WalRecord)>,
    /// Length of the valid prefix (header + intact frames).
    pub good_len: u64,
    /// Bytes dropped from a torn final record (0 when the log is clean).
    pub torn_bytes: u64,
}

/// Encode a WAL header for `ledger` at rotation `generation`.
pub fn encode_header(ledger: LedgerId, generation: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN);
    out.extend_from_slice(WAL_MAGIC);
    out.extend_from_slice(&ledger.0.to_be_bytes());
    out.extend_from_slice(&generation.to_be_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// Validate a WAL file's header, returning `(ledger, generation)`.
/// Recovery uses this to decide where replay starts before parsing any
/// frames (a snapshot-covered prefix is skipped unparsed).
pub fn read_header(bytes: &[u8]) -> Result<(LedgerId, u64), WalError> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(WalError::Corrupt {
            offset: 0,
            reason: "file shorter than header",
        });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(WalError::Corrupt {
            offset: 0,
            reason: "bad magic",
        });
    }
    let header_crc = u32::from_be_bytes([bytes[18], bytes[19], bytes[20], bytes[21]]);
    if crc32(&bytes[..18]) != header_crc {
        return Err(WalError::Corrupt {
            offset: 0,
            reason: "header checksum mismatch",
        });
    }
    let ledger = LedgerId(u16::from_be_bytes([bytes[8], bytes[9]]));
    let generation = u64::from_be_bytes([
        bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17],
    ]);
    Ok((ledger, generation))
}

/// Parse and validate a WAL file.
///
/// `start_at` skips frames before that offset without parsing them (used
/// when a snapshot already covers a prefix); pass `WAL_HEADER_LEN` (or 0)
/// to read everything.
///
/// Tolerated: a torn *final* record — an incomplete frame, or a
/// checksum-failed frame that ends exactly at EOF. Both are what a cut
/// append looks like, and anything a cut append can destroy was never
/// acknowledged under fsync `Always`. Everything else — bad header, bad
/// checksum with bytes following, over-limit length, unparseable payload —
/// is mid-log corruption and returns [`WalError::Corrupt`]: the caller
/// must fail closed rather than serve records whose revocation history
/// may be missing.
pub fn read_wal(bytes: &[u8], start_at: usize) -> Result<WalContents, WalError> {
    let (ledger, generation) = read_header(bytes)?;
    let mut off = start_at.max(WAL_HEADER_LEN);
    if off > bytes.len() {
        return Err(WalError::Corrupt {
            offset: bytes.len() as u64,
            reason: "resume offset past end of log",
        });
    }
    let mut records = Vec::new();
    let mut torn_bytes = 0u64;
    while off < bytes.len() {
        match scan_frame(&bytes[off..]) {
            Frame::Ok(rec, frame_len) => {
                records.push((off as u64, rec));
                off += frame_len;
            }
            Frame::Incomplete => {
                torn_bytes = (bytes.len() - off) as u64;
                break;
            }
            Frame::BadCrc(frame_len) => {
                if off + frame_len == bytes.len() {
                    // Final frame, exact EOF: a torn payload whose tail the
                    // crash ate (or a lying fsync let evaporate).
                    torn_bytes = (bytes.len() - off) as u64;
                    break;
                }
                return Err(WalError::Corrupt {
                    offset: off as u64,
                    reason: "checksum mismatch mid-log",
                });
            }
            Frame::Poison(reason) => {
                return Err(WalError::Corrupt {
                    offset: off as u64,
                    reason,
                });
            }
        }
    }
    Ok(WalContents {
        ledger,
        generation,
        records,
        good_len: off as u64,
        torn_bytes,
    })
}

/// Decode a buffer of concatenated WAL frames (`[len][crc][payload]`*)
/// into records, strictly: any truncation, checksum failure, or
/// unparseable payload rejects the whole buffer. This is the follower's
/// apply path — unlike [`read_wal`], a torn tail is *not* tolerated,
/// because a replication segment is a complete message, not a file a
/// crash may have cut.
pub fn decode_frames(bytes: &[u8]) -> Result<Vec<WalRecord>, &'static str> {
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        match scan_frame(&bytes[off..]) {
            Frame::Ok(rec, frame_len) => {
                records.push(rec);
                off += frame_len;
            }
            Frame::Incomplete => return Err("truncated frame"),
            Frame::BadCrc(_) => return Err("frame checksum mismatch"),
            Frame::Poison(reason) => return Err(reason),
        }
    }
    Ok(records)
}

/// Counters for WAL activity (write amplification, group-commit wins).
#[derive(Clone, Copy, Debug, Default)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Bytes appended (frames only, excluding headers).
    pub bytes_appended: u64,
    /// fsyncs issued.
    pub syncs: u64,
    /// Commits satisfied by another thread's fsync (group-commit wins).
    pub piggybacked_commits: u64,
}

/// What [`WalWriter::append`] hands back: the byte LSN to pass to
/// [`WalWriter::commit`], plus the record's replication sequence number.
///
/// Sequence numbers count records (1-based) within one writer instance;
/// they are dense — record `seq` is always followed by `seq + 1` — which
/// is what lets a follower detect holes in a shipped stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppendReceipt {
    /// Byte LSN (logical end after this record) for `commit`.
    pub lsn: u64,
    /// Replication sequence number assigned to this record.
    pub seq: u64,
}

struct WalInner {
    /// Bytes in the current file (header + frames).
    file_len: u64,
    /// Monotone logical sequence number: total frame bytes ever appended.
    /// Unlike `file_len`, never reset by rotation, so commit ordering
    /// survives log truncation.
    logical_end: u64,
    /// Replication sequence number the *next* append will be assigned
    /// (1-based, monotone across rotations within this writer instance).
    next_seq: u64,
    generation: u64,
    appends_since_sync: u32,
    stats: WalStats,
}

/// Serialized appender + group-commit syncer over a [`Disk`] file.
///
/// `append` assigns each record an LSN under a short lock; `commit(lsn)`
/// makes it durable per the [`FsyncPolicy`]. Under `Always`, concurrent
/// committers share flushes: one thread fsyncs while the rest wait on the
/// sync lock, and any LSN at or below the synced high-water mark returns
/// without touching the disk.
pub struct WalWriter {
    disk: Arc<dyn Disk>,
    path: String,
    ledger: LedgerId,
    policy: FsyncPolicy,
    inner: Mutex<WalInner>,
    sync_lock: Mutex<()>,
    synced_lsn: AtomicU64,
    /// Highest sequence number known durable (advances with `synced_lsn`).
    synced_seq: AtomicU64,
}

impl WalWriter {
    /// Open (or create) the WAL at `path`. An existing file must carry a
    /// valid header for `ledger`; a missing file is initialized with a
    /// generation-0 header, durably.
    pub fn open(
        disk: Arc<dyn Disk>,
        path: &str,
        ledger: LedgerId,
        policy: FsyncPolicy,
    ) -> Result<WalWriter, WalError> {
        let (file_len, generation, records_on_disk) = if disk.exists(path) {
            let bytes = disk.read(path)?;
            let contents = read_wal(&bytes, WAL_HEADER_LEN)?;
            if contents.ledger != ledger {
                return Err(WalError::Corrupt {
                    offset: 8,
                    reason: "wal belongs to a different ledger",
                });
            }
            if contents.torn_bytes != 0 {
                // Callers run recovery (which rewrites the good prefix)
                // before opening a writer; appending after a torn tail
                // would interleave garbage into the record stream.
                return Err(WalError::Corrupt {
                    offset: contents.good_len,
                    reason: "torn tail present; recover before writing",
                });
            }
            (
                bytes.len() as u64,
                contents.generation,
                contents.records.len() as u64,
            )
        } else {
            disk.write_atomic(path, &encode_header(ledger, 0))?;
            (WAL_HEADER_LEN as u64, 0, 0)
        };
        Ok(WalWriter {
            disk,
            path: path.to_string(),
            ledger,
            policy,
            inner: Mutex::new(WalInner {
                file_len,
                logical_end: file_len,
                // Sequence numbers are scoped to one writer instance; a
                // reopen restarts them after whatever the file holds, and
                // followers re-bootstrap on reconnect (§ DESIGN.md
                // "Replication & failover") rather than trusting seq
                // continuity across a primary restart.
                next_seq: records_on_disk + 1,
                generation,
                appends_since_sync: 0,
                stats: WalStats::default(),
            }),
            sync_lock: Mutex::new(()),
            // Whatever is on media at open time survived the last crash
            // (or was written atomically) — it is durable by definition.
            synced_lsn: AtomicU64::new(file_len),
            synced_seq: AtomicU64::new(records_on_disk),
        })
    }

    /// Append one record; returns its LSN (for a later
    /// [`commit`](Self::commit)) and its replication sequence number.
    ///
    /// Callers serialize appends for a given ledger record via the shard
    /// write lock, which is what guarantees replay order matches
    /// application order per record.
    pub fn append(&self, record: &WalRecord) -> Result<AppendReceipt, WalError> {
        let frame = record.encode_framed();
        let mut inner = self.inner.lock();
        self.disk.append(&self.path, &frame)?;
        inner.file_len += frame.len() as u64;
        inner.logical_end += frame.len() as u64;
        inner.stats.appends += 1;
        inner.stats.bytes_appended += frame.len() as u64;
        let lsn = inner.logical_end;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if let FsyncPolicy::EveryN(n) = self.policy {
            inner.appends_since_sync += 1;
            if inner.appends_since_sync >= n.max(1) {
                self.disk.sync(&self.path)?;
                inner.stats.syncs += 1;
                inner.appends_since_sync = 0;
                self.synced_lsn.fetch_max(lsn, Ordering::Release);
                self.synced_seq.fetch_max(seq, Ordering::Release);
            }
        }
        Ok(AppendReceipt { lsn, seq })
    }

    /// Make the record at `lsn` durable according to the policy. Under
    /// `Always` this is where group commit happens; under `EveryN` and
    /// `OsDefault` it returns immediately (durability is bounded, not
    /// per-ack).
    pub fn commit(&self, lsn: u64) -> Result<(), WalError> {
        if self.policy != FsyncPolicy::Always {
            return Ok(());
        }
        if self.synced_lsn.load(Ordering::Acquire) >= lsn {
            self.inner.lock().stats.piggybacked_commits += 1;
            return Ok(());
        }
        let _guard = self.sync_lock.lock();
        if self.synced_lsn.load(Ordering::Acquire) >= lsn {
            // Another committer's flush covered us while we waited.
            self.inner.lock().stats.piggybacked_commits += 1;
            return Ok(());
        }
        // Capture the logical end *before* syncing: every byte appended up
        // to now is covered by this flush, so their committers piggyback.
        let (target, target_seq) = {
            let inner = self.inner.lock();
            (inner.logical_end, inner.next_seq - 1)
        };
        self.disk.sync(&self.path)?;
        {
            let mut inner = self.inner.lock();
            inner.stats.syncs += 1;
        }
        self.synced_lsn.fetch_max(target, Ordering::Release);
        self.synced_seq.fetch_max(target_seq, Ordering::Release);
        Ok(())
    }

    /// Highest sequence number assigned so far (durable or not).
    pub fn last_seq(&self) -> u64 {
        self.inner.lock().next_seq - 1
    }

    /// Highest sequence number known durable per the fsync policy.
    pub fn synced_seq(&self) -> u64 {
        self.synced_seq.load(Ordering::Acquire)
    }

    /// Highest sequence number safe to ship to a follower.
    ///
    /// Under `Always`/`EveryN` that is the synced high-water mark — a
    /// follower must never hold a record the primary could lose in a
    /// crash, or promotion would *invent* unacked writes. Under
    /// `OsDefault` the primary itself bounds nothing, so the last
    /// assigned seq is shipped as-is.
    pub fn replicable_seq(&self) -> u64 {
        match self.policy {
            FsyncPolicy::Always | FsyncPolicy::EveryN(_) => self.synced_seq(),
            FsyncPolicy::OsDefault => self.last_seq(),
        }
    }

    /// Current `(generation, file offset)` — recorded into snapshots so
    /// recovery knows where replay resumes.
    pub fn position(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.generation, inner.file_len)
    }

    /// Truncate the log after a snapshot commit: keep only the frames at
    /// and after file `offset`, under a new generation header, atomically.
    /// A crash anywhere around this leaves either the old log (snapshot
    /// resumes at `offset`) or the new one (snapshot resumes at its
    /// header) — both recoverable.
    pub fn rotate_at(&self, offset: u64) -> Result<(), WalError> {
        let mut inner = self.inner.lock();
        let bytes = self.disk.read(&self.path)?;
        if offset < WAL_HEADER_LEN as u64 || offset > bytes.len() as u64 {
            return Err(WalError::Corrupt {
                offset,
                reason: "rotation offset outside the log",
            });
        }
        let new_gen = inner.generation + 1;
        let mut new_log = encode_header(self.ledger, new_gen);
        new_log.extend_from_slice(&bytes[offset as usize..]);
        self.disk.write_atomic(&self.path, &new_log)?;
        inner.generation = new_gen;
        inner.file_len = new_log.len() as u64;
        // write_atomic is durable on return: everything logically appended
        // so far is now on media.
        let end = inner.logical_end;
        let end_seq = inner.next_seq - 1;
        self.synced_lsn.fetch_max(end, Ordering::Release);
        self.synced_seq.fetch_max(end_seq, Ordering::Release);
        inner.appends_since_sync = 0;
        Ok(())
    }

    /// Activity counters.
    pub fn stats(&self) -> WalStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::time::TimeMs;
    use irs_core::tsa::TimestampAuthority;
    use irs_crypto::{Digest, Keypair};

    fn sample_records() -> Vec<WalRecord> {
        let kp = Keypair::from_seed(&[7u8; 32]);
        let tsa = TimestampAuthority::from_seed(1);
        let req = ClaimRequest::create(&kp, &Digest::of(b"photo"));
        let id = RecordId::new(LedgerId(1), 0);
        vec![
            WalRecord::Claim {
                serial: 0,
                origin: ClaimOrigin::Owner,
                initially_revoked: false,
                request: req,
                timestamp: tsa.stamp(req.digest(), TimeMs(10)),
            },
            WalRecord::Revoke(RevokeRequest::create(&kp, id, true, 0)),
            WalRecord::AppealPin { id },
        ]
    }

    fn log_with(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = encode_header(LedgerId(1), 0);
        for r in records {
            bytes.extend_from_slice(&r.encode_framed());
        }
        bytes
    }

    #[test]
    fn frames_roundtrip() {
        let records = sample_records();
        let bytes = log_with(&records);
        let contents = read_wal(&bytes, 0).unwrap();
        assert_eq!(contents.ledger, LedgerId(1));
        assert_eq!(contents.generation, 0);
        assert_eq!(contents.torn_bytes, 0);
        assert_eq!(contents.good_len, bytes.len() as u64);
        let decoded: Vec<_> = contents.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn torn_final_record_is_tolerated_at_every_cut() {
        let records = sample_records();
        let full = log_with(&records);
        let second_frame_start =
            WAL_HEADER_LEN + records[0].encode_framed().len() + records[1].encode_framed().len();
        // Cut anywhere inside the final frame: first two records survive.
        for cut in second_frame_start..full.len() {
            let contents = read_wal(&full[..cut], 0)
                .unwrap_or_else(|e| panic!("cut at {cut} must not fail: {e}"));
            assert_eq!(contents.records.len(), 2, "cut at {cut}");
            assert_eq!(contents.torn_bytes as usize, cut - second_frame_start);
        }
    }

    #[test]
    fn mid_log_corruption_fails_closed() {
        let records = sample_records();
        let bytes = log_with(&records);
        // Flip a bit inside the *first* frame's payload — bytes follow it,
        // so this cannot be a torn tail.
        let mut corrupt = bytes.clone();
        corrupt[WAL_HEADER_LEN + 10] ^= 0x01;
        match read_wal(&corrupt, 0) {
            Err(WalError::Corrupt { offset, .. }) => {
                assert_eq!(offset, WAL_HEADER_LEN as u64)
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn oversize_length_prefix_fails_closed_even_at_tail() {
        let records = sample_records();
        let mut bytes = log_with(&records[..1]);
        // Append a frame header claiming an absurd length; even though the
        // "payload" is absent (looks torn), the length itself is poison.
        bytes.extend_from_slice(&(MAX_RECORD as u32 + 1).to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        assert!(matches!(read_wal(&bytes, 0), Err(WalError::Corrupt { .. })));
    }

    #[test]
    fn corrupt_final_record_at_exact_eof_reads_as_torn() {
        // An fsync lie can persist a frame's length but lose payload bits.
        let records = sample_records();
        let mut bytes = log_with(&records);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        let contents = read_wal(&bytes, 0).unwrap();
        assert_eq!(contents.records.len(), 2);
        assert!(contents.torn_bytes > 0);
    }

    #[test]
    fn header_corruption_fails_closed() {
        let bytes = log_with(&sample_records());
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            read_wal(&bad_magic, 0),
            Err(WalError::Corrupt { .. })
        ));
        let mut bad_gen = bytes.clone();
        bad_gen[12] ^= 0x01; // generation byte; header CRC must catch it
        assert!(matches!(
            read_wal(&bad_gen, 0),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn writer_appends_and_survives_reopen() {
        use crate::chaosdisk::{ChaosDisk, ChaosDiskConfig};
        let disk = Arc::new(ChaosDisk::new(ChaosDiskConfig::off(1)));
        let records = sample_records();
        {
            let wal =
                WalWriter::open(disk.clone(), "wal", LedgerId(1), FsyncPolicy::Always).unwrap();
            for r in &records {
                let lsn = wal.append(r).unwrap().lsn;
                wal.commit(lsn).unwrap();
            }
            assert_eq!(wal.stats().appends, 3);
            assert!(wal.stats().syncs >= 1);
        }
        let wal = WalWriter::open(disk.clone(), "wal", LedgerId(1), FsyncPolicy::Always).unwrap();
        let (generation, len) = wal.position();
        assert_eq!(generation, 0);
        let bytes = disk.read("wal").unwrap();
        assert_eq!(len, bytes.len() as u64);
        let contents = read_wal(&bytes, 0).unwrap();
        assert_eq!(
            contents
                .records
                .into_iter()
                .map(|(_, r)| r)
                .collect::<Vec<_>>(),
            records
        );
    }

    #[test]
    fn rotation_increments_generation_and_keeps_tail() {
        use crate::chaosdisk::{ChaosDisk, ChaosDiskConfig};
        let disk = Arc::new(ChaosDisk::new(ChaosDiskConfig::off(2)));
        let wal = WalWriter::open(disk.clone(), "wal", LedgerId(1), FsyncPolicy::Always).unwrap();
        let records = sample_records();
        for r in &records[..2] {
            let lsn = wal.append(r).unwrap().lsn;
            wal.commit(lsn).unwrap();
        }
        let (_, cut) = wal.position();
        let lsn = wal.append(&records[2]).unwrap().lsn;
        wal.commit(lsn).unwrap();
        wal.rotate_at(cut).unwrap();
        let bytes = disk.read("wal").unwrap();
        let contents = read_wal(&bytes, 0).unwrap();
        assert_eq!(contents.generation, 1);
        // Only the record appended after the cut survives rotation.
        assert_eq!(contents.records.len(), 1);
        assert_eq!(contents.records[0].1, records[2]);
    }
}
