//! Open-time recovery: snapshot + WAL tail replay.
//!
//! The recovery ladder, applied in order:
//!
//! 1. **Snapshot** (if present): decode under its CRC. Any damage is
//!    fatal — snapshots are written atomically, so a corrupt one means
//!    the media lied, and serving guesses about revocation state is the
//!    one thing this system must never do (*fail closed*).
//! 2. **Resume point**: the snapshot records the WAL `(generation,
//!    offset)` it was cut at. If the log still carries that generation,
//!    replay starts at the offset (the covered prefix is skipped
//!    unparsed). If the log is one generation ahead, the post-snapshot
//!    rotation completed and replay starts at the header. Anything else
//!    means files from different histories are mixed — fail closed.
//! 3. **Replay**: apply each logged operation to the record map,
//!    re-checking the epoch chain. A replay mismatch (revoke of an
//!    unknown record, broken epoch chain) can only happen if the log or
//!    snapshot is wrong — fail closed.
//! 4. **Torn tail**: an incomplete or checksum-failed *final* frame is
//!    the signature of a cut append. Nothing acknowledged under fsync
//!    `Always` can live there, so the tail is dropped and the log is
//!    rewritten to its good prefix (atomically) so the next writer
//!    appends after valid bytes.
//!
//! Claims that were allocated a serial but never reached the durable log
//! leave *holes* in the serial space after recovery; the store tolerates
//! them and continues allocation above the highest recovered serial.

use std::io;
use std::sync::Arc;

use irs_core::claim::{Claim, RevocationStatus};
use irs_core::ids::{LedgerId, RecordId};
use irs_filters::CountingBloom;
use std::collections::BTreeMap;

use crate::disk::Disk;
use crate::snapshot::{decode_snapshot, SnapshotError};
use crate::store::StoredClaim;
use crate::wal::{read_header, read_wal, WalError, WalRecord, WAL_HEADER_LEN};

/// Errors from recovery. All variants except `Io` mean the on-disk state
/// cannot be trusted and the ledger must not start (fail closed).
#[derive(Debug)]
pub enum RecoveryError {
    /// Underlying storage failed.
    Io(io::Error),
    /// The snapshot file fails validation.
    Snapshot(SnapshotError),
    /// The WAL fails validation mid-log.
    Wal(WalError),
    /// The log parsed but does not describe a coherent history.
    Replay(&'static str),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery i/o error: {e}"),
            RecoveryError::Snapshot(e) => write!(f, "recovery: {e}"),
            RecoveryError::Wal(e) => write!(f, "recovery: {e}"),
            RecoveryError::Replay(what) => write!(f, "recovery replay failed: {what}"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io(e) => Some(e),
            RecoveryError::Snapshot(e) => Some(e),
            RecoveryError::Wal(e) => Some(e),
            RecoveryError::Replay(_) => None,
        }
    }
}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> RecoveryError {
        RecoveryError::Io(e)
    }
}

impl From<SnapshotError> for RecoveryError {
    fn from(e: SnapshotError) -> RecoveryError {
        RecoveryError::Snapshot(e)
    }
}

impl From<WalError> for RecoveryError {
    fn from(e: WalError) -> RecoveryError {
        match e {
            WalError::Io(io) => RecoveryError::Io(io),
            other => RecoveryError::Wal(other),
        }
    }
}

/// What recovery found, for logs and experiment tables.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Records seeded from the snapshot.
    pub snapshot_records: usize,
    /// WAL operations replayed on top.
    pub wal_records: usize,
    /// Bytes dropped from a torn final WAL record.
    pub torn_bytes_dropped: u64,
    /// Records in the recovered state.
    pub recovered_records: usize,
}

/// The state recovery hands to the store layer.
#[derive(Debug)]
pub struct RecoveredState {
    /// All records, ascending serial order (holes possible).
    pub records: Vec<StoredClaim>,
    /// The revocation filter: the snapshot's (with replayed transitions
    /// applied) when a snapshot existed, otherwise `None` and the store
    /// rebuilds per-shard filters from the records.
    pub filter: Option<CountingBloom>,
    /// What happened.
    pub report: RecoveryReport,
}

/// Recover ledger state from `snapshot_path` + `wal_path` on `disk`.
///
/// Also repairs a torn WAL tail in place (rewriting the good prefix
/// atomically), so a subsequent [`crate::wal::WalWriter::open`] on the
/// same path succeeds and appends after valid bytes.
pub fn recover(
    disk: &Arc<dyn Disk>,
    wal_path: &str,
    snapshot_path: &str,
    ledger: LedgerId,
) -> Result<RecoveredState, RecoveryError> {
    // 1. Snapshot.
    let snapshot = if disk.exists(snapshot_path) {
        let bytes = disk.read(snapshot_path)?;
        let snap = decode_snapshot(&bytes)?;
        if snap.ledger != ledger {
            return Err(RecoveryError::Replay(
                "snapshot belongs to a different ledger",
            ));
        }
        Some(snap)
    } else {
        None
    };

    // 2. WAL + resume point.
    let mut records: BTreeMap<u64, StoredClaim> = BTreeMap::new();
    let mut filter = None;
    let mut report = RecoveryReport::default();
    if let Some(snap) = snapshot {
        report.snapshot_records = snap.records.len();
        for rec in snap.records {
            records.insert(rec.claim.id.serial, rec);
        }
        filter = Some(snap.filter);

        if disk.exists(wal_path) {
            let bytes = disk.read(wal_path)?;
            let (wal_ledger, generation) = read_header(&bytes)?;
            if wal_ledger != ledger {
                return Err(RecoveryError::Replay("wal belongs to a different ledger"));
            }
            let start = if generation == snap.wal_generation {
                // Crash before (or without) rotation: the snapshot covers
                // the prefix up to its recorded offset.
                snap.wal_offset as usize
            } else if generation == snap.wal_generation + 1 {
                // Rotation completed: the whole log is post-snapshot.
                WAL_HEADER_LEN
            } else {
                return Err(RecoveryError::Replay(
                    "wal generation does not match snapshot",
                ));
            };
            replay(
                disk,
                wal_path,
                &bytes,
                start,
                ledger,
                &mut records,
                filter.as_mut(),
                &mut report,
            )?;
        } else if snap.wal_offset > WAL_HEADER_LEN as u64 {
            // The snapshot says a log with committed frames existed.
            return Err(RecoveryError::Replay(
                "wal missing but snapshot references it",
            ));
        }
    } else if disk.exists(wal_path) {
        let bytes = disk.read(wal_path)?;
        let (wal_ledger, _) = read_header(&bytes)?;
        if wal_ledger != ledger {
            return Err(RecoveryError::Replay("wal belongs to a different ledger"));
        }
        replay(
            disk,
            wal_path,
            &bytes,
            WAL_HEADER_LEN,
            ledger,
            &mut records,
            None,
            &mut report,
        )?;
    }

    report.recovered_records = records.len();
    Ok(RecoveredState {
        records: records.into_values().collect(),
        filter,
        report,
    })
}

/// Parse the log from `start`, apply each operation, and repair a torn
/// tail on disk if one is found.
#[allow(clippy::too_many_arguments)]
fn replay(
    disk: &Arc<dyn Disk>,
    wal_path: &str,
    bytes: &[u8],
    start: usize,
    ledger: LedgerId,
    records: &mut BTreeMap<u64, StoredClaim>,
    mut filter: Option<&mut CountingBloom>,
    report: &mut RecoveryReport,
) -> Result<(), RecoveryError> {
    let contents = read_wal(bytes, start)?;
    for (_, record) in contents.records {
        apply(ledger, record, records, filter.as_deref_mut())?;
        report.wal_records += 1;
    }
    if contents.torn_bytes > 0 {
        // 4. Drop the torn tail durably so the next append starts clean.
        disk.write_atomic(wal_path, &bytes[..contents.good_len as usize])?;
        report.torn_bytes_dropped = contents.torn_bytes;
    }
    Ok(())
}

fn apply(
    ledger: LedgerId,
    record: WalRecord,
    records: &mut BTreeMap<u64, StoredClaim>,
    filter: Option<&mut CountingBloom>,
) -> Result<(), RecoveryError> {
    match record {
        WalRecord::Claim {
            serial,
            origin,
            initially_revoked,
            request,
            timestamp,
        } => {
            let id = RecordId::new(ledger, serial);
            let status = if initially_revoked {
                RevocationStatus::Revoked
            } else {
                RevocationStatus::NotRevoked
            };
            let prev = records.insert(
                serial,
                StoredClaim {
                    claim: Claim {
                        id,
                        request,
                        timestamp,
                        status,
                        status_epoch: 0,
                    },
                    origin,
                },
            );
            if prev.is_some() {
                return Err(RecoveryError::Replay("duplicate claim serial"));
            }
            if initially_revoked {
                if let Some(f) = filter {
                    f.insert(id.filter_key());
                }
            }
        }
        WalRecord::Revoke(req) => {
            if req.id.ledger != ledger {
                return Err(RecoveryError::Replay("revoke for a different ledger"));
            }
            let rec = records
                .get_mut(&req.id.serial)
                .ok_or(RecoveryError::Replay("revoke of unknown record"))?;
            if rec.claim.status == RevocationStatus::PermanentlyRevoked {
                return Err(RecoveryError::Replay("revoke after permanent pin"));
            }
            // The signature was verified before the record was logged;
            // replay re-checks only the epoch chain, which detects any
            // reordering or loss the checksums let through.
            if req.epoch != rec.claim.status_epoch {
                return Err(RecoveryError::Replay("epoch chain broken"));
            }
            let was_revoked = rec.claim.status != RevocationStatus::NotRevoked;
            rec.claim.status = if req.revoke {
                RevocationStatus::Revoked
            } else {
                RevocationStatus::NotRevoked
            };
            rec.claim.status_epoch += 1;
            if let Some(f) = filter {
                let key = rec.claim.id.filter_key();
                match (was_revoked, req.revoke) {
                    (false, true) => f.insert(key),
                    (true, false) => f.remove(key),
                    _ => {}
                }
            }
        }
        WalRecord::AppealPin { id } => {
            if id.ledger != ledger {
                return Err(RecoveryError::Replay("appeal pin for a different ledger"));
            }
            let rec = records
                .get_mut(&id.serial)
                .ok_or(RecoveryError::Replay("appeal pin of unknown record"))?;
            let was_revoked = rec.claim.status != RevocationStatus::NotRevoked;
            rec.claim.status = RevocationStatus::PermanentlyRevoked;
            rec.claim.status_epoch += 1;
            if !was_revoked {
                if let Some(f) = filter {
                    f.insert(id.filter_key());
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaosdisk::{ChaosDisk, ChaosDiskConfig};
    use crate::snapshot::encode_snapshot;
    use crate::store::ClaimOrigin;
    use crate::wal::{encode_header, FsyncPolicy, WalWriter};
    use irs_core::claim::{ClaimRequest, RevokeRequest};
    use irs_core::time::TimeMs;
    use irs_core::tsa::TimestampAuthority;
    use irs_crypto::{Digest, Keypair};
    use irs_filters::Filter;

    const LEDGER: LedgerId = LedgerId(1);

    fn disk() -> Arc<dyn Disk> {
        Arc::new(ChaosDisk::new(ChaosDiskConfig::off(9)))
    }

    fn claim_record(serial: u64, seed: u8, revoked: bool) -> (WalRecord, Keypair) {
        let kp = Keypair::from_seed(&[seed; 32]);
        let tsa = TimestampAuthority::from_seed(1);
        let request = ClaimRequest::create(&kp, &Digest::of(&[seed]));
        (
            WalRecord::Claim {
                serial,
                origin: ClaimOrigin::Owner,
                initially_revoked: revoked,
                request,
                timestamp: tsa.stamp(request.digest(), TimeMs(10 + serial)),
            },
            kp,
        )
    }

    #[test]
    fn wal_only_replay_rebuilds_epochs_and_serials() {
        let disk = disk();
        let wal = WalWriter::open(disk.clone(), "wal", LEDGER, FsyncPolicy::Always).unwrap();
        let (c0, kp0) = claim_record(0, 1, false);
        let (c1, _) = claim_record(1, 2, true);
        let id0 = RecordId::new(LEDGER, 0);
        for rec in [
            c0,
            c1,
            WalRecord::Revoke(RevokeRequest::create(&kp0, id0, true, 0)),
            WalRecord::Revoke(RevokeRequest::create(&kp0, id0, false, 1)),
        ] {
            let lsn = wal.append(&rec).unwrap().lsn;
            wal.commit(lsn).unwrap();
        }
        let state = recover(&disk, "wal", "snap", LEDGER).unwrap();
        assert_eq!(state.records.len(), 2);
        assert_eq!(state.report.wal_records, 4);
        assert_eq!(state.records[0].claim.status, RevocationStatus::NotRevoked);
        assert_eq!(state.records[0].claim.status_epoch, 2);
        assert_eq!(state.records[1].claim.status, RevocationStatus::Revoked);
    }

    #[test]
    fn snapshot_plus_tail_and_generation_rules() {
        let disk = disk();
        let wal = WalWriter::open(disk.clone(), "wal", LEDGER, FsyncPolicy::Always).unwrap();
        let (c0, _) = claim_record(0, 1, false);
        let lsn = wal.append(&c0).unwrap().lsn;
        wal.commit(lsn).unwrap();
        let (generation, offset) = wal.position();
        // Snapshot covering the claim, then one more op after the cut.
        let state = recover(&disk, "wal", "snap", LEDGER).unwrap();
        let mut filter = CountingBloom::for_capacity(1000, 0.02).unwrap();
        for r in &state.records {
            if r.claim.status != RevocationStatus::NotRevoked {
                filter.insert(r.claim.id.filter_key());
            }
        }
        let snap = encode_snapshot(LEDGER, generation, offset, &state.records, &filter);
        disk.write_atomic("snap", &snap).unwrap();
        let (c1, _) = claim_record(1, 2, true);
        let lsn = wal.append(&c1).unwrap().lsn;
        wal.commit(lsn).unwrap();

        // Pre-rotation: replay resumes at the snapshot offset.
        let recovered = recover(&disk, "wal", "snap", LEDGER).unwrap();
        assert_eq!(recovered.report.snapshot_records, 1);
        assert_eq!(recovered.report.wal_records, 1);
        assert_eq!(recovered.records.len(), 2);
        let f = recovered.filter.expect("snapshot filter present");
        assert!(f.contains(RecordId::new(LEDGER, 1).filter_key()));

        // Post-rotation: generation bumps, whole log replays.
        wal.rotate_at(offset).unwrap();
        let recovered = recover(&disk, "wal", "snap", LEDGER).unwrap();
        assert_eq!(recovered.report.snapshot_records, 1);
        assert_eq!(recovered.report.wal_records, 1);
        assert_eq!(recovered.records.len(), 2);
    }

    #[test]
    fn torn_tail_is_dropped_and_repaired() {
        let disk = disk();
        let wal = WalWriter::open(disk.clone(), "wal", LEDGER, FsyncPolicy::Always).unwrap();
        let (c0, _) = claim_record(0, 1, false);
        let lsn = wal.append(&c0).unwrap().lsn;
        wal.commit(lsn).unwrap();
        drop(wal);
        // Simulate a cut append: half a frame of garbage at the tail.
        disk.append("wal", &[0x00, 0x00, 0x00, 0x10, 0xde, 0xad])
            .unwrap();
        let state = recover(&disk, "wal", "snap", LEDGER).unwrap();
        assert_eq!(state.records.len(), 1);
        assert_eq!(state.report.torn_bytes_dropped, 6);
        // The repair rewrote the log: a writer can open it again.
        let wal = WalWriter::open(disk.clone(), "wal", LEDGER, FsyncPolicy::Always).unwrap();
        let (c1, _) = claim_record(1, 2, false);
        let lsn = wal.append(&c1).unwrap().lsn;
        wal.commit(lsn).unwrap();
        let state = recover(&disk, "wal", "snap", LEDGER).unwrap();
        assert_eq!(state.records.len(), 2);
        assert_eq!(state.report.torn_bytes_dropped, 0);
    }

    #[test]
    fn mid_log_corruption_of_a_revocation_fails_closed() {
        let disk = disk();
        let wal = WalWriter::open(disk.clone(), "wal", LEDGER, FsyncPolicy::Always).unwrap();
        let (c0, kp0) = claim_record(0, 1, false);
        let id0 = RecordId::new(LEDGER, 0);
        let revoke = WalRecord::Revoke(RevokeRequest::create(&kp0, id0, true, 0));
        let (c1, _) = claim_record(1, 2, false);
        for rec in [&c0, &revoke, &c1] {
            let lsn = wal.append(rec).unwrap().lsn;
            wal.commit(lsn).unwrap();
        }
        drop(wal);
        // Flip one bit inside the revoke frame (it has a frame after it,
        // so this cannot read as a torn tail).
        let mut bytes = disk.read("wal").unwrap();
        let revoke_frame_at = WAL_HEADER_LEN + c0.encode_framed().len();
        bytes[revoke_frame_at + 12] ^= 0x04;
        disk.write_atomic("wal", &bytes).unwrap();
        match recover(&disk, "wal", "snap", LEDGER) {
            Err(RecoveryError::Wal(WalError::Corrupt { offset, .. })) => {
                assert_eq!(offset, revoke_frame_at as u64);
            }
            other => panic!("expected fail-closed corruption error, got {other:?}"),
        }
    }

    #[test]
    fn serial_holes_are_tolerated() {
        // A claim whose WAL append never made it leaves a hole; later
        // records replay fine and the hole stays a hole.
        let disk = disk();
        let wal = WalWriter::open(disk.clone(), "wal", LEDGER, FsyncPolicy::Always).unwrap();
        let (c0, _) = claim_record(0, 1, false);
        let (c2, _) = claim_record(2, 3, true);
        for rec in [&c0, &c2] {
            let lsn = wal.append(rec).unwrap().lsn;
            wal.commit(lsn).unwrap();
        }
        let state = recover(&disk, "wal", "snap", LEDGER).unwrap();
        assert_eq!(state.records.len(), 2);
        let serials: Vec<u64> = state.records.iter().map(|r| r.claim.id.serial).collect();
        assert_eq!(serials, vec![0, 2]);
    }

    #[test]
    fn mixed_generation_files_fail_closed() {
        let disk = disk();
        // Snapshot claims generation 5; log is generation 0.
        let filter = CountingBloom::for_capacity(100, 0.02).unwrap();
        let snap = encode_snapshot(LEDGER, 5, WAL_HEADER_LEN as u64, &[], &filter);
        disk.write_atomic("snap", &snap).unwrap();
        disk.write_atomic("wal", &encode_header(LEDGER, 0)).unwrap();
        assert!(matches!(
            recover(&disk, "wal", "snap", LEDGER),
            Err(RecoveryError::Replay(_))
        ));
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let disk = disk();
        let state = recover(&disk, "wal", "snap", LEDGER).unwrap();
        assert!(state.records.is_empty());
        assert!(state.filter.is_none());
        assert_eq!(state.report.recovered_records, 0);
    }
}
