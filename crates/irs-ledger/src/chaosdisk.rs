//! Seeded deterministic fault-injecting storage backend.
//!
//! [`ChaosDisk`] is to the durability stack what `irs-net`'s `ChaosProxy`
//! is to the network stack: an in-memory [`Disk`] that injects storage
//! faults from a pure function of `(seed, operation index)`, so any
//! corruption an experiment observes is replayable bit-for-bit by rerunning
//! with the same seed.
//!
//! Fault model (mirrors what real disks do wrong):
//!
//! * **torn write** — on [`crash`](ChaosDisk::crash), the unsynced tail of
//!   each file survives only as a seeded prefix (bytes persist in write
//!   order, but not all of them);
//! * **bit flip** — a read returns the stored bytes with one bit flipped
//!   at a seeded position (silent media corruption);
//! * **short read** — a read returns only a seeded prefix of the file;
//! * **fsync lie** — `sync()` returns `Ok` without making the tail
//!   durable (drive write-cache lying about flushes);
//! * **crash at offset** — the disk "loses power" once a configured number
//!   of appended bytes is reached, mid-append: the current append persists
//!   only up to the cap, the torn-tail rule is applied, and the append
//!   returns an I/O error. The disk then "reboots" (stays usable) so
//!   recovery can be exercised in-process.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::disk::Disk;

/// Storage fault kinds [`ChaosDisk`] can inject on the read/sync path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// Flip one bit of the returned bytes at a seeded position.
    BitFlip,
    /// Return only a seeded prefix of the file.
    ShortRead,
    /// `sync()` returns `Ok` without actually making the tail durable.
    FsyncLie,
}

/// Configuration for a [`ChaosDisk`].
#[derive(Clone, Debug)]
pub struct ChaosDiskConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Probability in `[0, 1]` that an eligible operation faults.
    pub fault_rate: f64,
    /// Fault kinds eligible for injection. Empty = no read/sync faults.
    pub modes: Vec<DiskFault>,
    /// Simulate power loss once this many bytes have been appended
    /// (across all files). The append that crosses the threshold is cut
    /// at the threshold, the crash rule runs, and it returns an error.
    pub crash_at_bytes: Option<u64>,
}

impl ChaosDiskConfig {
    /// No faults at all — behaves like a perfect in-memory disk.
    pub fn off(seed: u64) -> ChaosDiskConfig {
        ChaosDiskConfig {
            seed,
            fault_rate: 0.0,
            modes: Vec::new(),
            crash_at_bytes: None,
        }
    }

    /// Crash-only configuration: perfect reads/syncs, power loss after
    /// `bytes` appended bytes.
    pub fn crash_at(seed: u64, bytes: u64) -> ChaosDiskConfig {
        ChaosDiskConfig {
            seed,
            fault_rate: 0.0,
            modes: Vec::new(),
            crash_at_bytes: Some(bytes),
        }
    }
}

/// Counters for injected faults, for experiment tables and assertions.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosDiskStats {
    /// Read/sync operations performed.
    pub ops: u64,
    /// Bit flips injected into reads.
    pub bit_flips: u64,
    /// Short reads injected.
    pub short_reads: u64,
    /// Syncs that lied.
    pub fsync_lies: u64,
    /// Crashes (explicit or via `crash_at_bytes`).
    pub crashes: u64,
}

struct FileState {
    data: Vec<u8>,
    /// Length guaranteed to survive a crash.
    synced_len: usize,
}

struct Inner {
    files: BTreeMap<String, FileState>,
    config: ChaosDiskConfig,
    stats: ChaosDiskStats,
    /// Total bytes appended across all files, for `crash_at_bytes`.
    appended: u64,
}

/// In-memory [`Disk`] with deterministic, seed-replayable fault injection.
pub struct ChaosDisk {
    inner: Mutex<Inner>,
    ops: AtomicU64,
}

impl ChaosDisk {
    /// Create an empty chaos disk with the given fault schedule.
    pub fn new(config: ChaosDiskConfig) -> ChaosDisk {
        ChaosDisk {
            inner: Mutex::new(Inner {
                files: BTreeMap::new(),
                config,
                stats: ChaosDiskStats::default(),
                appended: 0,
            }),
            ops: AtomicU64::new(0),
        }
    }

    /// Fault counters so far.
    pub fn stats(&self) -> ChaosDiskStats {
        self.inner.lock().stats
    }

    /// Total bytes appended across all files since creation.
    pub fn total_appended(&self) -> u64 {
        self.inner.lock().appended
    }

    /// Re-arm (or disarm with `None`) the crash threshold. The byte count
    /// is measured from disk creation, not from this call.
    pub fn set_crash_at_bytes(&self, bytes: Option<u64>) {
        self.inner.lock().config.crash_at_bytes = bytes;
    }

    /// Simulate power loss now: every file's unsynced tail survives only
    /// as a seeded prefix, and whatever survived is now "on media"
    /// (durable). The disk stays usable afterwards — this models the
    /// machine rebooting with the same disk attached.
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        let seed = inner.config.seed;
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        inner.stats.crashes += 1;
        for (file_idx, state) in inner.files.values_mut().enumerate() {
            Self::tear_tail(state, seed, n, file_idx as u64);
        }
    }

    /// Apply the torn-write rule to one file: keep the synced prefix plus
    /// a seeded fraction of the unsynced tail, then mark the survivor
    /// durable.
    fn tear_tail(state: &mut FileState, seed: u64, op: u64, file_idx: u64) {
        let tail = state.data.len().saturating_sub(state.synced_len);
        if tail > 0 {
            let roll = splitmix64(
                seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ file_idx.wrapping_mul(0xD134_2543_DE82_EF95),
            );
            // Survive [0, tail] bytes of the unsynced tail, inclusive on
            // both ends so "nothing survived" and "everything survived"
            // are both reachable.
            let keep = (roll % (tail as u64 + 1)) as usize;
            state.data.truncate(state.synced_len + keep);
        }
        state.synced_len = state.data.len();
    }

    /// Pure fault draw, mirroring `irs-net/chaos.rs`: returns the fault
    /// (if any) for operation index `n` under this config.
    fn draw(config: &ChaosDiskConfig, n: u64) -> Option<DiskFault> {
        if config.modes.is_empty() || config.fault_rate <= 0.0 {
            return None;
        }
        let roll = splitmix64(config.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let unit = (roll >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= config.fault_rate {
            return None;
        }
        let pick = splitmix64(roll) % config.modes.len() as u64;
        Some(config.modes[pick as usize])
    }
}

impl Disk for ChaosDisk {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.stats.ops += 1;
        let fault = Self::draw(&inner.config, n);
        let seed = inner.config.seed;
        let state = inner
            .files
            .get(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))?;
        let mut data = state.data.clone();
        match fault {
            Some(DiskFault::BitFlip) if !data.is_empty() => {
                let pos = splitmix64(seed ^ n) % (data.len() as u64 * 8);
                data[(pos / 8) as usize] ^= 1 << (pos % 8);
                inner.stats.bit_flips += 1;
            }
            Some(DiskFault::ShortRead) if !data.is_empty() => {
                let keep = (splitmix64(seed ^ n ^ 0x5EED) % data.len() as u64) as usize;
                data.truncate(keep);
                inner.stats.short_reads += 1;
            }
            _ => {}
        }
        Ok(data)
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        // Power-loss check: does this append cross the configured cap?
        if let Some(cap) = inner.config.crash_at_bytes {
            if inner.appended + data.len() as u64 > cap {
                let keep = cap.saturating_sub(inner.appended) as usize;
                inner
                    .files
                    .entry(path.to_string())
                    .or_insert(FileState {
                        data: Vec::new(),
                        synced_len: 0,
                    })
                    .data
                    .extend_from_slice(&data[..keep]);
                inner.appended = cap;
                // Disarm so the post-"reboot" recovery writes succeed.
                inner.config.crash_at_bytes = None;
                let seed = inner.config.seed;
                let n = self.ops.fetch_add(1, Ordering::Relaxed);
                inner.stats.crashes += 1;
                for (file_idx, state) in inner.files.values_mut().enumerate() {
                    Self::tear_tail(state, seed, n, file_idx as u64);
                }
                return Err(io::Error::other(
                    "chaosdisk: simulated power loss mid-append",
                ));
            }
        }
        inner.appended += data.len() as u64;
        inner
            .files
            .entry(path.to_string())
            .or_insert(FileState {
                data: Vec::new(),
                synced_len: 0,
            })
            .data
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.stats.ops += 1;
        if let Some(DiskFault::FsyncLie) = Self::draw(&inner.config, n) {
            inner.stats.fsync_lies += 1;
            return Ok(()); // lie: tail stays volatile
        }
        if let Some(state) = inner.files.get_mut(path) {
            state.synced_len = state.data.len();
        }
        Ok(())
    }

    fn write_atomic(&self, path: &str, data: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if let Some(cap) = inner.config.crash_at_bytes {
            if inner.appended + data.len() as u64 > cap {
                // Atomic replace that doesn't complete leaves the old file:
                // all-or-nothing means a crash mid-way changes nothing.
                inner.appended = cap;
                inner.config.crash_at_bytes = None;
                inner.stats.crashes += 1;
                return Err(io::Error::other(
                    "chaosdisk: simulated power loss during atomic write",
                ));
            }
        }
        inner.appended += data.len() as u64;
        let state = inner.files.entry(path.to_string()).or_insert(FileState {
            data: Vec::new(),
            synced_len: 0,
        });
        state.data = data.to_vec();
        state.synced_len = data.len(); // durable on return, by contract
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.lock().files.contains_key(path)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.inner.lock().files.remove(path);
        Ok(())
    }
}

/// splitmix64 mixer — same generator as `irs-net/chaos.rs`, duplicated
/// here because `irs-net` depends on this crate (no back-edge allowed).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_tears_only_unsynced_tail() {
        let disk = ChaosDisk::new(ChaosDiskConfig::off(7));
        disk.append("wal", b"durable-part").unwrap();
        disk.sync("wal").unwrap();
        disk.append("wal", b"volatile-tail-that-may-tear").unwrap();
        disk.crash();
        let after = disk.read("wal").unwrap();
        assert!(
            after.starts_with(b"durable-part"),
            "synced prefix must survive"
        );
        assert!(after.len() <= b"durable-part-volatile-tail-that-may-tear".len() + 1);
        assert_eq!(disk.stats().crashes, 1);
    }

    #[test]
    fn crash_schedule_is_deterministic_in_seed() {
        let run = |seed: u64| {
            let disk = ChaosDisk::new(ChaosDiskConfig::off(seed));
            disk.append("wal", b"0123456789abcdef").unwrap();
            disk.sync("wal").unwrap();
            disk.append("wal", b"ghijklmnopqrstuv").unwrap();
            disk.crash();
            disk.read("wal").unwrap()
        };
        assert_eq!(run(42), run(42), "same seed, same torn prefix");
    }

    #[test]
    fn crash_at_bytes_cuts_the_crossing_append_and_disarms() {
        let disk = ChaosDisk::new(ChaosDiskConfig::crash_at(3, 10));
        disk.append("wal", b"12345678").unwrap(); // 8 bytes, below cap
        disk.sync("wal").unwrap();
        let err = disk.append("wal", b"ABCDEFGH").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        let after = disk.read("wal").unwrap();
        assert!(after.starts_with(b"12345678"));
        assert!(
            after.len() <= 10,
            "nothing past the power-loss point persists"
        );
        // Post-reboot the disk works again.
        disk.append("wal", b"recovered").unwrap();
        disk.sync("wal").unwrap();
    }

    #[test]
    fn bit_flip_faults_fire_at_configured_rate() {
        let disk = ChaosDisk::new(ChaosDiskConfig {
            seed: 11,
            fault_rate: 1.0,
            modes: vec![DiskFault::BitFlip],
            crash_at_bytes: None,
        });
        disk.append("f", &[0u8; 64]).unwrap();
        let read = disk.read("f").unwrap();
        assert_eq!(read.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        assert_eq!(disk.stats().bit_flips, 1);
    }

    #[test]
    fn fsync_lie_leaves_tail_volatile() {
        let disk = ChaosDisk::new(ChaosDiskConfig {
            seed: 5,
            fault_rate: 1.0,
            modes: vec![DiskFault::FsyncLie],
            crash_at_bytes: None,
        });
        disk.append("wal", b"tail").unwrap();
        disk.sync("wal").unwrap(); // lies
        assert_eq!(disk.stats().fsync_lies, 1);
    }
}
