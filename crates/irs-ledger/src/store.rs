//! The claim store.
//!
//! Append-only: claims are never deleted (revocation flips status, appeals
//! pin it). Serial numbers are dense, so lookup is a vector index. The
//! store also maintains the counting-Bloom index from which filter
//! snapshots are projected.

use irs_core::claim::{Claim, ClaimRequest, RevocationStatus, RevokeRequest};
use irs_core::ids::{LedgerId, RecordId};
use irs_core::time::TimeMs;
use irs_core::tsa::{TimestampAuthority, TimestampToken};
use irs_filters::CountingBloom;

/// Errors from store operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// No record with that serial.
    UnknownRecord,
    /// Revocation signature invalid or epoch stale.
    BadSignature,
    /// Epoch mismatch (concurrent update or replay).
    StaleEpoch,
    /// Permanently revoked records cannot change status.
    Permanent,
    /// A replicated claim arrived for a serial that is already occupied
    /// (broken replication stream; never returned on the primary path).
    DuplicateSerial,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownRecord => write!(f, "unknown record"),
            StoreError::BadSignature => write!(f, "bad ownership signature"),
            StoreError::StaleEpoch => write!(f, "stale status epoch"),
            StoreError::Permanent => write!(f, "record permanently revoked"),
            StoreError::DuplicateSerial => write!(f, "duplicate serial in replication stream"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Whether a claim was made by the owner or custodially by an aggregator
/// (§3.2: "the aggregator can either reject the photo or claim it … in a
/// custodial role so that it can later be revoked").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClaimOrigin {
    /// Claimed by owner software.
    Owner,
    /// Claimed custodially by an aggregator.
    Custodial,
}

/// One stored record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredClaim {
    /// The protocol-visible claim.
    pub claim: Claim,
    /// Who claimed it.
    pub origin: ClaimOrigin,
}

/// The ledger's record database.
pub struct LedgerStore {
    id: LedgerId,
    records: Vec<StoredClaim>,
    tsa: TimestampAuthority,
    /// Counting filter over `RecordId::filter_key` of the **revoked**
    /// records. §4.4's arithmetic ("if the photo does not hit in the
    /// filter, it is definitely not revoked"; 2 % FPR ⇒ 50× load
    /// reduction) requires the published filter to cover the revoked set —
    /// a filter of all claims would be hit by every labeled photo and
    /// save nothing. A counting filter because revocation toggles:
    /// insert on revoke, remove on unrevoke.
    filter_index: CountingBloom,
}

impl LedgerStore {
    /// Create a store. `filter_capacity` sizes the published Bloom filter
    /// (2 % target FPR at that population, per §4.4).
    pub fn new(id: LedgerId, tsa: TimestampAuthority, filter_capacity: u64) -> LedgerStore {
        LedgerStore {
            id,
            records: Vec::new(),
            tsa,
            filter_index: CountingBloom::for_capacity(filter_capacity, 0.02)
                .expect("valid filter params"),
        }
    }

    /// This ledger's identifier.
    pub fn id(&self) -> LedgerId {
        self.id
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record a claim; returns the new identifier and timestamp token.
    pub fn claim(
        &mut self,
        request: ClaimRequest,
        origin: ClaimOrigin,
        initially_revoked: bool,
        now: TimeMs,
    ) -> (RecordId, TimestampToken) {
        let serial = self.records.len() as u64;
        let id = RecordId::new(self.id, serial);
        let timestamp = self.tsa.stamp(request.digest(), now);
        let status = if initially_revoked {
            RevocationStatus::Revoked
        } else {
            RevocationStatus::NotRevoked
        };
        self.records.push(StoredClaim {
            claim: Claim {
                id,
                request,
                timestamp,
                status,
                status_epoch: 0,
            },
            origin,
        });
        if initially_revoked {
            self.filter_index.insert(id.filter_key());
        }
        (id, timestamp)
    }

    /// Look up a record.
    pub fn get(&self, id: &RecordId) -> Option<&StoredClaim> {
        if id.ledger != self.id {
            return None;
        }
        self.records.get(id.serial as usize)
    }

    /// Current status and epoch.
    pub fn status(&self, id: &RecordId) -> Option<(RevocationStatus, u64)> {
        self.get(id).map(|r| (r.claim.status, r.claim.status_epoch))
    }

    /// Apply a signed revoke/unrevoke request.
    pub fn apply_revoke(
        &mut self,
        request: &RevokeRequest,
    ) -> Result<(RevocationStatus, u64), StoreError> {
        if request.id.ledger != self.id {
            return Err(StoreError::UnknownRecord);
        }
        let rec = self
            .records
            .get_mut(request.id.serial as usize)
            .ok_or(StoreError::UnknownRecord)?;
        if rec.claim.status == RevocationStatus::PermanentlyRevoked {
            return Err(StoreError::Permanent);
        }
        if request.epoch != rec.claim.status_epoch {
            return Err(StoreError::StaleEpoch);
        }
        if !request.verify(&rec.claim.request.pubkey, rec.claim.status_epoch) {
            return Err(StoreError::BadSignature);
        }
        let was_revoked = rec.claim.status != RevocationStatus::NotRevoked;
        rec.claim.status = if request.revoke {
            RevocationStatus::Revoked
        } else {
            RevocationStatus::NotRevoked
        };
        rec.claim.status_epoch += 1;
        let key = rec.claim.id.filter_key();
        let result = (rec.claim.status, rec.claim.status_epoch);
        match (was_revoked, request.revoke) {
            (false, true) => self.filter_index.insert(key),
            (true, false) => self.filter_index.remove(key),
            _ => {}
        }
        Ok(result)
    }

    /// Permanently revoke (appeals outcome); bypasses signatures because it
    /// is an administrative action of the ledger itself.
    pub fn permanently_revoke(&mut self, id: &RecordId) -> Result<(), StoreError> {
        if id.ledger != self.id {
            return Err(StoreError::UnknownRecord);
        }
        let rec = self
            .records
            .get_mut(id.serial as usize)
            .ok_or(StoreError::UnknownRecord)?;
        let was_revoked = rec.claim.status != RevocationStatus::NotRevoked;
        rec.claim.status = RevocationStatus::PermanentlyRevoked;
        rec.claim.status_epoch += 1;
        if !was_revoked {
            self.filter_index.insert(id.filter_key());
        }
        Ok(())
    }

    /// The counting filter over **revoked** identifiers (projected to a
    /// plain Bloom filter for publication by the service layer).
    pub fn filter_index(&self) -> &CountingBloom {
        &self.filter_index
    }

    /// The exact `filter_key` set of currently revoked records — the
    /// input the tiered publisher seals into a fuse base (the counting
    /// filter cannot be enumerated, so compaction reads the records).
    pub fn revoked_filter_keys(&self) -> std::collections::HashSet<u64> {
        self.records
            .iter()
            .filter(|r| r.claim.status != RevocationStatus::NotRevoked)
            .map(|r| r.claim.id.filter_key())
            .collect()
    }

    /// Decompose into raw parts for promotion to a
    /// [`crate::sharded::ShardedLedgerStore`].
    pub(crate) fn into_parts(self) -> (LedgerId, TimestampAuthority, Vec<StoredClaim>) {
        (self.id, self.tsa, self.records)
    }

    /// Iterate all records (appeals scans, probes, stats).
    pub fn iter(&self) -> impl Iterator<Item = &StoredClaim> {
        self.records.iter()
    }

    /// Count records by status: (not revoked, revoked, permanent).
    pub fn status_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for r in &self.records {
            match r.claim.status {
                RevocationStatus::NotRevoked => counts.0 += 1,
                RevocationStatus::Revoked => counts.1 += 1,
                RevocationStatus::PermanentlyRevoked => counts.2 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_crypto::{Digest, Keypair};

    fn store() -> LedgerStore {
        LedgerStore::new(LedgerId(1), TimestampAuthority::from_seed(1), 10_000)
    }

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    fn make_claim(s: &mut LedgerStore, seed: u8, revoked: bool) -> (RecordId, Keypair) {
        let keypair = kp(seed);
        let req = ClaimRequest::create(&keypair, &Digest::of(&[seed]));
        let (id, _tok) = s.claim(req, ClaimOrigin::Owner, revoked, TimeMs(100));
        (id, keypair)
    }

    #[test]
    fn claim_assigns_dense_serials() {
        let mut s = store();
        let (a, _) = make_claim(&mut s, 1, false);
        let (b, _) = make_claim(&mut s, 2, false);
        assert_eq!(a.serial, 0);
        assert_eq!(b.serial, 1);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn status_lifecycle() {
        let mut s = store();
        let (id, keypair) = make_claim(&mut s, 3, false);
        assert_eq!(s.status(&id), Some((RevocationStatus::NotRevoked, 0)));
        let req = RevokeRequest::create(&keypair, id, true, 0);
        let (st, ep) = s.apply_revoke(&req).unwrap();
        assert_eq!(st, RevocationStatus::Revoked);
        assert_eq!(ep, 1);
        // Unrevoke at the new epoch.
        let req2 = RevokeRequest::create(&keypair, id, false, 1);
        let (st2, ep2) = s.apply_revoke(&req2).unwrap();
        assert_eq!(st2, RevocationStatus::NotRevoked);
        assert_eq!(ep2, 2);
    }

    #[test]
    fn initially_revoked_claims() {
        // §4.4: "many photos will be automatically registered and revoked".
        let mut s = store();
        let (id, _) = make_claim(&mut s, 4, true);
        assert_eq!(s.status(&id), Some((RevocationStatus::Revoked, 0)));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut s = store();
        let (id, _) = make_claim(&mut s, 5, false);
        let intruder = kp(99);
        let req = RevokeRequest::create(&intruder, id, true, 0);
        assert_eq!(s.apply_revoke(&req), Err(StoreError::BadSignature));
    }

    #[test]
    fn stale_epoch_rejected() {
        let mut s = store();
        let (id, keypair) = make_claim(&mut s, 6, false);
        let old = RevokeRequest::create(&keypair, id, true, 0);
        s.apply_revoke(&old).unwrap();
        // Replay the same (epoch-0) request.
        assert_eq!(s.apply_revoke(&old), Err(StoreError::StaleEpoch));
    }

    #[test]
    fn permanent_revocation_is_final() {
        let mut s = store();
        let (id, keypair) = make_claim(&mut s, 7, false);
        s.permanently_revoke(&id).unwrap();
        assert_eq!(
            s.status(&id),
            Some((RevocationStatus::PermanentlyRevoked, 1))
        );
        let req = RevokeRequest::create(&keypair, id, false, 1);
        assert_eq!(s.apply_revoke(&req), Err(StoreError::Permanent));
    }

    #[test]
    fn unknown_and_foreign_records() {
        let mut s = store();
        let foreign = RecordId::new(LedgerId(2), 0);
        assert_eq!(s.status(&foreign), None);
        assert_eq!(
            s.permanently_revoke(&foreign),
            Err(StoreError::UnknownRecord)
        );
        let missing = RecordId::new(LedgerId(1), 42);
        assert_eq!(s.status(&missing), None);
    }

    #[test]
    fn filter_index_tracks_revocations_not_claims() {
        use irs_filters::Filter;
        let mut s = store();
        // Unrevoked claim: NOT in the filter ("miss ⇒ definitely not
        // revoked" must hold for all shared photos).
        let (id, keypair) = make_claim(&mut s, 8, false);
        assert!(!s.filter_index().contains(id.filter_key()));
        // Revoke: enters the filter.
        let rv = RevokeRequest::create(&keypair, id, true, 0);
        s.apply_revoke(&rv).unwrap();
        assert!(s.filter_index().contains(id.filter_key()));
        // Unrevoke: leaves the filter again.
        let unrv = RevokeRequest::create(&keypair, id, false, 1);
        s.apply_revoke(&unrv).unwrap();
        assert!(!s.filter_index().contains(id.filter_key()));
        // Auto-registered-revoked claims are in from the start.
        let (id2, _) = make_claim(&mut s, 9, true);
        assert!(s.filter_index().contains(id2.filter_key()));
        // Permanent revocation inserts too.
        let (id3, _) = make_claim(&mut s, 10, false);
        s.permanently_revoke(&id3).unwrap();
        assert!(s.filter_index().contains(id3.filter_key()));
    }

    #[test]
    fn status_counts() {
        let mut s = store();
        make_claim(&mut s, 1, false);
        make_claim(&mut s, 2, true);
        let (id, _) = make_claim(&mut s, 3, false);
        s.permanently_revoke(&id).unwrap();
        assert_eq!(s.status_counts(), (1, 1, 1));
    }

    #[test]
    fn timestamp_tokens_verify() {
        let tsa = TimestampAuthority::from_seed(9);
        let tsa_key = tsa.public_key();
        let mut s = LedgerStore::new(LedgerId(3), tsa, 100);
        let keypair = kp(10);
        let req = ClaimRequest::create(&keypair, &Digest::of(b"p"));
        let (_, tok) = s.claim(req, ClaimOrigin::Owner, false, TimeMs(55));
        assert!(tok.verify(&tsa_key));
        assert_eq!(tok.time, TimeMs(55));
        assert_eq!(tok.stamped, req.digest());
    }
}
