//! The IRS ledger service.
//!
//! §3.1: ledgers are "essentially timestamped databases of photos" backing
//! the four IRS operations. This crate implements a complete ledger:
//!
//! * [`store`] — the append-only claim store with status epochs and a
//!   counting-Bloom index of claimed identifiers;
//! * [`service`] — [`Ledger`]: wire-protocol request handling, freshness
//!   proofs, versioned filter snapshots with delta publication (§4.4), and
//!   ledger policies (standard vs the §5 censorship-resistant
//!   "non-revocable" ledgers run by nonprofits);
//! * [`appeals`] — the §3.2 appeals process: timestamp-ordered ownership
//!   evidence plus robust-hash comparison, ending in permanent revocation
//!   of re-claimed copies;
//! * [`adversarial`] — §5 "Malicious Ledgers": fault-injection wrappers
//!   that lie, drop revocations, or serve stale state;
//! * [`probe`] — the countermeasure: "automated software that claims
//!   photos on behalf of owners could periodically send probes to ledgers
//!   to ensure that they are being answered correctly".

//!
//! For servers there is a concurrent tier: [`sharded`] provides the
//! lock-striped [`ShardedLedgerStore`] (dense serials from one atomic
//! allocator, records and the counting-Bloom index striped per shard),
//! and [`concurrent`] wraps it as [`ConcurrentLedger`], whose request
//! path is entirely `&self` so connection threads share it behind a
//! plain `Arc` — no whole-service mutex. See DESIGN.md, "Concurrency
//! architecture".
//!
//! Durability tier (DESIGN.md, "Durability & recovery"): [`wal`] is the
//! checksummed write-ahead log every mutation hits before it is
//! acknowledged, [`snapshot`] the periodic checkpoint that bounds replay,
//! [`recovery`] the open-time replay that rebuilds state exactly (and
//! fails closed on anything tearing cannot explain), [`disk`] the narrow
//! storage trait they share, and [`chaosdisk`] its seeded
//! fault-injecting double for crash experiments (E17).
//!
//! Replication tier (DESIGN.md, "Replication & failover"): [`replication`]
//! ships the WAL to a [`Follower`] on another disk — every durable record
//! carries a dense sequence number, followers catch up from a seq-stamped
//! snapshot plus the live stream, and the
//! [`ReplicationPolicy`] decides whether client acks
//! wait for the replica (E20's zero-acked-loss guarantee) or only the
//! local fsync.
//!
//! Placement tier (DESIGN.md §15): [`placement`] splits the claim
//! keyspace across N such replica sets — an epoch-versioned
//! [`ShardMap`] routes claims by rendezvous hashing and record-keyed
//! requests exactly by `RecordId::ledger`; servers hold their view in a
//! [`ShardDirectory`] and reject misrouted keys with `WrongShard`.

pub mod adversarial;
pub mod appeals;
pub mod chaosdisk;
pub mod concurrent;
pub mod disk;
pub mod payments;
pub mod placement;
pub mod probe;
pub mod recovery;
pub mod replication;
pub mod service;
pub mod sharded;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use appeals::{AppealOutcome, AppealsJudge};
pub use chaosdisk::{ChaosDisk, ChaosDiskConfig, DiskFault};
pub use concurrent::{ConcurrentLedger, Durability, DurabilityConfig};
pub use disk::{Disk, StdDisk};
pub use placement::{PlacementError, ShardDirectory, ShardMap, ShardSpec};
pub use recovery::{RecoveredState, RecoveryError, RecoveryReport};
pub use replication::{
    ApplyError, Follower, FollowerError, ReplicationLog, ReplicationPolicy, SegmentData,
};
pub use service::{Ledger, LedgerConfig, LedgerPolicy, LedgerStats};
pub use sharded::ShardedLedgerStore;
pub use store::{LedgerStore, StoreError};
pub use wal::{AppendReceipt, FsyncPolicy, WalError, WalRecord, WalWriter};

/// Error codes carried in `Response::Error`.
pub mod codes {
    /// Record does not exist.
    pub const UNKNOWN_RECORD: u16 = 1;
    /// Ownership signature failed.
    pub const BAD_SIGNATURE: u16 = 2;
    /// Operation refused by ledger policy.
    pub const POLICY: u16 = 3;
    /// Malformed or unsupported request.
    pub const BAD_REQUEST: u16 = 4;
    /// Stale epoch in a revoke request.
    pub const STALE_EPOCH: u16 = 5;
    /// Upstream ledger unreachable and no degraded answer available
    /// (returned by proxies, never by a ledger itself).
    pub const UNAVAILABLE: u16 = 6;
    /// Durable storage failed; the operation was not acknowledged and
    /// must be retried (the in-memory state may already reflect it, but
    /// nothing un-logged is promised across a restart).
    pub const STORAGE: u16 = 7;
}
