//! The IRS ledger service.
//!
//! §3.1: ledgers are "essentially timestamped databases of photos" backing
//! the four IRS operations. This crate implements a complete ledger:
//!
//! * [`store`] — the append-only claim store with status epochs and a
//!   counting-Bloom index of claimed identifiers;
//! * [`service`] — [`Ledger`]: wire-protocol request handling, freshness
//!   proofs, versioned filter snapshots with delta publication (§4.4), and
//!   ledger policies (standard vs the §5 censorship-resistant
//!   "non-revocable" ledgers run by nonprofits);
//! * [`appeals`] — the §3.2 appeals process: timestamp-ordered ownership
//!   evidence plus robust-hash comparison, ending in permanent revocation
//!   of re-claimed copies;
//! * [`adversarial`] — §5 "Malicious Ledgers": fault-injection wrappers
//!   that lie, drop revocations, or serve stale state;
//! * [`probe`] — the countermeasure: "automated software that claims
//!   photos on behalf of owners could periodically send probes to ledgers
//!   to ensure that they are being answered correctly".

//!
//! For servers there is a concurrent tier: [`sharded`] provides the
//! lock-striped [`ShardedLedgerStore`] (dense serials from one atomic
//! allocator, records and the counting-Bloom index striped per shard),
//! and [`concurrent`] wraps it as [`ConcurrentLedger`], whose request
//! path is entirely `&self` so connection threads share it behind a
//! plain `Arc` — no whole-service mutex. See DESIGN.md, "Concurrency
//! architecture".

pub mod adversarial;
pub mod appeals;
pub mod concurrent;
pub mod payments;
pub mod probe;
pub mod service;
pub mod sharded;
pub mod store;

pub use appeals::{AppealOutcome, AppealsJudge};
pub use concurrent::ConcurrentLedger;
pub use service::{Ledger, LedgerConfig, LedgerPolicy, LedgerStats};
pub use sharded::ShardedLedgerStore;
pub use store::{LedgerStore, StoreError};

/// Error codes carried in `Response::Error`.
pub mod codes {
    /// Record does not exist.
    pub const UNKNOWN_RECORD: u16 = 1;
    /// Ownership signature failed.
    pub const BAD_SIGNATURE: u16 = 2;
    /// Operation refused by ledger policy.
    pub const POLICY: u16 = 3;
    /// Malformed or unsupported request.
    pub const BAD_REQUEST: u16 = 4;
    /// Stale epoch in a revoke request.
    pub const STALE_EPOCH: u16 = 5;
    /// Upstream ledger unreachable and no degraded answer available
    /// (returned by proxies, never by a ledger itself).
    pub const UNAVAILABLE: u16 = 6;
}
