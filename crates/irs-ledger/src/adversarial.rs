//! Malicious-ledger fault injection (§5 "Malicious Ledgers?").
//!
//! "Ledgers could misbehave in various ways (e.g., answering queries
//! incorrectly, not responding to an owner's request to revoke or unrevoke
//! a photo, etc.)". [`AdversarialLedger`] wraps an honest ledger with a
//! fault policy; [`crate::probe::Prober`] is the detection countermeasure.

use crate::service::Ledger;
use irs_core::claim::RevocationStatus;
use irs_core::time::TimeMs;
use irs_core::wire::{Request, Response};

/// How the ledger misbehaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Misbehavior {
    /// Honest (control case).
    None,
    /// Answers every status query "NotRevoked" regardless of truth —
    /// keeps revoked photos visible.
    LieNotRevoked,
    /// Acknowledges revocations but silently drops them.
    DropRevocations,
    /// Serves answers as of `lag_ms` in the past (stale replication,
    /// or deliberate foot-dragging).
    Stale {
        /// How far behind truth the answers are.
        lag_ms: u64,
    },
    /// Ignores a fraction of requests entirely (per-request deterministic
    /// by a counter, `1/n` dropped).
    DropEvery {
        /// Every n-th request is dropped.
        n: u64,
    },
}

/// An honest ledger wrapped with a misbehavior policy.
pub struct AdversarialLedger {
    inner: Ledger,
    misbehavior: Misbehavior,
    /// (record serial → (status, effective_at)) history for Stale mode.
    history: Vec<(u64, RevocationStatus, TimeMs)>,
    request_counter: u64,
}

impl AdversarialLedger {
    /// Wrap a ledger.
    pub fn new(inner: Ledger, misbehavior: Misbehavior) -> AdversarialLedger {
        AdversarialLedger {
            inner,
            misbehavior,
            history: Vec::new(),
            request_counter: 0,
        }
    }

    /// The wrapped honest ledger.
    pub fn inner(&self) -> &Ledger {
        &self.inner
    }

    /// Mutable access (setup paths).
    pub fn inner_mut(&mut self) -> &mut Ledger {
        &mut self.inner
    }

    /// Handle a request through the fault policy. `None` models a dropped
    /// request (timeout at the caller).
    pub fn handle(&mut self, request: Request, now: TimeMs) -> Option<Response> {
        self.request_counter += 1;
        if let Misbehavior::DropEvery { n } = self.misbehavior {
            if n > 0 && self.request_counter % n == 0 {
                return None;
            }
        }
        match (&self.misbehavior, &request) {
            (Misbehavior::LieNotRevoked, Request::Query { id }) => {
                let id = *id;
                // Consult truth only for existence.
                match self.inner.handle(Request::Query { id }, now) {
                    Response::Status { id, epoch, .. } => Some(Response::Status {
                        id,
                        status: RevocationStatus::NotRevoked,
                        epoch,
                    }),
                    other => Some(other),
                }
            }
            (Misbehavior::LieNotRevoked, Request::Batch(ids)) => {
                let items = ids
                    .iter()
                    .map(|&id| (id, RevocationStatus::NotRevoked))
                    .collect();
                Some(Response::BatchStatus(items))
            }
            (Misbehavior::DropRevocations, Request::Revoke(rv)) => {
                // Acknowledge with plausible data but change nothing.
                let (status, epoch) = self
                    .inner
                    .store()
                    .status(&rv.id)
                    .unwrap_or((RevocationStatus::NotRevoked, 0));
                let _ = status;
                Some(Response::RevokeAck {
                    id: rv.id,
                    status: if rv.revoke {
                        RevocationStatus::Revoked
                    } else {
                        RevocationStatus::NotRevoked
                    },
                    epoch: epoch + 1,
                })
            }
            (Misbehavior::Stale { lag_ms }, Request::Query { id }) => {
                let lag = *lag_ms;
                let id = *id;
                let cutoff = TimeMs(now.0.saturating_sub(lag));
                // Status as of `cutoff`: the last transition at or before
                // the cutoff, or the record's initial state if every
                // transition is newer than the cutoff.
                let stale = self
                    .history
                    .iter()
                    .rev()
                    .find(|(serial, _, at)| *serial == id.serial && *at <= cutoff)
                    .or_else(|| {
                        self.history
                            .iter()
                            .find(|(serial, _, _)| *serial == id.serial)
                    })
                    .map(|(_, st, _)| *st);
                match self.inner.handle(Request::Query { id }, now) {
                    Response::Status { id, epoch, status } => Some(Response::Status {
                        id,
                        status: stale.unwrap_or(status),
                        epoch,
                    }),
                    other => Some(other),
                }
            }
            _ => {
                let response = self.inner.handle(request.clone(), now);
                // Maintain status history for Stale mode.
                if let Response::RevokeAck { id, status, .. } = &response {
                    self.history.push((id.serial, *status, now));
                }
                if let Response::Claimed { id, .. } = &response {
                    self.history
                        .push((id.serial, RevocationStatus::NotRevoked, now));
                }
                Some(response)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::LedgerConfig;
    use irs_core::claim::{ClaimRequest, RevokeRequest};
    use irs_core::ids::LedgerId;
    use irs_core::tsa::TimestampAuthority;
    use irs_crypto::{Digest, Keypair};

    fn honest() -> Ledger {
        Ledger::new(
            LedgerConfig::new(LedgerId(1)),
            TimestampAuthority::from_seed(1),
        )
    }

    fn claim_and_revoke(l: &mut AdversarialLedger) -> irs_core::ids::RecordId {
        let kp = Keypair::from_seed(&[1u8; 32]);
        let req = ClaimRequest::create(&kp, &Digest::of(b"p"));
        let Some(Response::Claimed { id, .. }) = l.handle(Request::Claim(req), TimeMs(10)) else {
            panic!("claim failed");
        };
        let rv = RevokeRequest::create(&kp, id, true, 0);
        l.handle(Request::Revoke(rv), TimeMs(20));
        id
    }

    #[test]
    fn honest_control() {
        let mut l = AdversarialLedger::new(honest(), Misbehavior::None);
        let id = claim_and_revoke(&mut l);
        match l.handle(Request::Query { id }, TimeMs(30)) {
            Some(Response::Status { status, .. }) => {
                assert_eq!(status, RevocationStatus::Revoked)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn liar_reports_not_revoked() {
        let mut l = AdversarialLedger::new(honest(), Misbehavior::LieNotRevoked);
        let id = claim_and_revoke(&mut l);
        match l.handle(Request::Query { id }, TimeMs(30)) {
            Some(Response::Status { status, .. }) => {
                assert_eq!(status, RevocationStatus::NotRevoked)
            }
            other => panic!("unexpected {other:?}"),
        }
        // Truth inside is revoked.
        assert_eq!(
            l.inner().store().status(&id).unwrap().0,
            RevocationStatus::Revoked
        );
    }

    #[test]
    fn revocation_dropper_acks_but_ignores() {
        let mut l = AdversarialLedger::new(honest(), Misbehavior::DropRevocations);
        let id = claim_and_revoke(&mut l);
        // The ack looked fine but truth is unchanged.
        assert_eq!(
            l.inner().store().status(&id).unwrap().0,
            RevocationStatus::NotRevoked
        );
    }

    #[test]
    fn stale_ledger_serves_old_status() {
        let mut l = AdversarialLedger::new(honest(), Misbehavior::Stale { lag_ms: 1_000 });
        let id = claim_and_revoke(&mut l); // revoked at t=20
                                           // At t=500 the cutoff (t=-500 → claim-time state) still shows the
                                           // pre-revocation state.
        match l.handle(Request::Query { id }, TimeMs(500)) {
            Some(Response::Status { status, .. }) => {
                assert_eq!(status, RevocationStatus::NotRevoked)
            }
            other => panic!("unexpected {other:?}"),
        }
        // Once the lag window passes the revocation becomes visible.
        match l.handle(Request::Query { id }, TimeMs(5_000)) {
            Some(Response::Status { status, .. }) => {
                assert_eq!(status, RevocationStatus::Revoked)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dropper_drops_every_nth() {
        let mut l = AdversarialLedger::new(honest(), Misbehavior::DropEvery { n: 3 });
        let mut dropped = 0;
        for _ in 0..9 {
            if l.handle(Request::Ping, TimeMs(1)).is_none() {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 3);
    }
}
