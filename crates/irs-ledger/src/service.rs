//! The ledger service: protocol handling, filter publication, proofs.
//!
//! Wraps a [`LedgerStore`] with the wire protocol, a signing key for
//! freshness proofs, versioned revoked-set Bloom snapshots with delta
//! publication
//! (§4.4: "updated regularly (perhaps hourly), and transferred with a
//! delta encoding"), and the ledger policy knob that models the §5
//! censorship-resistant ledgers.

use crate::codes;
use crate::store::{ClaimOrigin, LedgerStore, StoreError};
use irs_core::claim::RevocationStatus;
use irs_core::freshness::FreshnessProof;
use irs_core::ids::{LedgerId, RecordId};
use irs_core::time::TimeMs;
use irs_core::tsa::TimestampAuthority;
use irs_core::wire::{Request, Response};
use irs_crypto::{Keypair, PublicKey};
use irs_filters::delta::BloomDelta;
use irs_filters::{BloomFilter, TieredConfig, TieredPublisher, TieredServe, TieredSnapshot};
use std::sync::Arc;

/// Ledger behavioral policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LedgerPolicy {
    /// Normal commercial ledger: owners may revoke and unrevoke.
    Standard,
    /// §5 "Enabling Censorship?": a nonprofit ledger for e.g. human-rights
    /// documentation that "could register photos and not allow their
    /// revocation".
    NonRevocable,
}

/// Configuration for a ledger instance.
#[derive(Clone, Debug)]
pub struct LedgerConfig {
    /// This ledger's ecosystem identifier.
    pub id: LedgerId,
    /// Behavioral policy.
    pub policy: LedgerPolicy,
    /// Expected claimed-photo population (sizes the published filter).
    pub filter_capacity: u64,
    /// Validity window for freshness proofs (ms). §3.2's "recently
    /// verified"; also the aggregator recheck period.
    pub proof_validity_ms: u64,
    /// How many claims/revocations may accumulate before `publish_filter`
    /// emits a new snapshot version (publication cadence is driven by the
    /// caller's clock; this is just bookkeeping for tests).
    pub seed: u64,
    /// Sizing of the tiered (fuse base + Bloom delta) filter pipeline:
    /// delta capacity/FPR and the compaction threshold (DESIGN.md §16).
    pub tiered: TieredConfig,
}

impl LedgerConfig {
    /// Reasonable defaults for simulations.
    pub fn new(id: LedgerId) -> LedgerConfig {
        LedgerConfig {
            id,
            policy: LedgerPolicy::Standard,
            filter_capacity: 100_000,
            proof_validity_ms: 3_600_000, // 1 hour
            seed: id.0 as u64,
            tiered: TieredConfig::default(),
        }
    }
}

/// A published filter snapshot.
#[derive(Clone, Debug)]
struct FilterSnapshot {
    version: u64,
    filter: BloomFilter,
}

/// A complete IRS ledger.
pub struct Ledger {
    config: LedgerConfig,
    store: LedgerStore,
    signing_key: Keypair,
    tsa_key: PublicKey,
    snapshot: Option<FilterSnapshot>,
    /// The immediately preceding snapshot, kept so requesters one version
    /// behind get a delta instead of a full re-ship.
    previous_snapshot: Option<FilterSnapshot>,
    /// The tiered (fuse base + Bloom delta) publication state, advanced
    /// alongside the legacy Bloom snapshot on every `publish_filter`.
    tiered: TieredPublisher,
    /// Count of wire requests served, by coarse kind (query, claim,
    /// revoke, filter, proof, batch items) — the load metrics experiments
    /// E4/E5 read.
    pub stats: LedgerStats,
}

/// Request counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Single status queries served.
    pub queries: u64,
    /// Batched status items served.
    pub batch_items: u64,
    /// Claims recorded.
    pub claims: u64,
    /// Revocations processed (including unrevokes).
    pub revokes: u64,
    /// Filter snapshots served (full).
    pub filters_full: u64,
    /// Filter deltas served.
    pub filters_delta: u64,
    /// Sealed fuse bases served (tiered pipeline, epoch roll).
    pub filters_base: u64,
    /// Full tiered installs served (bootstrap or multi-epoch lag).
    pub filters_tiered: u64,
    /// Freshness proofs issued.
    pub proofs: u64,
}

impl Ledger {
    /// Create a ledger. The TSA is shared ecosystem infrastructure; the
    /// signing key is derived from the config seed (deterministic for
    /// experiments).
    pub fn new(config: LedgerConfig, tsa: TimestampAuthority) -> Ledger {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&config.seed.to_le_bytes());
        seed[8..16].copy_from_slice(b"IRSLEDGR");
        let tsa_key = tsa.public_key();
        Ledger {
            store: LedgerStore::new(config.id, tsa, config.filter_capacity),
            signing_key: Keypair::from_seed(&seed),
            tsa_key,
            snapshot: None,
            previous_snapshot: None,
            tiered: TieredPublisher::new(config.tiered).expect("valid tiered filter config"),
            stats: LedgerStats::default(),
            config,
        }
    }

    /// This ledger's identifier.
    pub fn id(&self) -> LedgerId {
        self.config.id
    }

    /// The key proofs are signed with (trusted by verifiers out of band).
    pub fn public_key(&self) -> PublicKey {
        self.signing_key.public
    }

    /// The timestamp authority key this ledger stamps claims with.
    pub fn tsa_key(&self) -> PublicKey {
        self.tsa_key
    }

    /// Direct store access (appeals, probes, experiments).
    pub fn store(&self) -> &LedgerStore {
        &self.store
    }

    /// Mutable store access (appeals process applies permanent
    /// revocations).
    pub fn store_mut(&mut self) -> &mut LedgerStore {
        &mut self.store
    }

    /// Handle one wire request at the given time.
    pub fn handle(&mut self, request: Request, now: TimeMs) -> Response {
        match request {
            Request::Claim(req) => {
                self.stats.claims += 1;
                let (id, timestamp) = self.store.claim(req, ClaimOrigin::Owner, false, now);
                Response::Claimed { id, timestamp }
            }
            Request::Query { id } => {
                self.stats.queries += 1;
                match self.store.status(&id) {
                    Some((status, epoch)) => Response::Status { id, status, epoch },
                    None => err(codes::UNKNOWN_RECORD, "unknown record"),
                }
            }
            Request::Revoke(req) => {
                if self.config.policy == LedgerPolicy::NonRevocable && req.revoke {
                    return err(codes::POLICY, "this ledger does not allow revocation");
                }
                self.stats.revokes += 1;
                match self.store.apply_revoke(&req) {
                    Ok((status, epoch)) => Response::RevokeAck {
                        id: req.id,
                        status,
                        epoch,
                    },
                    Err(StoreError::UnknownRecord) => err(codes::UNKNOWN_RECORD, "unknown record"),
                    Err(StoreError::BadSignature) => err(codes::BAD_SIGNATURE, "bad signature"),
                    Err(StoreError::StaleEpoch) => err(codes::STALE_EPOCH, "stale epoch"),
                    Err(StoreError::Permanent) => err(codes::POLICY, "permanently revoked"),
                    // Only the follower apply path can produce this.
                    Err(StoreError::DuplicateSerial) => err(codes::STORAGE, "duplicate serial"),
                }
            }
            Request::GetFilter { have_version } => self.serve_filter(have_version),
            Request::GetFilterTiered {
                have_epoch,
                have_version,
            } => self.serve_filter_tiered(have_epoch, have_version),
            Request::GetProof { id } => {
                self.stats.proofs += 1;
                match self.store.status(&id) {
                    Some((status, _)) => Response::Proof(self.issue_proof(id, status, now)),
                    None => err(codes::UNKNOWN_RECORD, "unknown record"),
                }
            }
            Request::Batch(ids) => {
                self.stats.batch_items += ids.len() as u64;
                let items = ids
                    .into_iter()
                    .map(|id| {
                        let status = self
                            .store
                            .status(&id)
                            .map(|(s, _)| s)
                            // Unknown records are reported NotRevoked: the
                            // viewer fails open (Nongoal #4) and an unknown
                            // id is indistinguishable from another ledger's.
                            .unwrap_or(RevocationStatus::NotRevoked);
                        (id, status)
                    })
                    .collect();
                Response::BatchStatus(items)
            }
            Request::Ping => Response::Pong,
            Request::Metrics => Response::MetricsText(self.metrics_text()),
            // The sequential ledger has no WAL to ship: replication is a
            // durable-ledger feature (see `ConcurrentLedger`).
            Request::WalSubscribe { .. } | Request::FetchSnapshot => {
                err(codes::UNAVAILABLE, "this ledger does not serve replication")
            }
            // Placement is a concurrent-tier feature (see
            // `ConcurrentLedger::set_shard_directory`).
            Request::GetShardMap => err(codes::UNAVAILABLE, "this ledger has no shard directory"),
        }
    }

    /// Render the request counters in the metrics exposition format. The
    /// sequential ledger has no registry (it is single-threaded state the
    /// caller owns); the counters are formatted directly so both ledger
    /// flavors answer [`Request::Metrics`] with the same grammar.
    pub fn metrics_text(&self) -> String {
        let s = &self.stats;
        let mut out = String::new();
        for (name, value) in [
            ("irs_ledger_batch_items_total", s.batch_items),
            ("irs_ledger_claims_total", s.claims),
            ("irs_ledger_filters_base_total", s.filters_base),
            ("irs_ledger_filters_delta_total", s.filters_delta),
            ("irs_ledger_filters_full_total", s.filters_full),
            ("irs_ledger_filters_tiered_total", s.filters_tiered),
            ("irs_ledger_proofs_total", s.proofs),
            ("irs_ledger_queries_total", s.queries),
            ("irs_ledger_revokes_total", s.revokes),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        out.push_str(&format!(
            "# TYPE irs_ledger_filter_version gauge\nirs_ledger_filter_version {}\n",
            self.filter_version()
        ));
        out.push_str(&format!(
            "# TYPE irs_ledger_tiered_epoch gauge\nirs_ledger_tiered_epoch {}\n",
            self.tiered.epoch()
        ));
        out
    }

    /// Claim custodially on behalf of an aggregator (library-level API —
    /// aggregators co-locate with ledgers in the eventual design).
    pub fn claim_custodial(
        &mut self,
        req: irs_core::claim::ClaimRequest,
        now: TimeMs,
    ) -> (RecordId, irs_core::tsa::TimestampToken) {
        self.stats.claims += 1;
        self.store.claim(req, ClaimOrigin::Custodial, false, now)
    }

    /// Claim with the "auto-register revoked" default (§4.4: owners
    /// unrevoke the ones they want to share).
    pub fn claim_revoked(
        &mut self,
        req: irs_core::claim::ClaimRequest,
        now: TimeMs,
    ) -> (RecordId, irs_core::tsa::TimestampToken) {
        self.stats.claims += 1;
        self.store.claim(req, ClaimOrigin::Owner, true, now)
    }

    /// Issue a signed freshness proof.
    pub fn issue_proof(
        &self,
        id: RecordId,
        status: RevocationStatus,
        now: TimeMs,
    ) -> FreshnessProof {
        FreshnessProof::issue(
            &self.signing_key,
            id,
            status,
            now,
            self.config.proof_validity_ms,
        )
    }

    /// Publish a new filter snapshot; returns its version. Called on the
    /// publication cadence (e.g. hourly) by the surrounding system. The
    /// same pass reconciles the tiered pipeline: the delta tier re-covers
    /// `revoked \ base`, and a delta past the compaction threshold seals
    /// a new fuse base (epoch roll).
    pub fn publish_filter(&mut self) -> u64 {
        let version = self.snapshot.as_ref().map(|s| s.version + 1).unwrap_or(1);
        self.previous_snapshot = self.snapshot.take();
        self.snapshot = Some(FilterSnapshot {
            version,
            filter: self.store.filter_index().to_bloom(),
        });
        self.tiered
            .publish(&self.store.revoked_filter_keys())
            .expect("tiered config validated at construction");
        version
    }

    /// Current published snapshot version (0 = never published).
    pub fn filter_version(&self) -> u64 {
        self.snapshot.as_ref().map(|s| s.version).unwrap_or(0)
    }

    /// The current published filter, if any (proxies use this in-process;
    /// the wire path uses [`Request::GetFilter`]).
    pub fn published_filter(&self) -> Option<&BloomFilter> {
        self.snapshot.as_ref().map(|s| &s.filter)
    }

    /// Current tiered epoch (1 until the first compaction seals a base).
    pub fn tiered_epoch(&self) -> u64 {
        self.tiered.epoch()
    }

    /// The current tiered publication (in-process consumers; the wire
    /// path uses [`Request::GetFilterTiered`]).
    pub fn tiered_snapshot(&self) -> Arc<TieredSnapshot> {
        self.tiered.snapshot()
    }

    /// Promote into a [`crate::ConcurrentLedger`] with `num_shards`
    /// stripes; records, published snapshots, and stats carry over.
    pub fn into_concurrent(self, num_shards: usize) -> crate::ConcurrentLedger {
        crate::ConcurrentLedger::from_ledger(self, num_shards)
    }

    /// Decompose for promotion (config, store, keys, (current, previous)
    /// published snapshots, tiered publisher, stats).
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        LedgerConfig,
        LedgerStore,
        Keypair,
        PublicKey,
        (Option<(u64, BloomFilter)>, Option<(u64, BloomFilter)>),
        TieredPublisher,
        LedgerStats,
    ) {
        (
            self.config,
            self.store,
            self.signing_key,
            self.tsa_key,
            (
                self.snapshot.map(|s| (s.version, s.filter)),
                self.previous_snapshot.map(|s| (s.version, s.filter)),
            ),
            self.tiered,
            self.stats,
        )
    }

    fn serve_filter(&mut self, have_version: u64) -> Response {
        let Some(snapshot) = &self.snapshot else {
            return err(codes::BAD_REQUEST, "no filter published yet");
        };
        // Requesters already current get an empty delta; requesters one
        // version behind get the real delta (the retained previous
        // snapshot makes it computable); anything older re-ships full.
        if have_version == snapshot.version {
            let d =
                BloomDelta::diff(&snapshot.filter, &snapshot.filter).expect("identical geometry");
            self.stats.filters_delta += 1;
            return Response::FilterDelta {
                from_version: have_version,
                to_version: snapshot.version,
                data: d.to_bytes(),
            };
        }
        if let Some(prev) = &self.previous_snapshot {
            if have_version == prev.version {
                let d = BloomDelta::diff(&prev.filter, &snapshot.filter)
                    .expect("same geometry across versions");
                self.stats.filters_delta += 1;
                return Response::FilterDelta {
                    from_version: prev.version,
                    to_version: snapshot.version,
                    data: d.to_bytes(),
                };
            }
        }
        self.stats.filters_full += 1;
        Response::FilterFull {
            version: snapshot.version,
            data: snapshot.filter.to_bytes(),
        }
    }

    fn serve_filter_tiered(&mut self, have_epoch: u64, have_version: u64) -> Response {
        // Publication cadence gates both pipelines: before the first
        // publish there is nothing tiered to serve either.
        if self.snapshot.is_none() {
            return err(codes::BAD_REQUEST, "no filter published yet");
        }
        let snap = self.tiered.snapshot();
        match snap.serve(have_epoch, have_version) {
            TieredServe::Current => {
                // Same shape as the legacy path: up-to-date requesters
                // get an empty delta rather than a distinct "no change"
                // message.
                let d = BloomDelta::diff(snap.delta(), snap.delta()).expect("identical geometry");
                self.stats.filters_delta += 1;
                Response::FilterDelta {
                    from_version: have_version,
                    to_version: snap.delta_version(),
                    data: d.to_bytes(),
                }
            }
            TieredServe::Delta {
                from_version,
                to_version,
                delta,
            } => {
                self.stats.filters_delta += 1;
                Response::FilterDelta {
                    from_version,
                    to_version,
                    data: delta.to_bytes(),
                }
            }
            TieredServe::Base { epoch, base } => {
                self.stats.filters_base += 1;
                Response::FilterBase { epoch, data: base }
            }
            TieredServe::Tiered {
                epoch,
                base,
                delta_version,
                delta,
            } => {
                self.stats.filters_tiered += 1;
                Response::FilterTiered {
                    epoch,
                    base,
                    delta_version,
                    delta,
                }
            }
        }
    }
}

fn err(code: u16, message: &str) -> Response {
    Response::Error {
        code,
        message: message.to_string(),
    }
}

/// Retains consecutive filter snapshots and produces deltas between them —
/// the publication pipeline of §4.4 (experiment E6 measures the byte
/// volumes).
pub struct FilterPublisher {
    previous: Option<(u64, BloomFilter)>,
}

/// What the publisher emits for one cadence tick.
#[derive(Clone, Debug)]
pub enum FilterUpdate {
    /// First publication: subscribers need the full filter.
    Full {
        /// Snapshot version.
        version: u64,
        /// Serialized filter.
        data: bytes::Bytes,
    },
    /// Subsequent publication: subscribers holding `from_version` apply
    /// the delta.
    Delta {
        /// Previous version.
        from_version: u64,
        /// New version.
        to_version: u64,
        /// Serialized [`BloomDelta`].
        data: bytes::Bytes,
        /// Full-filter size for the same snapshot, for comparison.
        full_bytes: usize,
    },
}

impl Default for FilterPublisher {
    fn default() -> Self {
        Self::new()
    }
}

impl FilterPublisher {
    /// New publisher with no history.
    pub fn new() -> FilterPublisher {
        FilterPublisher { previous: None }
    }

    /// Publish the ledger's current claim set; returns the update to ship.
    pub fn publish(&mut self, ledger: &mut Ledger) -> FilterUpdate {
        let version = ledger.publish_filter();
        let current = ledger.published_filter().expect("just published").clone();
        let update = match &self.previous {
            Some((prev_version, prev_filter)) => {
                let delta =
                    BloomDelta::diff(prev_filter, &current).expect("same geometry across versions");
                FilterUpdate::Delta {
                    from_version: *prev_version,
                    to_version: version,
                    data: delta.to_bytes(),
                    full_bytes: current.to_bytes().len(),
                }
            }
            None => FilterUpdate::Full {
                version,
                data: current.to_bytes(),
            },
        };
        self.previous = Some((version, current));
        update
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::claim::{ClaimRequest, RevokeRequest};
    use irs_crypto::{Digest, Keypair};

    fn ledger() -> Ledger {
        Ledger::new(
            LedgerConfig::new(LedgerId(1)),
            TimestampAuthority::from_seed(1),
        )
    }

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    fn claim_one(l: &mut Ledger, seed: u8) -> (RecordId, Keypair) {
        let keypair = kp(seed);
        let req = ClaimRequest::create(&keypair, &Digest::of(&[seed]));
        match l.handle(Request::Claim(req), TimeMs(10)) {
            Response::Claimed { id, .. } => (id, keypair),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn claim_query_revoke_flow() {
        let mut l = ledger();
        let (id, keypair) = claim_one(&mut l, 1);
        match l.handle(Request::Query { id }, TimeMs(20)) {
            Response::Status { status, epoch, .. } => {
                assert_eq!(status, RevocationStatus::NotRevoked);
                assert_eq!(epoch, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let rv = RevokeRequest::create(&keypair, id, true, 0);
        match l.handle(Request::Revoke(rv), TimeMs(30)) {
            Response::RevokeAck { status, epoch, .. } => {
                assert_eq!(status, RevocationStatus::Revoked);
                assert_eq!(epoch, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.stats.claims, 1);
        assert_eq!(l.stats.queries, 1);
        assert_eq!(l.stats.revokes, 1);
    }

    #[test]
    fn unknown_record_errors() {
        let mut l = ledger();
        let id = RecordId::new(LedgerId(1), 404);
        match l.handle(Request::Query { id }, TimeMs(1)) {
            Response::Error { code, .. } => assert_eq!(code, codes::UNKNOWN_RECORD),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_batch_yields_empty_status_list() {
        let mut l = ledger();
        match l.handle(Request::Batch(Vec::new()), TimeMs(1)) {
            Response::BatchStatus(items) => assert!(items.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.stats.batch_items, 0);
    }

    #[test]
    fn batch_answers_duplicates_positionally() {
        // A proxy that doesn't dedup may repeat an id; each occurrence
        // gets its own slot in the reply, in request order.
        let mut l = ledger();
        let (id, keypair) = claim_one(&mut l, 3);
        let rv = RevokeRequest::create(&keypair, id, true, 0);
        let Response::RevokeAck { .. } = l.handle(Request::Revoke(rv), TimeMs(5)) else {
            panic!("revoke failed");
        };
        let unknown = RecordId::new(LedgerId(1), 404);
        let batch = vec![id, unknown, id];
        match l.handle(Request::Batch(batch.clone()), TimeMs(10)) {
            Response::BatchStatus(items) => {
                assert_eq!(
                    items.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
                    batch,
                    "reply order must mirror request order, duplicates included"
                );
                assert_eq!(items[0].1, RevocationStatus::Revoked);
                // Unknown ids fail open.
                assert_eq!(items[1].1, RevocationStatus::NotRevoked);
                assert_eq!(items[2].1, RevocationStatus::Revoked);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.stats.batch_items, 3);
    }

    #[test]
    fn non_revocable_policy_refuses_revocation_but_allows_unrevoke() {
        let mut cfg = LedgerConfig::new(LedgerId(2));
        cfg.policy = LedgerPolicy::NonRevocable;
        let mut l = Ledger::new(cfg, TimestampAuthority::from_seed(2));
        let keypair = kp(9);
        let req = ClaimRequest::create(&keypair, &Digest::of(b"evidence"));
        let Response::Claimed { id, .. } = l.handle(Request::Claim(req), TimeMs(1)) else {
            panic!("claim failed");
        };
        let rv = RevokeRequest::create(&keypair, id, true, 0);
        match l.handle(Request::Revoke(rv), TimeMs(2)) {
            Response::Error { code, .. } => assert_eq!(code, codes::POLICY),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn proof_issuance_and_verification() {
        let mut l = ledger();
        let (id, _) = claim_one(&mut l, 3);
        match l.handle(Request::GetProof { id }, TimeMs(1_000)) {
            Response::Proof(p) => {
                assert!(p.verify(&l.public_key(), TimeMs(2_000)));
                assert_eq!(p.status, RevocationStatus::NotRevoked);
                assert_eq!(p.id, id);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.stats.proofs, 1);
    }

    #[test]
    fn batch_query() {
        let mut l = ledger();
        let (a, keypair) = claim_one(&mut l, 4);
        let (b, _) = claim_one(&mut l, 5);
        let rv = RevokeRequest::create(&keypair, a, true, 0);
        l.handle(Request::Revoke(rv), TimeMs(5));
        let unknown = RecordId::new(LedgerId(1), 77);
        match l.handle(Request::Batch(vec![a, b, unknown]), TimeMs(6)) {
            Response::BatchStatus(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0], (a, RevocationStatus::Revoked));
                assert_eq!(items[1], (b, RevocationStatus::NotRevoked));
                assert_eq!(items[2], (unknown, RevocationStatus::NotRevoked));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.stats.batch_items, 3);
    }

    #[test]
    fn filter_publication_full_then_delta() {
        let mut l = ledger();
        let (id_a, kp_a) = claim_one(&mut l, 6);
        let rv = RevokeRequest::create(&kp_a, id_a, true, 0);
        l.handle(Request::Revoke(rv), TimeMs(5));
        let mut publisher = FilterPublisher::new();
        let first = publisher.publish(&mut l);
        assert!(matches!(first, FilterUpdate::Full { version: 1, .. }));
        let (id_b, kp_b) = claim_one(&mut l, 7);
        let rv = RevokeRequest::create(&kp_b, id_b, true, 0);
        l.handle(Request::Revoke(rv), TimeMs(6));
        let second = publisher.publish(&mut l);
        match second {
            FilterUpdate::Delta {
                from_version,
                to_version,
                data,
                full_bytes,
            } => {
                assert_eq!((from_version, to_version), (1, 2));
                assert!(
                    data.len() < full_bytes,
                    "delta {} should be smaller than full {}",
                    data.len(),
                    full_bytes
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wire_filter_request() {
        let mut l = ledger();
        let (id, kp) = claim_one(&mut l, 8);
        let rv = RevokeRequest::create(&kp, id, true, 0);
        l.handle(Request::Revoke(rv), TimeMs(1));
        // Before publication: error.
        match l.handle(Request::GetFilter { have_version: 0 }, TimeMs(1)) {
            Response::Error { code, .. } => assert_eq!(code, codes::BAD_REQUEST),
            other => panic!("unexpected {other:?}"),
        }
        l.publish_filter();
        match l.handle(Request::GetFilter { have_version: 0 }, TimeMs(2)) {
            Response::FilterFull { version, data } => {
                assert_eq!(version, 1);
                let f = BloomFilter::from_bytes(data).unwrap();
                assert_eq!(f.inserted(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Up-to-date requester gets an (empty) delta.
        match l.handle(Request::GetFilter { have_version: 1 }, TimeMs(3)) {
            Response::FilterDelta {
                from_version,
                to_version,
                ..
            } => assert_eq!((from_version, to_version), (1, 1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wire_tiered_filter_flow() {
        use irs_filters::{Filter, TieredFilter};
        let mut l = ledger();
        let (id, kp) = claim_one(&mut l, 20);
        let rv = RevokeRequest::create(&kp, id, true, 0);
        l.handle(Request::Revoke(rv), TimeMs(1));
        // Before publication: error, exactly like the legacy path.
        match l.handle(
            Request::GetFilterTiered {
                have_epoch: 0,
                have_version: 0,
            },
            TimeMs(1),
        ) {
            Response::Error { code, .. } => assert_eq!(code, codes::BAD_REQUEST),
            other => panic!("unexpected {other:?}"),
        }
        l.publish_filter();
        // Bootstrap requester: full tiered install (no epoch sealed yet,
        // so the base blob is empty and the delta answers the key).
        let tier = match l.handle(
            Request::GetFilterTiered {
                have_epoch: 0,
                have_version: 0,
            },
            TimeMs(2),
        ) {
            Response::FilterTiered {
                epoch,
                base,
                delta_version,
                delta,
            } => {
                assert_eq!(epoch, 1, "no compaction has sealed a base yet");
                assert!(base.is_empty());
                TieredFilter::from_wire(epoch, &base, delta_version, delta).unwrap()
            }
            other => panic!("unexpected {other:?}"),
        };
        assert!(tier.contains(id.filter_key()));
        // Up-to-date requester: empty delta, version unchanged.
        match l.handle(
            Request::GetFilterTiered {
                have_epoch: tier.epoch(),
                have_version: tier.delta_version(),
            },
            TimeMs(3),
        ) {
            Response::FilterDelta {
                from_version,
                to_version,
                ..
            } => assert_eq!(from_version, to_version),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.stats.filters_tiered, 1);
        assert_eq!(l.stats.filters_delta, 1);
    }

    #[test]
    fn tiered_compaction_rolls_epoch_through_publication() {
        use irs_filters::{Filter, Fuse8};
        let mut cfg = LedgerConfig::new(LedgerId(3));
        cfg.tiered = TieredConfig {
            delta_capacity: 64,
            delta_fpr: 1e-3,
            compact_at: 4,
        };
        let mut l = Ledger::new(cfg, TimestampAuthority::from_seed(3));
        let mut keys = Vec::new();
        for seed in 30..38u8 {
            let (id, keypair) = claim_one(&mut l, seed);
            let rv = RevokeRequest::create(&keypair, id, true, 0);
            l.handle(Request::Revoke(rv), TimeMs(2));
            keys.push(id.filter_key());
        }
        // 8 delta keys ≥ compact_at=4: the publish seals epoch 2.
        l.publish_filter();
        assert_eq!(l.tiered_epoch(), 2);
        // A client that followed epoch 1 gets just the sealed base…
        match l.handle(
            Request::GetFilterTiered {
                have_epoch: 1,
                have_version: 0,
            },
            TimeMs(3),
        ) {
            Response::FilterBase { epoch, data } => {
                assert_eq!(epoch, 2);
                let base = Fuse8::from_bytes(data).unwrap();
                for &k in &keys {
                    assert!(base.contains(k), "sealed base lost a revoked key");
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.stats.filters_base, 1);
    }

    #[test]
    fn custodial_and_revoked_claims() {
        let mut l = ledger();
        let keypair = kp(11);
        let req = ClaimRequest::create(&keypair, &Digest::of(b"upload"));
        let (id, _) = l.claim_custodial(req, TimeMs(1));
        assert_eq!(
            l.store().get(&id).unwrap().origin,
            crate::store::ClaimOrigin::Custodial
        );
        let req2 = ClaimRequest::create(&kp(12), &Digest::of(b"auto"));
        let (id2, _) = l.claim_revoked(req2, TimeMs(2));
        assert_eq!(l.store().status(&id2), Some((RevocationStatus::Revoked, 0)));
    }

    #[test]
    fn ping_pong() {
        let mut l = ledger();
        assert_eq!(l.handle(Request::Ping, TimeMs(0)), Response::Pong);
    }
}
