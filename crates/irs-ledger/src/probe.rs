//! Owner-side ledger probing (§5).
//!
//! "The automated software that claims photos on behalf of owners could
//! periodically send probes to ledgers to ensure that they are being
//! answered correctly." The [`Prober`] claims canary records, toggles
//! their revocation state, and checks that public queries reflect the
//! change; discrepancies feed a reputation score that a browser vendor or
//! rating service would publish ("one counts on reputational effects").

use crate::adversarial::AdversarialLedger;
use irs_core::claim::{ClaimRequest, RevocationStatus, RevokeRequest};
use irs_core::ids::RecordId;
use irs_core::time::TimeMs;
use irs_core::wire::{Request, Response};
use irs_crypto::{Digest, Keypair};

/// One probe's result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeResult {
    /// Ledger answered consistently with the probe's expectations.
    Consistent,
    /// Ledger reported a status that contradicts the probe state.
    WrongStatus {
        /// What the prober expected.
        expected: RevocationStatus,
        /// What the ledger answered.
        got: RevocationStatus,
    },
    /// Ledger did not answer (or errored).
    NoAnswer,
}

/// Probes a ledger with canary records and accumulates a reputation score.
pub struct Prober {
    canary_seed: u64,
    canaries: Vec<(RecordId, Keypair, RevocationStatus, u64)>,
    /// Probes that came back consistent.
    pub consistent: u64,
    /// Probes that revealed misbehavior.
    pub inconsistent: u64,
    /// Probes that got no answer.
    pub unanswered: u64,
}

impl Prober {
    /// Create a prober; `seed` derives canary keys deterministically.
    pub fn new(seed: u64) -> Prober {
        Prober {
            canary_seed: seed,
            canaries: Vec::new(),
            consistent: 0,
            inconsistent: 0,
            unanswered: 0,
        }
    }

    /// Plant a canary: claim a synthetic record the prober controls.
    pub fn plant_canary(&mut self, ledger: &mut AdversarialLedger, now: TimeMs) -> bool {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&self.canary_seed.to_le_bytes());
        seed[8..16].copy_from_slice(&(self.canaries.len() as u64).to_le_bytes());
        seed[16..24].copy_from_slice(b"CANARY!!");
        let kp = Keypair::from_seed(&seed);
        let digest = Digest::of(&seed); // synthetic "photo"
        let req = ClaimRequest::create(&kp, &digest);
        match ledger.handle(Request::Claim(req), now) {
            Some(Response::Claimed { id, .. }) => {
                self.canaries
                    .push((id, kp, RevocationStatus::NotRevoked, 0));
                true
            }
            _ => {
                self.unanswered += 1;
                false
            }
        }
    }

    /// Number of planted canaries.
    pub fn canary_count(&self) -> usize {
        self.canaries.len()
    }

    /// Run one probe round: toggle each canary's revocation and verify the
    /// public answer reflects it. Returns per-canary results.
    pub fn probe_round(&mut self, ledger: &mut AdversarialLedger, now: TimeMs) -> Vec<ProbeResult> {
        let mut results = Vec::with_capacity(self.canaries.len());
        for (id, kp, expected, epoch) in self.canaries.iter_mut() {
            // Toggle.
            let target = !matches!(*expected, RevocationStatus::Revoked);
            let rv = RevokeRequest::create(kp, *id, target, *epoch);
            match ledger.handle(Request::Revoke(rv), now) {
                Some(Response::RevokeAck {
                    epoch: new_epoch, ..
                }) => {
                    *epoch = new_epoch;
                    *expected = if target {
                        RevocationStatus::Revoked
                    } else {
                        RevocationStatus::NotRevoked
                    };
                }
                _ => {
                    results.push(ProbeResult::NoAnswer);
                    self.unanswered += 1;
                    continue;
                }
            }
            // Verify through the public query path.
            match ledger.handle(Request::Query { id: *id }, now) {
                Some(Response::Status { status, .. }) => {
                    if status == *expected {
                        results.push(ProbeResult::Consistent);
                        self.consistent += 1;
                    } else {
                        results.push(ProbeResult::WrongStatus {
                            expected: *expected,
                            got: status,
                        });
                        self.inconsistent += 1;
                    }
                }
                _ => {
                    results.push(ProbeResult::NoAnswer);
                    self.unanswered += 1;
                }
            }
        }
        results
    }

    /// Reputation in [0, 1]: fraction of answered probes that were
    /// consistent (1.0 when nothing observed yet).
    pub fn reputation(&self) -> f64 {
        let total = self.consistent + self.inconsistent + self.unanswered;
        if total == 0 {
            return 1.0;
        }
        self.consistent as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversarial::Misbehavior;
    use crate::service::{Ledger, LedgerConfig};
    use irs_core::ids::LedgerId;
    use irs_core::tsa::TimestampAuthority;

    fn wrapped(m: Misbehavior) -> AdversarialLedger {
        AdversarialLedger::new(
            Ledger::new(
                LedgerConfig::new(LedgerId(1)),
                TimestampAuthority::from_seed(1),
            ),
            m,
        )
    }

    #[test]
    fn honest_ledger_scores_high() {
        let mut ledger = wrapped(Misbehavior::None);
        let mut prober = Prober::new(1);
        for _ in 0..3 {
            assert!(prober.plant_canary(&mut ledger, TimeMs(10)));
        }
        for round in 0..5u64 {
            let results = prober.probe_round(&mut ledger, TimeMs(100 + round * 100));
            assert!(results.iter().all(|r| *r == ProbeResult::Consistent));
        }
        assert_eq!(prober.reputation(), 1.0);
    }

    #[test]
    fn lying_ledger_detected() {
        let mut ledger = wrapped(Misbehavior::LieNotRevoked);
        let mut prober = Prober::new(2);
        prober.plant_canary(&mut ledger, TimeMs(10));
        let results = prober.probe_round(&mut ledger, TimeMs(100));
        // First toggle revokes; liar answers NotRevoked → caught.
        assert!(matches!(
            results[0],
            ProbeResult::WrongStatus {
                expected: RevocationStatus::Revoked,
                got: RevocationStatus::NotRevoked
            }
        ));
        assert!(prober.reputation() < 1.0);
    }

    #[test]
    fn revocation_dropper_detected() {
        let mut ledger = wrapped(Misbehavior::DropRevocations);
        let mut prober = Prober::new(3);
        prober.plant_canary(&mut ledger, TimeMs(10));
        let results = prober.probe_round(&mut ledger, TimeMs(100));
        assert!(matches!(results[0], ProbeResult::WrongStatus { .. }));
    }

    #[test]
    fn unresponsive_ledger_counted() {
        let mut ledger = wrapped(Misbehavior::DropEvery { n: 1 }); // drop all
        let mut prober = Prober::new(4);
        assert!(!prober.plant_canary(&mut ledger, TimeMs(10)));
        assert_eq!(prober.unanswered, 1);
        assert!(prober.reputation() < 1.0);
    }

    #[test]
    fn reputation_degrades_with_misbehavior_rate() {
        // A ledger that drops every 5th request scores between the honest
        // one and the always-lying one (the liar alternates caught/uncaught
        // as the probe toggles, landing at reputation ≈ 0.5).
        let mut honest_p = Prober::new(5);
        let mut ledger = wrapped(Misbehavior::None);
        honest_p.plant_canary(&mut ledger, TimeMs(1));
        for r in 0..10u64 {
            honest_p.probe_round(&mut ledger, TimeMs(10 + r));
        }

        let mut flaky_p = Prober::new(6);
        let mut flaky = wrapped(Misbehavior::DropEvery { n: 5 });
        flaky_p.plant_canary(&mut flaky, TimeMs(1));
        for r in 0..10u64 {
            flaky_p.probe_round(&mut flaky, TimeMs(10 + r));
        }

        let mut liar_p = Prober::new(7);
        let mut liar = wrapped(Misbehavior::LieNotRevoked);
        liar_p.plant_canary(&mut liar, TimeMs(1));
        for r in 0..10u64 {
            liar_p.probe_round(&mut liar, TimeMs(10 + r));
        }

        assert!(honest_p.reputation() > flaky_p.reputation());
        assert!(flaky_p.reputation() > liar_p.reputation());
    }
}
