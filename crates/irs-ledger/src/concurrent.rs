//! Shared-nothing-as-possible ledger service: the `&self` counterpart
//! of [`crate::Ledger`], built on [`ShardedLedgerStore`].
//!
//! Connection threads call [`ConcurrentLedger::handle`] directly — no
//! whole-service mutex. Striped record state lives in the store;
//! service-level state is either immutable (keys, config), atomic
//! (request counters), or a read-mostly snapshot pair behind a brief
//! `RwLock` (published filters: projection happens *off* the lock,
//! only the pointer rotation holds it).

use crate::codes;
use crate::disk::Disk;
use crate::placement::ShardDirectory;
use crate::recovery::{self, RecoveryError, RecoveryReport};
use crate::replication::{ApplyError, ReplicationLog, ReplicationPolicy, DEFAULT_RETAIN_FRAMES};
use crate::sharded::{ShardedLedgerStore, DEFAULT_SHARDS};
use crate::snapshot::encode_snapshot;
use crate::store::{ClaimOrigin, StoreError, StoredClaim};
use crate::wal::{AppendReceipt, FsyncPolicy, WalError, WalRecord, WalStats, WalWriter};
use crate::{Ledger, LedgerConfig, LedgerPolicy, LedgerStats};
use irs_core::claim::Claim;
use irs_core::claim::{ClaimRequest, RevocationStatus, RevokeRequest};
use irs_core::freshness::FreshnessProof;
use irs_core::ids::{LedgerId, RecordId};
use irs_core::time::TimeMs;
use irs_core::tsa::{TimestampAuthority, TimestampToken};
use irs_core::wire::{Request, Response};
use irs_crypto::{Keypair, PublicKey};
use irs_filters::delta::BloomDelta;
use irs_filters::{BloomFilter, CountingBloom, TieredPublisher, TieredServe, TieredSnapshot};
use irs_obs::{Counter, Gauge, Histogram, Registry, SpanRecorder};
use parking_lot::{Mutex, RwLock};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use std::time::Instant;

/// File name of the write-ahead log inside the [`Disk`] namespace.
pub const WAL_PATH: &str = "ledger.wal";
/// File name of the snapshot inside the [`Disk`] namespace.
pub const SNAPSHOT_PATH: &str = "ledger.snap";

/// One published filter version.
#[derive(Clone, Debug)]
struct Snapshot {
    version: u64,
    filter: BloomFilter,
}

#[derive(Default)]
struct SnapshotPair {
    current: Option<Arc<Snapshot>>,
    /// Previous version, retained so requesters one behind get a delta.
    previous: Option<Arc<Snapshot>>,
}

/// The ledger's observability surface: the [`LedgerStats`] counters as
/// sharded [`Counter`]s in a [`Registry`], plus durability gauges and
/// latency histograms for the persistence path. The handles are cached
/// here so the request path never takes the registry's name lock.
struct LedgerObs {
    registry: Arc<Registry>,
    /// Misrouted keyed requests refused with `WrongShard`.
    wrong_shard: Counter,
    queries: Counter,
    batch_items: Counter,
    claims: Counter,
    revokes: Counter,
    filters_full: Counter,
    filters_delta: Counter,
    /// Sealed fuse bases served (tiered pipeline, epoch roll).
    filters_base: Counter,
    /// Full tiered installs served (bootstrap or multi-epoch lag).
    filters_tiered: Counter,
    proofs: Counter,
    /// Committed records (refreshed on scrape).
    records: Gauge,
    /// Published filter version (refreshed on scrape).
    filter_version: Gauge,
    /// Tiered epoch (refreshed on scrape).
    tiered_epoch: Gauge,
    /// 1 when a WAL is attached, 0 for a memory-only ledger.
    durable: Gauge,
    /// Wall time of one durable apply (shard write + WAL append + commit).
    durable_apply_us: Histogram,
    /// Wall time of one full checkpoint.
    snapshot_us: Histogram,
}

impl LedgerObs {
    fn new() -> LedgerObs {
        let registry = Arc::new(Registry::new());
        LedgerObs {
            wrong_shard: registry.counter("irs_ledger_wrong_shard_total"),
            queries: registry.counter("irs_ledger_queries_total"),
            batch_items: registry.counter("irs_ledger_batch_items_total"),
            claims: registry.counter("irs_ledger_claims_total"),
            revokes: registry.counter("irs_ledger_revokes_total"),
            filters_full: registry.counter("irs_ledger_filters_full_total"),
            filters_delta: registry.counter("irs_ledger_filters_delta_total"),
            filters_base: registry.counter("irs_ledger_filters_base_total"),
            filters_tiered: registry.counter("irs_ledger_filters_tiered_total"),
            proofs: registry.counter("irs_ledger_proofs_total"),
            records: registry.gauge("irs_ledger_records"),
            filter_version: registry.gauge("irs_ledger_filter_version"),
            tiered_epoch: registry.gauge("irs_ledger_tiered_epoch"),
            durable: registry.gauge("irs_ledger_durable"),
            durable_apply_us: registry.histogram("irs_ledger_durable_apply_us"),
            snapshot_us: registry.histogram("irs_ledger_snapshot_us"),
            registry,
        }
    }

    fn stats_snapshot(&self) -> LedgerStats {
        LedgerStats {
            queries: self.queries.get(),
            batch_items: self.batch_items.get(),
            claims: self.claims.get(),
            revokes: self.revokes.get(),
            filters_full: self.filters_full.get(),
            filters_delta: self.filters_delta.get(),
            filters_base: self.filters_base.get(),
            filters_tiered: self.filters_tiered.get(),
            proofs: self.proofs.get(),
        }
    }

    fn preload(&self, stats: LedgerStats) {
        self.queries.add(stats.queries);
        self.batch_items.add(stats.batch_items);
        self.claims.add(stats.claims);
        self.revokes.add(stats.revokes);
        self.filters_full.add(stats.filters_full);
        self.filters_delta.add(stats.filters_delta);
        self.filters_base.add(stats.filters_base);
        self.filters_tiered.add(stats.filters_tiered);
        self.proofs.add(stats.proofs);
    }
}

/// How a durable ledger persists: where, how eagerly, and how often it
/// checkpoints.
#[derive(Clone)]
pub struct DurabilityConfig {
    /// Storage backend ([`crate::StdDisk`] in production,
    /// [`crate::ChaosDisk`] in crash experiments).
    pub disk: Arc<dyn Disk>,
    /// When acknowledgements imply an fsync.
    pub fsync: FsyncPolicy,
    /// Snapshot (and truncate the log) after this many logged operations;
    /// `None` disables automatic snapshots ([`ConcurrentLedger::snapshot_now`]
    /// still works).
    pub snapshot_every: Option<u64>,
    /// When acknowledgements additionally wait on follower replication
    /// (see [`ReplicationPolicy`]).
    pub replication: ReplicationPolicy,
}

impl DurabilityConfig {
    /// Durability on `disk` with the given fsync policy, no automatic
    /// snapshots, and local-only replication.
    pub fn new(disk: Arc<dyn Disk>, fsync: FsyncPolicy) -> DurabilityConfig {
        DurabilityConfig {
            disk,
            fsync,
            snapshot_every: None,
            replication: ReplicationPolicy::LocalOnly,
        }
    }
}

/// The live durability state of a [`ConcurrentLedger`].
pub struct Durability {
    wal: WalWriter,
    disk: Arc<dyn Disk>,
    snapshot_every: Option<u64>,
    ops_since_snapshot: AtomicU64,
    /// Guards against concurrent automatic snapshots; requests that lose
    /// the race skip (the winner's snapshot covers their operations).
    snapshotting: AtomicBool,
    /// Shipped-frame retention + follower-ack gate.
    replication: Arc<ReplicationLog>,
    replication_policy: ReplicationPolicy,
}

impl Durability {
    /// WAL activity counters (appends, fsyncs, piggybacked commits).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Current WAL `(generation, byte length)`.
    pub fn wal_position(&self) -> (u64, u64) {
        self.wal.position()
    }

    /// The replication log followers tail (tests observe acks through it).
    pub fn replication(&self) -> &Arc<ReplicationLog> {
        &self.replication
    }

    /// Highest sequence number safe to ship to a follower.
    pub fn replicable_seq(&self) -> u64 {
        self.wal.replicable_seq()
    }
}

/// A ledger whose entire request path is `&self`: safe to share across
/// connection threads behind a plain `Arc`.
pub struct ConcurrentLedger {
    config: LedgerConfig,
    store: ShardedLedgerStore,
    signing_key: Keypair,
    tsa_key: PublicKey,
    snapshots: RwLock<SnapshotPair>,
    /// The tiered publication state machine. Publishes (including the
    /// expensive fuse construction at compaction) hold only this mutex;
    /// serving never does.
    tiered: Mutex<TieredPublisher>,
    /// The publication serves read: an `Arc` rotated under a brief write
    /// lock after each publish, cloned out under a brief read lock.
    tiered_snap: RwLock<Arc<TieredSnapshot>>,
    obs: LedgerObs,
    durability: Option<Durability>,
    recovery_report: Option<RecoveryReport>,
    /// The shard this ledger serves plus its view of the placement
    /// (DESIGN.md §15). Unset on unsharded deployments — every guard
    /// below is then a no-op, so single-shard behavior is unchanged.
    shard_dir: OnceLock<Arc<ShardDirectory>>,
}

impl ConcurrentLedger {
    /// Create a fresh concurrent ledger with [`DEFAULT_SHARDS`] stripes.
    pub fn new(config: LedgerConfig, tsa: TimestampAuthority) -> ConcurrentLedger {
        ConcurrentLedger::with_shards(config, tsa, DEFAULT_SHARDS)
    }

    /// Create with an explicit stripe count (the E15 scaling experiment
    /// sweeps this).
    pub fn with_shards(
        config: LedgerConfig,
        tsa: TimestampAuthority,
        num_shards: usize,
    ) -> ConcurrentLedger {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&config.seed.to_le_bytes());
        seed[8..16].copy_from_slice(b"IRSLEDGR");
        let tsa_key = tsa.public_key();
        let tiered = TieredPublisher::new(config.tiered).expect("valid tiered filter config");
        let tiered_snap = RwLock::new(tiered.snapshot());
        ConcurrentLedger {
            store: ShardedLedgerStore::new(config.id, tsa, config.filter_capacity, num_shards),
            signing_key: Keypair::from_seed(&seed),
            tsa_key,
            snapshots: RwLock::new(SnapshotPair::default()),
            tiered: Mutex::new(tiered),
            tiered_snap,
            obs: LedgerObs::new(),
            config,
            durability: None,
            recovery_report: None,
            shard_dir: OnceLock::new(),
        }
    }

    /// Open a durable ledger: recover whatever state the disk holds
    /// (snapshot + WAL tail replay, see [`crate::recovery`]), then attach
    /// a write-ahead log so every further mutation is persisted before it
    /// is acknowledged. A fresh disk recovers to an empty ledger; a
    /// corrupt one refuses to start (fail closed).
    pub fn recover(
        config: LedgerConfig,
        tsa: TimestampAuthority,
        num_shards: usize,
        durability: DurabilityConfig,
    ) -> Result<ConcurrentLedger, RecoveryError> {
        let state = recovery::recover(&durability.disk, WAL_PATH, SNAPSHOT_PATH, config.id)?;
        let store = ShardedLedgerStore::from_parts(
            config.id,
            tsa.clone(),
            state.records,
            config.filter_capacity,
            num_shards,
        );
        let wal = WalWriter::open(
            durability.disk.clone(),
            WAL_PATH,
            config.id,
            durability.fsync,
        )?;
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&config.seed.to_le_bytes());
        seed[8..16].copy_from_slice(b"IRSLEDGR");
        let tsa_key = tsa.public_key();
        let obs = LedgerObs::new();
        let replication = Arc::new(ReplicationLog::new(
            wal.last_seq() + 1,
            DEFAULT_RETAIN_FRAMES,
            &obs.registry,
        ));
        let tiered = TieredPublisher::new(config.tiered).expect("valid tiered filter config");
        let tiered_snap = RwLock::new(tiered.snapshot());
        Ok(ConcurrentLedger {
            store,
            signing_key: Keypair::from_seed(&seed),
            tsa_key,
            snapshots: RwLock::new(SnapshotPair::default()),
            tiered: Mutex::new(tiered),
            tiered_snap,
            obs,
            config,
            durability: Some(Durability {
                wal,
                disk: durability.disk,
                snapshot_every: durability.snapshot_every,
                ops_since_snapshot: AtomicU64::new(0),
                snapshotting: AtomicBool::new(false),
                replication,
                replication_policy: durability.replication,
            }),
            recovery_report: Some(state.report),
            shard_dir: OnceLock::new(),
        })
    }

    /// Promote a single-threaded [`Ledger`] (records, published
    /// snapshots, and stats carry over; signing keys are identical
    /// because both derive from the config seed).
    pub(crate) fn from_ledger(ledger: Ledger, num_shards: usize) -> ConcurrentLedger {
        let (config, store, signing_key, tsa_key, published, tiered, stats) = ledger.into_parts();
        let (id, tsa, records) = store.into_parts();
        let sharded =
            ShardedLedgerStore::from_parts(id, tsa, records, config.filter_capacity, num_shards);
        let pair = SnapshotPair {
            current: published
                .0
                .map(|(version, filter)| Arc::new(Snapshot { version, filter })),
            previous: published
                .1
                .map(|(version, filter)| Arc::new(Snapshot { version, filter })),
        };
        let tiered_snap = RwLock::new(tiered.snapshot());
        let concurrent = ConcurrentLedger {
            config,
            store: sharded,
            signing_key,
            tsa_key,
            snapshots: RwLock::new(pair),
            tiered: Mutex::new(tiered),
            tiered_snap,
            obs: LedgerObs::new(),
            durability: None,
            recovery_report: None,
            shard_dir: OnceLock::new(),
        };
        concurrent.obs.preload(stats);
        concurrent
    }

    /// This ledger's identifier.
    pub fn id(&self) -> LedgerId {
        self.config.id
    }

    /// The key proofs are signed with.
    pub fn public_key(&self) -> PublicKey {
        self.signing_key.public
    }

    /// The timestamp authority key claims are stamped with.
    pub fn tsa_key(&self) -> PublicKey {
        self.tsa_key
    }

    /// The striped store (experiments, appeals, probes).
    pub fn store(&self) -> &ShardedLedgerStore {
        &self.store
    }

    /// A point-in-time copy of the request counters.
    pub fn stats(&self) -> LedgerStats {
        self.obs.stats_snapshot()
    }

    /// The metrics registry (counters, durability gauges, histograms).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.obs.registry
    }

    /// Render the metrics exposition, refreshing the point-in-time
    /// gauges (record count, published filter version, durability flag)
    /// first. This is what [`Request::Metrics`] answers with.
    pub fn metrics_text(&self) -> String {
        self.obs.records.set(self.store.len() as u64);
        self.obs.filter_version.set(self.filter_version());
        self.obs.tiered_epoch.set(self.tiered_epoch());
        self.obs.durable.set(self.durability.is_some() as u64);
        self.obs.registry.render()
    }

    /// Handle one wire request at the given time. `&self`: any number of
    /// connection threads may call this concurrently.
    pub fn handle(&self, request: Request, now: TimeMs) -> Response {
        self.handle_traced(request, now, None)
    }

    /// [`handle`](Self::handle) with an optional span recorder: the
    /// durable apply and checkpoint paths record `ledger:wal` /
    /// `ledger:snapshot` spans into it.
    pub fn handle_traced(
        &self,
        request: Request,
        now: TimeMs,
        trace: Option<&Arc<SpanRecorder>>,
    ) -> Response {
        if let Some(refusal) = self.shard_guard(&request) {
            return refusal;
        }
        match request {
            Request::Claim(req) => {
                self.obs.claims.inc();
                match self.durable_claim_traced(req, ClaimOrigin::Owner, false, now, trace) {
                    Ok((id, timestamp)) => Response::Claimed { id, timestamp },
                    Err(_) => err(codes::STORAGE, "durable log write failed"),
                }
            }
            Request::Query { id } => {
                self.obs.queries.inc();
                match self.store.status(&id) {
                    Some((status, epoch)) => Response::Status { id, status, epoch },
                    None => err(codes::UNKNOWN_RECORD, "unknown record"),
                }
            }
            Request::Revoke(req) => {
                if self.config.policy == LedgerPolicy::NonRevocable && req.revoke {
                    return err(codes::POLICY, "this ledger does not allow revocation");
                }
                self.obs.revokes.inc();
                match self.durable_revoke_traced(&req, trace) {
                    Err(_) => err(codes::STORAGE, "durable log write failed"),
                    Ok(Ok((status, epoch))) => Response::RevokeAck {
                        id: req.id,
                        status,
                        epoch,
                    },
                    Ok(Err(StoreError::UnknownRecord)) => {
                        err(codes::UNKNOWN_RECORD, "unknown record")
                    }
                    Ok(Err(StoreError::BadSignature)) => err(codes::BAD_SIGNATURE, "bad signature"),
                    Ok(Err(StoreError::StaleEpoch)) => err(codes::STALE_EPOCH, "stale epoch"),
                    // Only the follower apply path can produce this.
                    Ok(Err(StoreError::DuplicateSerial)) => err(codes::STORAGE, "duplicate serial"),
                    Ok(Err(StoreError::Permanent)) => err(codes::POLICY, "permanently revoked"),
                }
            }
            Request::GetFilter { have_version } => self.serve_filter(have_version),
            Request::GetFilterTiered {
                have_epoch,
                have_version,
            } => self.serve_filter_tiered(have_epoch, have_version),
            Request::GetProof { id } => {
                self.obs.proofs.inc();
                match self.store.status(&id) {
                    Some((status, _)) => Response::Proof(self.issue_proof(id, status, now)),
                    None => err(codes::UNKNOWN_RECORD, "unknown record"),
                }
            }
            Request::Metrics => Response::MetricsText(self.metrics_text()),
            Request::Batch(ids) => {
                self.obs.batch_items.add(ids.len() as u64);
                let items = ids
                    .into_iter()
                    .map(|id| {
                        let status = self
                            .store
                            .status(&id)
                            .map(|(s, _)| s)
                            // Fail open on unknown ids, as in `Ledger`.
                            .unwrap_or(RevocationStatus::NotRevoked);
                        (id, status)
                    })
                    .collect();
                Response::BatchStatus(items)
            }
            Request::Ping => Response::Pong,
            Request::WalSubscribe {
                from_seq,
                max_frames,
            } => self.serve_wal_subscribe(from_seq, max_frames),
            Request::FetchSnapshot => self.serve_replication_snapshot(),
            // Reached only without a directory: the guard above serves
            // the map whenever one is attached.
            Request::GetShardMap => err(codes::UNAVAILABLE, "this ledger has no shard directory"),
        }
    }

    /// Attach this server's shard identity + placement view. Callable
    /// once, before serving; returns `false` (and changes nothing) if a
    /// directory is already attached. Subsequent epoch bumps go through
    /// [`ShardDirectory::install`] on the shared handle.
    pub fn set_shard_directory(&self, dir: Arc<ShardDirectory>) -> bool {
        self.shard_dir.set(dir).is_ok()
    }

    /// The attached shard directory, if any.
    pub fn shard_directory(&self) -> Option<&Arc<ShardDirectory>> {
        self.shard_dir.get()
    }

    /// The placement guard (DESIGN.md §15): with a directory attached,
    /// answer `GetShardMap` from it and refuse keyed requests this
    /// shard does not own with `WrongShard { epoch }` — claims by
    /// rendezvous over the claim digest, record-keyed requests exactly
    /// by `RecordId::ledger`. Unkeyed requests (filters, metrics,
    /// replication, ping) always serve locally.
    fn shard_guard(&self, request: &Request) -> Option<Response> {
        let dir = self.shard_dir.get()?;
        if matches!(request, Request::GetShardMap) {
            let map = dir.current();
            return Some(Response::ShardMap {
                epoch: map.epoch(),
                data: map.to_bytes().into(),
            });
        }
        let own = dir.own()?;
        let misrouted = match request {
            Request::Claim(c) => dir.current().shard_for_claim(c).ledger != own,
            Request::Query { id } | Request::GetProof { id } => id.ledger != own,
            Request::Revoke(r) => r.id.ledger != own,
            Request::Batch(ids) => ids.iter().any(|id| id.ledger != own),
            _ => false,
        };
        if misrouted {
            self.obs.wrong_shard.inc();
            Some(Response::WrongShard { epoch: dir.epoch() })
        } else {
            None
        }
    }

    /// Serve one bounded batch of durable WAL frames to a polling
    /// follower. Polling `from_seq = n` doubles as the follower's
    /// acknowledgement of every sequence number below `n`.
    fn serve_wal_subscribe(&self, from_seq: u64, max_frames: u32) -> Response {
        let Some(d) = &self.durability else {
            return err(codes::UNAVAILABLE, "this ledger has no durable log");
        };
        d.replication.record_ack(from_seq.saturating_sub(1));
        let seg = d
            .replication
            .segment(from_seq, max_frames, d.wal.replicable_seq());
        Response::WalSegment {
            first_seq: seg.first_seq,
            durable_seq: seg.durable_seq,
            log_start_seq: seg.log_start_seq,
            frames: seg.frames,
        }
    }

    /// Serve a full state snapshot plus the sequence number it covers,
    /// for follower bootstrap.
    fn serve_replication_snapshot(&self) -> Response {
        match self.replication_snapshot() {
            Ok((seq, data)) => Response::Snapshot {
                seq,
                data: data.into(),
            },
            Err(_) => err(codes::UNAVAILABLE, "this ledger has no durable log"),
        }
    }

    /// Claim custodially (aggregator ingestion path).
    pub fn claim_custodial(
        &self,
        req: ClaimRequest,
        now: TimeMs,
    ) -> Result<(RecordId, TimestampToken), WalError> {
        self.obs.claims.inc();
        self.durable_claim_traced(req, ClaimOrigin::Custodial, false, now, None)
    }

    /// Claim with the "auto-register revoked" default.
    pub fn claim_revoked(
        &self,
        req: ClaimRequest,
        now: TimeMs,
    ) -> Result<(RecordId, TimestampToken), WalError> {
        self.obs.claims.inc();
        self.durable_claim_traced(req, ClaimOrigin::Owner, true, now, None)
    }

    /// Permanently revoke (appeals outcome), durably when a WAL is
    /// attached. The outer error is storage, the inner the store verdict.
    pub fn permanently_revoke(&self, id: &RecordId) -> Result<Result<(), StoreError>, WalError> {
        let Some(d) = &self.durability else {
            return Ok(self.store.permanently_revoke(id));
        };
        let rec = WalRecord::AppealPin { id: *id };
        let mut logged: Result<AppendReceipt, WalError> = Ok(AppendReceipt { lsn: 0, seq: 0 });
        let out = self.store.permanently_revoke_with(id, || {
            logged = d.wal.append(&rec);
            if let Ok(receipt) = &logged {
                d.replication.publish(receipt.seq, rec.encode_framed());
            }
        });
        let receipt = logged?;
        if out.is_ok() {
            d.wal.commit(receipt.lsn)?;
            self.maybe_snapshot(None);
            replication_gate(d, receipt.seq)?;
        }
        Ok(out)
    }

    /// Apply one record shipped from a primary (the follower apply
    /// path). Mirrors recovery's replay, but live: the primary's serial,
    /// origin, timestamp, status, and epoch are preserved exactly — a
    /// follower's state is byte-identical to the stream it applied — and
    /// the record is appended to the *local* WAL under the same shard
    /// lock that mutates the store, exactly like the primary path. The
    /// append is not committed here; callers batch one commit per
    /// segment via [`commit_replicated`](Self::commit_replicated).
    pub(crate) fn apply_replicated(&self, record: &WalRecord) -> Result<AppendReceipt, ApplyError> {
        let Some(d) = &self.durability else {
            return Err(ApplyError::Wal(WalError::Io(io::Error::other(
                "follower has no durable log",
            ))));
        };
        let mut logged: Result<AppendReceipt, WalError> = Ok(AppendReceipt { lsn: 0, seq: 0 });
        match record {
            WalRecord::Claim {
                serial,
                origin,
                initially_revoked,
                request,
                timestamp,
            } => {
                let id = RecordId::new(self.config.id, *serial);
                let status = if *initially_revoked {
                    RevocationStatus::Revoked
                } else {
                    RevocationStatus::NotRevoked
                };
                let stored = StoredClaim {
                    claim: Claim {
                        id,
                        request: *request,
                        timestamp: *timestamp,
                        status,
                        status_epoch: 0,
                    },
                    origin: *origin,
                };
                self.store.insert_replicated(stored, |_| {
                    logged = d.wal.append(record);
                    if let Ok(receipt) = &logged {
                        // Retained so a *promoted* follower can in turn
                        // serve followers of its own.
                        d.replication.publish(receipt.seq, record.encode_framed());
                    }
                })?;
            }
            WalRecord::Revoke(req) => {
                // Re-checks the epoch chain (and the signature, which the
                // primary verified before logging): any reordering the
                // framing checksums let through fails here, closed.
                self.store.apply_revoke_with(req, || {
                    logged = d.wal.append(record);
                    if let Ok(receipt) = &logged {
                        d.replication.publish(receipt.seq, record.encode_framed());
                    }
                })?;
            }
            WalRecord::AppealPin { id } => {
                self.store.permanently_revoke_with(id, || {
                    logged = d.wal.append(record);
                    if let Ok(receipt) = &logged {
                        d.replication.publish(receipt.seq, record.encode_framed());
                    }
                })?;
            }
        }
        logged.map_err(ApplyError::Wal)
    }

    /// Commit the local WAL through `lsn` (follower batch commit).
    pub(crate) fn commit_replicated(&self, lsn: u64) -> Result<(), WalError> {
        match &self.durability {
            Some(d) => d.wal.commit(lsn),
            None => Ok(()),
        }
    }

    /// Cut a follower-bootstrap snapshot: the full record set plus the
    /// sequence number it covers, captured under every shard lock so
    /// both describe the same instant (appends assign seqs under shard
    /// locks, so no in-flight record can fall between them). The
    /// encoding is anchored at `(generation 0, header offset)` — the
    /// follower re-anchors it to its own fresh WAL anyway.
    pub fn replication_snapshot(&self) -> Result<(u64, Vec<u8>), WalError> {
        let Some(d) = &self.durability else {
            return Err(WalError::Io(io::Error::other(
                "this ledger has no durable log",
            )));
        };
        let (records, seq) = self.store.frozen_copy(|| d.wal.last_seq());
        let mut filter = CountingBloom::for_capacity(self.config.filter_capacity, 0.02)
            .expect("valid filter params");
        for rec in &records {
            if rec.claim.status != RevocationStatus::NotRevoked {
                filter.insert(rec.claim.id.filter_key());
            }
        }
        let bytes = encode_snapshot(
            self.config.id,
            0,
            crate::wal::WAL_HEADER_LEN as u64,
            &records,
            &filter,
        );
        Ok((seq, bytes))
    }

    /// Claim, logging to the WAL from inside the shard write path when
    /// durability is on. The record is acknowledged only after
    /// [`WalWriter::commit`] returns per the fsync policy; if the log
    /// write fails, the claim stays in memory but is *not* acknowledged —
    /// exactly the promise recovery makes ("nothing acknowledged is
    /// lost"), from the other side.
    fn durable_claim_traced(
        &self,
        req: ClaimRequest,
        origin: ClaimOrigin,
        initially_revoked: bool,
        now: TimeMs,
        trace: Option<&Arc<SpanRecorder>>,
    ) -> Result<(RecordId, TimestampToken), WalError> {
        let Some(d) = &self.durability else {
            return Ok(self.store.claim(req, origin, initially_revoked, now));
        };
        let span = SpanRecorder::maybe(trace, "ledger:wal");
        let start = Instant::now();
        let mut logged: Result<AppendReceipt, WalError> = Ok(AppendReceipt { lsn: 0, seq: 0 });
        let (id, timestamp) =
            self.store
                .claim_with(req, origin, initially_revoked, now, |stored| {
                    let rec = WalRecord::Claim {
                        serial: stored.claim.id.serial,
                        origin: stored.origin,
                        initially_revoked: stored.claim.status != RevocationStatus::NotRevoked,
                        request: stored.claim.request,
                        timestamp: stored.claim.timestamp,
                    };
                    logged = d.wal.append(&rec);
                    if let Ok(receipt) = &logged {
                        d.replication.publish(receipt.seq, rec.encode_framed());
                    }
                });
        let commit = logged.and_then(|receipt| d.wal.commit(receipt.lsn).map(|()| receipt.seq));
        self.obs.durable_apply_us.record_since(start);
        span.verdict_result(&commit, "err");
        drop(span);
        let seq = commit?;
        self.maybe_snapshot(trace);
        replication_gate(d, seq)?;
        Ok((id, timestamp))
    }

    /// Revoke with WAL logging; only *accepted* revocations are logged
    /// (the hook runs after signature and epoch checks pass, under the
    /// shard lock).
    fn durable_revoke_traced(
        &self,
        req: &RevokeRequest,
        trace: Option<&Arc<SpanRecorder>>,
    ) -> Result<Result<(RevocationStatus, u64), StoreError>, WalError> {
        let Some(d) = &self.durability else {
            return Ok(self.store.apply_revoke(req));
        };
        let span = SpanRecorder::maybe(trace, "ledger:wal");
        let start = Instant::now();
        let rec = WalRecord::Revoke(*req);
        let mut logged: Result<AppendReceipt, WalError> = Ok(AppendReceipt { lsn: 0, seq: 0 });
        let out = self.store.apply_revoke_with(req, || {
            logged = d.wal.append(&rec);
            if let Ok(receipt) = &logged {
                d.replication.publish(receipt.seq, rec.encode_framed());
            }
        });
        let commit = if out.is_ok() {
            logged.and_then(|receipt| d.wal.commit(receipt.lsn).map(|()| receipt.seq))
        } else {
            logged.map(|receipt| receipt.seq)
        };
        self.obs.durable_apply_us.record_since(start);
        span.verdict_result(&commit, "err");
        drop(span);
        let seq = commit?;
        if out.is_ok() {
            self.maybe_snapshot(trace);
            replication_gate(d, seq)?;
        }
        Ok(out)
    }

    /// Count an operation toward the automatic-snapshot threshold and
    /// checkpoint when it trips. Best-effort: a failed snapshot leaves
    /// the WAL intact, so durability is unaffected (replay just stays
    /// longer).
    fn maybe_snapshot(&self, trace: Option<&Arc<SpanRecorder>>) {
        let Some(d) = &self.durability else { return };
        let Some(every) = d.snapshot_every else {
            return;
        };
        let n = d.ops_since_snapshot.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= every && !d.snapshotting.swap(true, Ordering::AcqRel) {
            d.ops_since_snapshot.store(0, Ordering::Relaxed);
            let span = SpanRecorder::maybe(trace, "ledger:snapshot");
            let result = self.snapshot_now();
            span.verdict_result(&result, "err");
            d.snapshotting.store(false, Ordering::Release);
        }
    }

    /// Write a checksummed snapshot of the full store atomically, then
    /// truncate the WAL to the frames after the cut. No-op without
    /// durability.
    pub fn snapshot_now(&self) -> Result<(), WalError> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        let start = Instant::now();
        // The cut: record copy and WAL position taken under every shard
        // lock, so they describe the same instant.
        let (records, (generation, offset)) = self.store.frozen_copy(|| d.wal.position());
        let mut filter = CountingBloom::for_capacity(self.config.filter_capacity, 0.02)
            .expect("valid filter params");
        for rec in &records {
            if rec.claim.status != RevocationStatus::NotRevoked {
                filter.insert(rec.claim.id.filter_key());
            }
        }
        let bytes = encode_snapshot(self.config.id, generation, offset, &records, &filter);
        d.disk.write_atomic(SNAPSHOT_PATH, &bytes)?;
        d.wal.rotate_at(offset)?;
        self.obs.snapshot_us.record_since(start);
        Ok(())
    }

    /// The durability subsystem, when attached.
    pub fn durability(&self) -> Option<&Durability> {
        self.durability.as_ref()
    }

    /// What the last [`recover`](Self::recover) found (None for ledgers
    /// created fresh).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery_report
    }

    /// Issue a signed freshness proof.
    pub fn issue_proof(
        &self,
        id: RecordId,
        status: RevocationStatus,
        now: TimeMs,
    ) -> FreshnessProof {
        FreshnessProof::issue(
            &self.signing_key,
            id,
            status,
            now,
            self.config.proof_validity_ms,
        )
    }

    /// Publish a new filter snapshot; returns its version. The filter
    /// projection (the expensive part) runs before the write lock is
    /// taken; the lock is held only to rotate two `Arc` pointers, so
    /// in-flight `GetFilter` requests are never blocked behind a
    /// projection. The same pass reconciles the tiered pipeline: delta
    /// rebuild and (at the compaction threshold) fuse construction run
    /// under the publisher mutex only — tiered serves read a separate
    /// snapshot pointer and are never blocked behind a compaction.
    pub fn publish_filter(&self) -> u64 {
        let filter = self.store.project_filter();
        let revoked = self.store.revoked_filter_keys();
        let tiered_snap = {
            let mut tiered = self.tiered.lock();
            tiered
                .publish(&revoked)
                .expect("tiered config validated at construction");
            tiered.snapshot()
        };
        *self.tiered_snap.write() = tiered_snap;
        let mut pair = self.snapshots.write();
        let version = pair.current.as_ref().map(|s| s.version + 1).unwrap_or(1);
        pair.previous = pair.current.take();
        pair.current = Some(Arc::new(Snapshot { version, filter }));
        version
    }

    /// Current tiered epoch (1 until the first compaction seals a base).
    pub fn tiered_epoch(&self) -> u64 {
        self.tiered_snap.read().epoch()
    }

    /// The current tiered publication (in-process consumers; the wire
    /// path uses [`Request::GetFilterTiered`]).
    pub fn tiered_snapshot(&self) -> Arc<TieredSnapshot> {
        Arc::clone(&self.tiered_snap.read())
    }

    /// Current published snapshot version (0 = never published).
    pub fn filter_version(&self) -> u64 {
        self.snapshots
            .read()
            .current
            .as_ref()
            .map(|s| s.version)
            .unwrap_or(0)
    }

    /// The current published filter, if any (cloned `Arc`; cheap).
    pub fn published_filter(&self) -> Option<BloomFilter> {
        self.snapshots
            .read()
            .current
            .as_ref()
            .map(|s| s.filter.clone())
    }

    fn serve_filter(&self, have_version: u64) -> Response {
        // Clone the two Arcs under the read lock, then serialize and
        // diff off-lock.
        let (current, previous) = {
            let pair = self.snapshots.read();
            (pair.current.clone(), pair.previous.clone())
        };
        let Some(snapshot) = current else {
            return err(codes::BAD_REQUEST, "no filter published yet");
        };
        if have_version == snapshot.version {
            let d =
                BloomDelta::diff(&snapshot.filter, &snapshot.filter).expect("identical geometry");
            self.obs.filters_delta.inc();
            return Response::FilterDelta {
                from_version: have_version,
                to_version: snapshot.version,
                data: d.to_bytes(),
            };
        }
        if let Some(prev) = previous {
            if have_version == prev.version {
                let d = BloomDelta::diff(&prev.filter, &snapshot.filter)
                    .expect("same geometry across versions");
                self.obs.filters_delta.inc();
                return Response::FilterDelta {
                    from_version: prev.version,
                    to_version: snapshot.version,
                    data: d.to_bytes(),
                };
            }
        }
        self.obs.filters_full.inc();
        Response::FilterFull {
            version: snapshot.version,
            data: snapshot.filter.to_bytes(),
        }
    }

    fn serve_filter_tiered(&self, have_epoch: u64, have_version: u64) -> Response {
        // Publication cadence gates both pipelines: before the first
        // publish there is nothing tiered to serve either.
        if self.snapshots.read().current.is_none() {
            return err(codes::BAD_REQUEST, "no filter published yet");
        }
        // Clone the Arc under the read lock; diff and serialize off-lock.
        let snap = self.tiered_snapshot();
        match snap.serve(have_epoch, have_version) {
            TieredServe::Current => {
                // Same shape as the legacy path: up-to-date requesters
                // get an empty delta.
                let d = BloomDelta::diff(snap.delta(), snap.delta()).expect("identical geometry");
                self.obs.filters_delta.inc();
                Response::FilterDelta {
                    from_version: have_version,
                    to_version: snap.delta_version(),
                    data: d.to_bytes(),
                }
            }
            TieredServe::Delta {
                from_version,
                to_version,
                delta,
            } => {
                self.obs.filters_delta.inc();
                Response::FilterDelta {
                    from_version,
                    to_version,
                    data: delta.to_bytes(),
                }
            }
            TieredServe::Base { epoch, base } => {
                self.obs.filters_base.inc();
                Response::FilterBase { epoch, data: base }
            }
            TieredServe::Tiered {
                epoch,
                base,
                delta_version,
                delta,
            } => {
                self.obs.filters_tiered.inc();
                Response::FilterTiered {
                    epoch,
                    base,
                    delta_version,
                    delta,
                }
            }
        }
    }

    /// Visit every committed record.
    pub fn for_each_record(&self, f: impl FnMut(&StoredClaim)) {
        self.store.for_each(f)
    }
}

fn err(code: u16, message: &str) -> Response {
    Response::Error {
        code,
        message: message.to_string(),
    }
}

/// Block until the configured [`ReplicationPolicy`] is satisfied for
/// `seq`. Called after the local commit, *outside* every shard lock (the
/// follower's poll must be able to reach the replication log while we
/// wait). A timeout surfaces as a storage error: the write is durable
/// locally but was never acknowledged, so the client retries — the
/// at-least-once edge the guarantee matrix documents.
fn replication_gate(d: &Durability, seq: u64) -> Result<(), WalError> {
    if let ReplicationPolicy::WaitForFollower { timeout_ms } = d.replication_policy {
        if !d
            .replication
            .wait_acked(seq, Duration::from_millis(timeout_ms))
        {
            return Err(WalError::Io(io::Error::other(
                "replication ack timeout: durable locally, unconfirmed on the follower",
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::claim::RevokeRequest;
    use irs_crypto::Digest;
    use std::thread;

    fn ledger() -> ConcurrentLedger {
        ConcurrentLedger::new(
            LedgerConfig::new(LedgerId(1)),
            TimestampAuthority::from_seed(1),
        )
    }

    fn claim_one(l: &ConcurrentLedger, seed: u8) -> (RecordId, Keypair) {
        let keypair = Keypair::from_seed(&[seed; 32]);
        let req = ClaimRequest::create(&keypair, &Digest::of(&[seed]));
        match l.handle(Request::Claim(req), TimeMs(10)) {
            Response::Claimed { id, .. } => (id, keypair),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn request_flow_matches_sequential_ledger() {
        let l = ledger();
        let (id, keypair) = claim_one(&l, 1);
        match l.handle(Request::Query { id }, TimeMs(20)) {
            Response::Status { status, epoch, .. } => {
                assert_eq!((status, epoch), (RevocationStatus::NotRevoked, 0));
            }
            other => panic!("unexpected {other:?}"),
        }
        let rv = RevokeRequest::create(&keypair, id, true, 0);
        match l.handle(Request::Revoke(rv), TimeMs(30)) {
            Response::RevokeAck { status, epoch, .. } => {
                assert_eq!((status, epoch), (RevocationStatus::Revoked, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
        let stats = l.stats();
        assert_eq!((stats.claims, stats.queries, stats.revokes), (1, 1, 1));
    }

    #[test]
    fn batch_preserves_order_across_shards() {
        // Claim enough records that consecutive serials land on different
        // shards, revoke every third, then batch-query them in a shuffled
        // order: the reply must mirror the request positionally even
        // though the lookups fan out across shard locks.
        let l = ledger();
        let mut ids = Vec::new();
        for seed in 0..32u8 {
            let (id, keypair) = claim_one(&l, seed);
            if seed % 3 == 0 {
                let rv = RevokeRequest::create(&keypair, id, true, 0);
                match l.handle(Request::Revoke(rv), TimeMs(20)) {
                    Response::RevokeAck { .. } => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
            ids.push(id);
        }
        // Deterministic shuffle: stride through the list coprime to its
        // length, mixing shards at every step.
        let batch: Vec<RecordId> = (0..ids.len()).map(|i| ids[(i * 7) % ids.len()]).collect();
        match l.handle(Request::Batch(batch.clone()), TimeMs(30)) {
            Response::BatchStatus(items) => {
                assert_eq!(
                    items.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
                    batch,
                    "sharded lookups must not reorder the reply"
                );
                for (id, status) in items {
                    let expected = if id.serial % 3 == 0 {
                        RevocationStatus::Revoked
                    } else {
                        RevocationStatus::NotRevoked
                    };
                    assert_eq!(status, expected, "wrong status for serial {}", id.serial);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.stats().batch_items, 32);
    }

    #[test]
    fn filter_publication_and_wire_serving() {
        let l = ledger();
        let (id, keypair) = claim_one(&l, 2);
        let rv = RevokeRequest::create(&keypair, id, true, 0);
        l.handle(Request::Revoke(rv), TimeMs(1));
        match l.handle(Request::GetFilter { have_version: 0 }, TimeMs(1)) {
            Response::Error { code, .. } => assert_eq!(code, codes::BAD_REQUEST),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.publish_filter(), 1);
        match l.handle(Request::GetFilter { have_version: 0 }, TimeMs(2)) {
            Response::FilterFull { version, data } => {
                assert_eq!(version, 1);
                let f = BloomFilter::from_bytes(data).unwrap();
                assert_eq!(f.inserted(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        claim_one(&l, 3);
        assert_eq!(l.publish_filter(), 2);
        // One version behind: delta, not a full re-ship.
        match l.handle(Request::GetFilter { have_version: 1 }, TimeMs(3)) {
            Response::FilterDelta {
                from_version,
                to_version,
                ..
            } => assert_eq!((from_version, to_version), (1, 2)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.filter_version(), 2);
    }

    #[test]
    fn tiered_wire_serving_under_concurrent_publication() {
        use irs_filters::{Filter, TieredConfig, TieredFilter};
        let mut cfg = LedgerConfig::new(LedgerId(1));
        cfg.tiered = TieredConfig {
            delta_capacity: 64,
            delta_fpr: 1e-3,
            compact_at: 4,
        };
        let l = Arc::new(ConcurrentLedger::with_shards(
            cfg,
            TimestampAuthority::from_seed(1),
            4,
        ));
        // Before publication: error, exactly like the legacy path.
        match l.handle(
            Request::GetFilterTiered {
                have_epoch: 0,
                have_version: 0,
            },
            TimeMs(1),
        ) {
            Response::Error { code, .. } => assert_eq!(code, codes::BAD_REQUEST),
            other => panic!("unexpected {other:?}"),
        }
        let mut keys = Vec::new();
        for seed in 0..8u8 {
            let (id, keypair) = claim_one(&l, seed);
            let rv = RevokeRequest::create(&keypair, id, true, 0);
            l.handle(Request::Revoke(rv), TimeMs(2));
            keys.push(id.filter_key());
        }
        l.publish_filter();
        assert_eq!(l.tiered_epoch(), 2, "8 keys past compact_at=4 must seal");
        // Readers hammer the bootstrap path while more publications roll
        // epochs underneath them; every response must decode into a tier
        // that answers all keys revoked before the first publish.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let l = Arc::clone(&l);
                let keys = keys.clone();
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match l.handle(
                            Request::GetFilterTiered {
                                have_epoch: 0,
                                have_version: 0,
                            },
                            TimeMs(5),
                        ) {
                            Response::FilterTiered {
                                epoch,
                                base,
                                delta_version,
                                delta,
                            } => {
                                let tier =
                                    TieredFilter::from_wire(epoch, &base, delta_version, delta)
                                        .unwrap();
                                for &k in &keys {
                                    assert!(tier.contains(k), "tier lost a revoked key");
                                }
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for round in 0..4u8 {
            for seed in 0..6u8 {
                let (id, keypair) = claim_one(&l, 16 + round * 6 + seed);
                let rv = RevokeRequest::create(&keypair, id, true, 0);
                l.handle(Request::Revoke(rv), TimeMs(10));
            }
            l.publish_filter();
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            r.join().unwrap();
        }
        assert!(l.tiered_epoch() >= 3, "publication rounds never compacted");
        assert!(l.stats().filters_tiered >= 2);
        // A client current at the final state gets an empty delta.
        let snap = l.tiered_snapshot();
        match l.handle(
            Request::GetFilterTiered {
                have_epoch: snap.epoch(),
                have_version: snap.delta_version(),
            },
            TimeMs(20),
        ) {
            Response::FilterDelta {
                from_version,
                to_version,
                ..
            } => assert_eq!(from_version, to_version),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn promotion_from_sequential_ledger() {
        let mut seq = Ledger::new(
            LedgerConfig::new(LedgerId(1)),
            TimestampAuthority::from_seed(1),
        );
        let keypair = Keypair::from_seed(&[5; 32]);
        let req = ClaimRequest::create(&keypair, &Digest::of(b"x"));
        let Response::Claimed { id, .. } = seq.handle(Request::Claim(req), TimeMs(1)) else {
            panic!("claim failed");
        };
        let rv = RevokeRequest::create(&keypair, id, true, 0);
        seq.handle(Request::Revoke(rv), TimeMs(2));
        seq.publish_filter();
        let public_key = seq.public_key();
        let conc = ConcurrentLedger::from_ledger(seq, 4);
        // Same identity, records, stats, and published version.
        assert_eq!(conc.public_key(), public_key);
        assert_eq!(
            conc.store().status(&id),
            Some((RevocationStatus::Revoked, 1))
        );
        assert_eq!(conc.stats().claims, 1);
        assert_eq!(conc.filter_version(), 1);
        // Proofs issued by the promoted ledger verify against the old key.
        match conc.handle(Request::GetProof { id }, TimeMs(10)) {
            Response::Proof(p) => assert!(p.verify(&public_key, TimeMs(20))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parallel_claims_and_queries() {
        let l = std::sync::Arc::new(ledger());
        let writers: Vec<_> = (0..4u8)
            .map(|t| {
                let l = std::sync::Arc::clone(&l);
                thread::spawn(move || {
                    let mut ids = Vec::new();
                    for i in 0..25u8 {
                        ids.push(claim_one(&l, t * 25 + i).0);
                    }
                    ids
                })
            })
            .collect();
        let all_ids: Vec<RecordId> = writers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        assert_eq!(all_ids.len(), 100);
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let l = std::sync::Arc::clone(&l);
                let ids = all_ids.clone();
                thread::spawn(move || {
                    for id in &ids {
                        match l.handle(Request::Query { id: *id }, TimeMs(50)) {
                            Response::Status { .. } => {}
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(l.stats().queries, 400);
        assert_eq!(l.store().len(), 100);
    }
}
