//! Keyspace placement: which shard owns which claim.
//!
//! The bootstrap-phase ledger tier scales horizontally by splitting the
//! claim keyspace across N independent shards, each a PR-7 replica set
//! (primary + follower) identified by its own [`LedgerId`]. A
//! [`ShardMap`] is the epoch-versioned directory of that split:
//!
//! * **Claims** route by *rendezvous hashing* over the claim digest —
//!   every participant (client router, shard server) computes the same
//!   highest-random-weight winner, and adding a shard moves only the
//!   keys whose argmax changes (≈ 1/(N+1) of them).
//! * **Record-keyed requests** (`Query` / `Revoke` / `GetProof`) route
//!   *exactly* by `RecordId::ledger` — the shard that minted a record is
//!   encoded in its id, so reads never depend on the hash ring at all.
//!
//! The map serializes to a small checksummed blob so it can ride the
//! wire (`Request::GetShardMap` → `Response::ShardMap`); servers embed
//! their view in a [`ShardDirectory`] and answer misrouted keys with
//! `Response::WrongShard { epoch }`, which routers treat as "my map is
//! stale — refetch and retry" (DESIGN.md §15).

use crate::wal::crc32;
use irs_core::claim::ClaimRequest;
use irs_core::ids::{LedgerId, RecordId};
use parking_lot::RwLock;
use std::sync::Arc;

/// One shard: a replica set owning a slice of the keyspace.
///
/// `replicas` are socket addresses in failover order — primary first,
/// then followers. Servers only need the `ledger` identity; an empty
/// replica list is legal in a map a server holds about itself, but
/// client routers require at least one address to dial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// The shard's ledger identity (also the `RecordId::ledger` it mints).
    pub ledger: LedgerId,
    /// Dialable replica addresses, primary first.
    pub replicas: Vec<String>,
}

impl ShardSpec {
    /// A shard spec for `ledger` with the given replica addresses.
    pub fn new(ledger: LedgerId, replicas: Vec<String>) -> ShardSpec {
        ShardSpec { ledger, replicas }
    }
}

/// Why a [`ShardMap`] could not be built or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A map must contain at least one shard.
    Empty,
    /// Two shards claimed the same [`LedgerId`].
    DuplicateLedger(LedgerId),
    /// A serialized map failed structural validation or its checksum.
    Corrupt(&'static str),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::Empty => write!(f, "shard map has no shards"),
            PlacementError::DuplicateLedger(id) => {
                write!(f, "duplicate shard ledger id {}", id.0)
            }
            PlacementError::Corrupt(what) => write!(f, "corrupt shard map: {what}"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// SplitMix64 finalizer — the same full-avalanche mix the chaos seeder
/// uses; placement only needs determinism and bit diffusion.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Magic prefix on serialized maps ("IRSM" + format version 1).
const MAP_MAGIC: u32 = 0x4952_5301;

/// The epoch-versioned shard directory.
///
/// Immutable once built — installing a new placement means building a
/// new map with a strictly larger epoch and swapping it in (see
/// [`ShardDirectory`]). Routing is a pure function of the map contents,
/// so two holders of byte-equal maps always agree on every key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    epoch: u64,
    shards: Vec<ShardSpec>,
}

impl ShardMap {
    /// Builds a map at `epoch` over `shards`.
    pub fn new(epoch: u64, shards: Vec<ShardSpec>) -> Result<ShardMap, PlacementError> {
        if shards.is_empty() {
            return Err(PlacementError::Empty);
        }
        for (i, s) in shards.iter().enumerate() {
            if shards[..i].iter().any(|t| t.ledger == s.ledger) {
                return Err(PlacementError::DuplicateLedger(s.ledger));
            }
        }
        Ok(ShardMap { epoch, shards })
    }

    /// The map's version; larger epochs supersede smaller ones.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// All shards, in declaration order.
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// False — maps are never empty (enforced by [`ShardMap::new`]).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The spec for `ledger`, if this map places it.
    pub fn spec(&self, ledger: LedgerId) -> Option<&ShardSpec> {
        self.shards.iter().find(|s| s.ledger == ledger)
    }

    /// Rendezvous winner for an abstract 64-bit key: every shard scores
    /// `mix64(key ⊕ mix64(ledger))` and the highest weight wins, ties
    /// broken toward the smaller ledger id. Deterministic across
    /// processes, and adding one shard only reassigns the keys the new
    /// shard now wins.
    pub fn shard_for_key(&self, key: u64) -> &ShardSpec {
        self.shards
            .iter()
            .map(|s| {
                (
                    mix64(key ^ mix64(0x5348_4152_4400 | u64::from(s.ledger.0))),
                    s,
                )
            })
            .max_by(|(wa, sa), (wb, sb)| wa.cmp(wb).then(sb.ledger.0.cmp(&sa.ledger.0)))
            .map(|(_, s)| s)
            .expect("ShardMap::new rejects empty maps")
    }

    /// The routing key of a claim: the 64-bit prefix of its request
    /// digest (pubkey ‖ hash-sig) — derivable by client and server from
    /// the wire form alone.
    pub fn claim_key(claim: &ClaimRequest) -> u64 {
        claim.digest().prefix_u64()
    }

    /// Rendezvous winner for a claim (see [`ShardMap::claim_key`]).
    pub fn shard_for_claim(&self, claim: &ClaimRequest) -> &ShardSpec {
        self.shard_for_key(Self::claim_key(claim))
    }

    /// Exact owner of an existing record: the shard whose ledger minted
    /// it. `None` if the record's ledger is not in this map.
    pub fn shard_for_record(&self, id: &RecordId) -> Option<&ShardSpec> {
        self.spec(id.ledger)
    }

    /// Serializes the map to a checksummed blob (rides the wire as the
    /// payload of `Response::ShardMap`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&MAP_MAGIC.to_be_bytes());
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.extend_from_slice(&(self.shards.len() as u16).to_be_bytes());
        for s in &self.shards {
            out.extend_from_slice(&s.ledger.0.to_be_bytes());
            out.extend_from_slice(&(s.replicas.len() as u16).to_be_bytes());
            for r in &s.replicas {
                out.extend_from_slice(&(r.len() as u16).to_be_bytes());
                out.extend_from_slice(r.as_bytes());
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Decodes a blob produced by [`ShardMap::to_bytes`], rejecting
    /// truncation, trailing garbage, checksum mismatches, and
    /// structurally invalid maps.
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardMap, PlacementError> {
        if bytes.len() < 4 + 8 + 2 + 4 {
            return Err(PlacementError::Corrupt("short buffer"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_be_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            return Err(PlacementError::Corrupt("checksum mismatch"));
        }
        let mut at = 0usize;
        let mut take = |n: usize| -> Result<&[u8], PlacementError> {
            let end = at
                .checked_add(n)
                .ok_or(PlacementError::Corrupt("overflow"))?;
            if end > body.len() {
                return Err(PlacementError::Corrupt("truncated"));
            }
            let out = &body[at..end];
            at = end;
            Ok(out)
        };
        if u32::from_be_bytes(take(4)?.try_into().unwrap()) != MAP_MAGIC {
            return Err(PlacementError::Corrupt("bad magic"));
        }
        let epoch = u64::from_be_bytes(take(8)?.try_into().unwrap());
        let nshards = u16::from_be_bytes(take(2)?.try_into().unwrap());
        let mut shards = Vec::with_capacity(nshards as usize);
        for _ in 0..nshards {
            let ledger = LedgerId(u16::from_be_bytes(take(2)?.try_into().unwrap()));
            let nreps = u16::from_be_bytes(take(2)?.try_into().unwrap());
            let mut replicas = Vec::with_capacity(nreps as usize);
            for _ in 0..nreps {
                let len = u16::from_be_bytes(take(2)?.try_into().unwrap()) as usize;
                let raw = take(len)?;
                let addr = std::str::from_utf8(raw)
                    .map_err(|_| PlacementError::Corrupt("non-utf8 address"))?;
                replicas.push(addr.to_string());
            }
            shards.push(ShardSpec { ledger, replicas });
        }
        if at != body.len() {
            return Err(PlacementError::Corrupt("trailing bytes"));
        }
        ShardMap::new(epoch, shards)
    }
}

/// A server's (or router's) live view of the placement: the current
/// [`ShardMap`] behind a swap, plus — on servers — the shard identity
/// the holder serves.
///
/// `install` only accepts strictly newer epochs, so concurrent
/// refetches during a `WrongShard` storm can race freely: the newest
/// map wins and stale installs are no-ops.
pub struct ShardDirectory {
    own: Option<LedgerId>,
    map: RwLock<Arc<ShardMap>>,
}

impl ShardDirectory {
    /// A directory for the server serving shard `own`.
    pub fn for_shard(own: LedgerId, map: ShardMap) -> ShardDirectory {
        ShardDirectory {
            own: Some(own),
            map: RwLock::new(Arc::new(map)),
        }
    }

    /// A routing-only directory (clients; no shard identity).
    pub fn for_router(map: ShardMap) -> ShardDirectory {
        ShardDirectory {
            own: None,
            map: RwLock::new(Arc::new(map)),
        }
    }

    /// The shard this directory's holder serves, if it is a server.
    pub fn own(&self) -> Option<LedgerId> {
        self.own
    }

    /// The current map (cheap: clones an `Arc`).
    pub fn current(&self) -> Arc<ShardMap> {
        self.map.read().clone()
    }

    /// The current map's epoch.
    pub fn epoch(&self) -> u64 {
        self.map.read().epoch()
    }

    /// Swaps in `map` if it is strictly newer than the current one.
    /// Returns whether the install took effect.
    pub fn install(&self, map: ShardMap) -> bool {
        let mut cur = self.map.write();
        if map.epoch() > cur.epoch() {
            *cur = Arc::new(map);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_crypto::{Digest, Keypair};

    fn map(epoch: u64, ids: &[u16]) -> ShardMap {
        let shards = ids
            .iter()
            .map(|&id| ShardSpec::new(LedgerId(id), vec![format!("10.0.0.{id}:4100")]))
            .collect();
        ShardMap::new(epoch, shards).unwrap()
    }

    #[test]
    fn rejects_empty_and_duplicate() {
        assert_eq!(ShardMap::new(1, vec![]), Err(PlacementError::Empty));
        let dup = vec![
            ShardSpec::new(LedgerId(3), vec![]),
            ShardSpec::new(LedgerId(3), vec![]),
        ];
        assert_eq!(
            ShardMap::new(1, dup),
            Err(PlacementError::DuplicateLedger(LedgerId(3)))
        );
    }

    #[test]
    fn key_routing_is_deterministic_and_total() {
        let m = map(1, &[1, 2, 3, 4]);
        for key in 0..1000u64 {
            let a = m.shard_for_key(key).ledger;
            let b = m.shard_for_key(key).ledger;
            assert_eq!(a, b);
            assert!(m.spec(a).is_some());
        }
    }

    #[test]
    fn record_routing_is_exact_by_ledger() {
        let m = map(1, &[1, 2]);
        let id = RecordId::new(LedgerId(2), 77);
        assert_eq!(m.shard_for_record(&id).unwrap().ledger, LedgerId(2));
        let foreign = RecordId::new(LedgerId(9), 77);
        assert!(m.shard_for_record(&foreign).is_none());
    }

    #[test]
    fn claim_routing_matches_key_routing() {
        let m = map(3, &[1, 2, 3]);
        let kp = Keypair::from_seed(&[42u8; 32]);
        let claim = ClaimRequest::create(&kp, &Digest::of(b"photo"));
        let by_claim = m.shard_for_claim(&claim).ledger;
        let by_key = m.shard_for_key(ShardMap::claim_key(&claim)).ledger;
        assert_eq!(by_claim, by_key);
    }

    #[test]
    fn balance_is_reasonable_at_4_shards() {
        let m = map(1, &[1, 2, 3, 4]);
        let mut counts = [0u64; 4];
        for key in 0..40_000u64 {
            let l = m.shard_for_key(mix64(key)).ledger.0;
            counts[(l - 1) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(min > 0.0 && max / min < 1.15, "imbalanced: {counts:?}");
    }

    #[test]
    fn adding_a_shard_moves_few_keys() {
        let before = map(1, &[1, 2, 3, 4]);
        let after = map(2, &[1, 2, 3, 4, 5]);
        let total = 20_000u64;
        let moved = (0..total)
            .filter(|&k| {
                let key = mix64(k);
                before.shard_for_key(key).ledger != after.shard_for_key(key).ledger
            })
            .count() as f64;
        // Rendezvous: only keys the new shard wins move — ≈ 1/5 of them.
        assert!(moved / total as f64 <= 0.25, "moved {moved} of {total}");
    }

    #[test]
    fn bytes_roundtrip_exactly() {
        let m = ShardMap::new(
            9,
            vec![
                ShardSpec::new(
                    LedgerId(1),
                    vec!["127.0.0.1:4100".into(), "127.0.0.1:4101".into()],
                ),
                ShardSpec::new(LedgerId(2), vec![]),
            ],
        )
        .unwrap();
        let bytes = m.to_bytes();
        let back = ShardMap::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let m = map(2, &[1, 2]);
        let good = m.to_bytes();
        assert!(ShardMap::from_bytes(&good[..good.len() - 1]).is_err());
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(ShardMap::from_bytes(&bad).is_err(), "flip at {i} accepted");
        }
        assert!(ShardMap::from_bytes(&[]).is_err());
    }

    #[test]
    fn directory_installs_only_newer_epochs() {
        let dir = ShardDirectory::for_shard(LedgerId(1), map(5, &[1, 2]));
        assert_eq!(dir.epoch(), 5);
        assert_eq!(dir.own(), Some(LedgerId(1)));
        assert!(!dir.install(map(5, &[1, 2, 3])));
        assert!(!dir.install(map(4, &[1])));
        assert!(dir.install(map(6, &[1, 2, 3])));
        assert_eq!(dir.current().len(), 3);
        assert!(ShardDirectory::for_router(map(1, &[1])).own().is_none());
    }
}
