//! Checksummed ledger snapshots.
//!
//! A snapshot is a point-in-time copy of the full record set plus the
//! counting-Bloom revocation index, written atomically (tmp + fsync +
//! rename via [`crate::disk::Disk::write_atomic`]) and guarded by a
//! trailing CRC-32 over the entire body. It also records the WAL
//! `(generation, offset)` it was cut at, which is what lets recovery
//! replay exactly the log suffix the snapshot does not cover — and no
//! more — even if the crash landed between the snapshot commit and the
//! log truncation (see [`crate::wal::WalWriter::rotate_at`]).
//!
//! File layout:
//!
//! ```text
//! [magic "IRSSNAP1" (8)] [ledger id (2)]
//! [wal generation (8)] [wal offset (8)]
//! [record count (8)] [record]*
//! [filter blob len u32] [CountingBloom::to_bytes blob]
//! [crc32 over everything above (4)]
//! record := [serial u64] [origin u8] [status u8] [epoch u64]
//!           [ClaimRequest] [TimestampToken]
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use irs_core::claim::{Claim, ClaimRequest, RevocationStatus};
use irs_core::ids::{LedgerId, RecordId};
use irs_core::tsa::TimestampToken;
use irs_core::wire::Wire;
use irs_filters::CountingBloom;

use crate::store::{ClaimOrigin, StoredClaim};
use crate::wal::crc32;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"IRSSNAP1";

/// Errors decoding a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file fails structural validation or its checksum.
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A decoded snapshot: the state to seed recovery with.
#[derive(Debug)]
pub struct SnapshotData {
    /// Ledger the snapshot belongs to.
    pub ledger: LedgerId,
    /// WAL rotation generation at the cut point.
    pub wal_generation: u64,
    /// WAL byte offset at the cut point (replay resumes here when the
    /// generation still matches).
    pub wal_offset: u64,
    /// All records, in ascending serial order (serials may have holes
    /// after a recovery that dropped unacknowledged claims).
    pub records: Vec<StoredClaim>,
    /// The counting-Bloom revocation index as of the cut point.
    pub filter: CountingBloom,
}

/// Encode a snapshot body. `records` must be in ascending serial order.
pub fn encode_snapshot(
    ledger: LedgerId,
    wal_generation: u64,
    wal_offset: u64,
    records: &[StoredClaim],
    filter: &CountingBloom,
) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + records.len() * 256);
    buf.put_slice(SNAPSHOT_MAGIC);
    buf.put_u16(ledger.0);
    buf.put_u64(wal_generation);
    buf.put_u64(wal_offset);
    buf.put_u64(records.len() as u64);
    for rec in records {
        // All fixed-size wire types: encoding cannot fail with BadValue.
        let fixed = "snapshot record fields are fixed-size and always encode";
        rec.claim.id.serial.encode(&mut buf).expect(fixed);
        buf.put_u8(match rec.origin {
            ClaimOrigin::Owner => 0,
            ClaimOrigin::Custodial => 1,
        });
        rec.claim.status.encode(&mut buf).expect(fixed);
        rec.claim.status_epoch.encode(&mut buf).expect(fixed);
        rec.claim.request.encode(&mut buf).expect(fixed);
        rec.claim.timestamp.encode(&mut buf).expect(fixed);
    }
    let filter_blob = filter.to_bytes();
    buf.put_u32(filter_blob.len() as u32);
    buf.put_slice(&filter_blob);
    let crc = crc32(&buf);
    buf.put_u32(crc);
    buf.to_vec()
}

/// Decode and validate a snapshot. Any structural or checksum failure is
/// [`SnapshotError::Corrupt`] — there is no "partial" snapshot; the file
/// was written atomically, so damage means the media lied and the caller
/// must fail closed.
pub fn decode_snapshot(bytes: &[u8]) -> Result<SnapshotData, SnapshotError> {
    if bytes.len() < 8 + 2 + 8 + 8 + 8 + 4 + 4 {
        return Err(SnapshotError::Corrupt("file shorter than header"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_be_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(body) != stored_crc {
        return Err(SnapshotError::Corrupt("checksum mismatch"));
    }
    let mut buf = Bytes::copy_from_slice(body);
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::Corrupt("bad magic"));
    }
    let ledger = LedgerId(buf.get_u16());
    let wal_generation = buf.get_u64();
    let wal_offset = buf.get_u64();
    let count = buf.get_u64();
    // Each record is at least 8+1+1+8 bytes; reject absurd counts before
    // allocating.
    if count > (buf.remaining() as u64) / 18 {
        return Err(SnapshotError::Corrupt("record count exceeds payload"));
    }
    let mut records = Vec::with_capacity(count as usize);
    let mut prev_serial: Option<u64> = None;
    for _ in 0..count {
        let serial = u64::decode(&mut buf).map_err(|_| SnapshotError::Corrupt("serial"))?;
        if let Some(p) = prev_serial {
            if serial <= p {
                return Err(SnapshotError::Corrupt("serials not ascending"));
            }
        }
        prev_serial = Some(serial);
        if !buf.has_remaining() {
            return Err(SnapshotError::Corrupt("origin"));
        }
        let origin = match buf.get_u8() {
            0 => ClaimOrigin::Owner,
            1 => ClaimOrigin::Custodial,
            _ => return Err(SnapshotError::Corrupt("origin tag")),
        };
        let status =
            RevocationStatus::decode(&mut buf).map_err(|_| SnapshotError::Corrupt("status"))?;
        let status_epoch =
            u64::decode(&mut buf).map_err(|_| SnapshotError::Corrupt("status epoch"))?;
        let request =
            ClaimRequest::decode(&mut buf).map_err(|_| SnapshotError::Corrupt("claim request"))?;
        let timestamp =
            TimestampToken::decode(&mut buf).map_err(|_| SnapshotError::Corrupt("timestamp"))?;
        records.push(StoredClaim {
            claim: Claim {
                id: RecordId::new(ledger, serial),
                request,
                timestamp,
                status,
                status_epoch,
            },
            origin,
        });
    }
    if buf.remaining() < 4 {
        return Err(SnapshotError::Corrupt("filter length"));
    }
    let filter_len = buf.get_u32() as usize;
    if buf.remaining() != filter_len {
        return Err(SnapshotError::Corrupt("filter length mismatch"));
    }
    let filter = CountingBloom::from_bytes(buf.copy_to_bytes(filter_len))
        .map_err(|_| SnapshotError::Corrupt("filter payload"))?;
    Ok(SnapshotData {
        ledger,
        wal_generation,
        wal_offset,
        records,
        filter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::time::TimeMs;
    use irs_core::tsa::TimestampAuthority;
    use irs_crypto::{Digest, Keypair};
    use irs_filters::Filter;

    fn sample() -> (Vec<StoredClaim>, CountingBloom) {
        let tsa = TimestampAuthority::from_seed(1);
        let mut filter = CountingBloom::for_capacity(1000, 0.02).unwrap();
        let mut records = Vec::new();
        for (i, serial) in [0u64, 1, 3, 7].iter().enumerate() {
            let kp = Keypair::from_seed(&[i as u8 + 1; 32]);
            let request = ClaimRequest::create(&kp, &Digest::of(&[i as u8]));
            let id = RecordId::new(LedgerId(5), *serial);
            let status = if i % 2 == 1 {
                filter.insert(id.filter_key());
                RevocationStatus::Revoked
            } else {
                RevocationStatus::NotRevoked
            };
            records.push(StoredClaim {
                claim: Claim {
                    id,
                    request,
                    timestamp: tsa.stamp(request.digest(), TimeMs(100 + i as u64)),
                    status,
                    status_epoch: i as u64,
                },
                origin: if i % 2 == 0 {
                    ClaimOrigin::Owner
                } else {
                    ClaimOrigin::Custodial
                },
            });
        }
        (records, filter)
    }

    #[test]
    fn roundtrip_including_serial_holes() {
        let (records, filter) = sample();
        let bytes = encode_snapshot(LedgerId(5), 3, 4242, &records, &filter);
        let snap = decode_snapshot(&bytes).unwrap();
        assert_eq!(snap.ledger, LedgerId(5));
        assert_eq!(snap.wal_generation, 3);
        assert_eq!(snap.wal_offset, 4242);
        assert_eq!(snap.records, records);
        assert_eq!(snap.filter, filter);
        assert!(snap
            .filter
            .contains(RecordId::new(LedgerId(5), 1).filter_key()));
    }

    #[test]
    fn any_flipped_bit_is_rejected() {
        let (records, filter) = sample();
        let bytes = encode_snapshot(LedgerId(5), 0, 22, &records, &filter);
        // Sample bit positions across the file (exhaustive is slow in
        // debug builds; stride covers header, records, filter, and crc).
        for pos in (0..bytes.len() * 8).step_by(41) {
            let mut bad = bytes.clone();
            bad[pos / 8] ^= 1 << (pos % 8);
            assert!(
                decode_snapshot(&bad).is_err(),
                "bit flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_rejected() {
        let (records, filter) = sample();
        let bytes = encode_snapshot(LedgerId(5), 0, 22, &records, &filter);
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn out_of_order_serials_rejected() {
        let (mut records, filter) = sample();
        records.swap(1, 2);
        let bytes = encode_snapshot(LedgerId(5), 0, 0, &records, &filter);
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(SnapshotError::Corrupt("serials not ascending"))
        ));
    }
}
