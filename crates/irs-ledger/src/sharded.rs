//! Lock-striped claim store: the concurrent counterpart of
//! [`crate::store::LedgerStore`].
//!
//! Serials are allocated from a single atomic counter, so they stay
//! dense and append-only exactly as in the single-threaded store; the
//! records themselves are striped across `N` shards (`shard = serial %
//! N`, within-shard slot `serial / N`), each behind its own
//! `parking_lot::RwLock`. Every mutation touches exactly one shard, so
//! writers on different shards never contend and there is no lock
//! ordering hazard; the only multi-shard operation — projecting the
//! published Bloom filter — takes all shard read locks in index order,
//! which cannot deadlock against single-shard writers.
//!
//! Each shard keeps its own [`CountingBloom`] over the revoked records
//! it owns, with identical geometry across shards. Counting-filter
//! insertion is additive per bit position, so the union of the
//! per-shard projections equals the projection the monolithic store
//! would have produced — see `union_matches_monolithic_store` below.

use irs_core::claim::{Claim, ClaimRequest, RevocationStatus, RevokeRequest};
use irs_core::ids::{LedgerId, RecordId};
use irs_core::time::TimeMs;
use irs_core::tsa::{TimestampAuthority, TimestampToken};
use irs_filters::{BloomFilter, CountingBloom};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::store::{ClaimOrigin, StoreError, StoredClaim};

/// Default stripe count for servers (a few× typical core counts; the
/// E15 thread-scaling experiment shows the curve).
pub const DEFAULT_SHARDS: usize = 16;

struct Shard {
    /// Slots indexed by `serial / num_shards`. `None` marks a serial
    /// that has been allocated by `claim` but whose record has not been
    /// committed yet (the window between the atomic fetch-add and the
    /// shard write-lock acquisition on another thread).
    slots: Vec<Option<StoredClaim>>,
    /// Counting filter over this shard's revoked records.
    filter: CountingBloom,
}

/// A sharded, internally synchronized claim store; all operations take
/// `&self`.
pub struct ShardedLedgerStore {
    id: LedgerId,
    tsa: TimestampAuthority,
    next_serial: AtomicU64,
    filter_capacity: u64,
    shards: Box<[RwLock<Shard>]>,
}

impl ShardedLedgerStore {
    /// Create an empty store with `num_shards` stripes. `filter_capacity`
    /// sizes the published Bloom filter exactly as in
    /// [`crate::store::LedgerStore::new`].
    pub fn new(
        id: LedgerId,
        tsa: TimestampAuthority,
        filter_capacity: u64,
        num_shards: usize,
    ) -> ShardedLedgerStore {
        assert!(num_shards > 0, "need at least one shard");
        let shards = (0..num_shards)
            .map(|_| {
                RwLock::new(Shard {
                    slots: Vec::new(),
                    filter: CountingBloom::for_capacity(filter_capacity, 0.02)
                        .expect("valid filter params"),
                })
            })
            .collect();
        ShardedLedgerStore {
            id,
            tsa,
            next_serial: AtomicU64::new(0),
            filter_capacity,
            shards,
        }
    }

    /// Rebuild from an existing record set (promotion of a
    /// [`crate::Ledger`] to a concurrent one, or crash recovery). Serials
    /// may have holes — recovery drops claims that were allocated but
    /// never durably committed — so the next serial is one past the
    /// highest record present, not the record count.
    pub(crate) fn from_parts(
        id: LedgerId,
        tsa: TimestampAuthority,
        records: Vec<StoredClaim>,
        filter_capacity: u64,
        num_shards: usize,
    ) -> ShardedLedgerStore {
        let store = ShardedLedgerStore::new(id, tsa, filter_capacity, num_shards);
        let next = records
            .iter()
            .map(|r| r.claim.id.serial + 1)
            .max()
            .unwrap_or(0);
        store.next_serial.store(next, Ordering::Relaxed);
        for stored in records {
            let serial = stored.claim.id.serial;
            let mut shard = store.shards[store.shard_of(serial)].write();
            let slot = store.slot_of(serial);
            if shard.slots.len() <= slot {
                shard.slots.resize(slot + 1, None);
            }
            if stored.claim.status != RevocationStatus::NotRevoked {
                shard.filter.insert(stored.claim.id.filter_key());
            }
            shard.slots[slot] = Some(stored);
        }
        store
    }

    fn shard_of(&self, serial: u64) -> usize {
        (serial % self.shards.len() as u64) as usize
    }

    fn slot_of(&self, serial: u64) -> usize {
        (serial / self.shards.len() as u64) as usize
    }

    /// This ledger's identifier.
    pub fn id(&self) -> LedgerId {
        self.id
    }

    /// Number of stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of allocated serials (committed records may briefly lag by
    /// the few in flight between allocation and shard insertion).
    pub fn len(&self) -> usize {
        self.next_serial.load(Ordering::Acquire) as usize
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Record a claim; returns the new identifier and timestamp token.
    /// Serial allocation is a single fetch-add, so serials stay dense
    /// under any interleaving.
    pub fn claim(
        &self,
        request: ClaimRequest,
        origin: ClaimOrigin,
        initially_revoked: bool,
        now: TimeMs,
    ) -> (RecordId, TimestampToken) {
        self.claim_with(request, origin, initially_revoked, now, |_| {})
    }

    /// [`claim`](Self::claim) with a durability hook: `log` runs under the
    /// shard write lock, after the record is inserted. Because every
    /// mutation of a given record happens under its shard lock, WAL
    /// appends made from these hooks land in the log in exactly the order
    /// the mutations took effect — the invariant replay depends on.
    pub fn claim_with(
        &self,
        request: ClaimRequest,
        origin: ClaimOrigin,
        initially_revoked: bool,
        now: TimeMs,
        log: impl FnOnce(&StoredClaim),
    ) -> (RecordId, TimestampToken) {
        let serial = self.next_serial.fetch_add(1, Ordering::AcqRel);
        let id = RecordId::new(self.id, serial);
        // The timestamp signature is the expensive part; compute it
        // before taking the shard lock.
        let timestamp = self.tsa.stamp(request.digest(), now);
        let status = if initially_revoked {
            RevocationStatus::Revoked
        } else {
            RevocationStatus::NotRevoked
        };
        let stored = StoredClaim {
            claim: Claim {
                id,
                request,
                timestamp,
                status,
                status_epoch: 0,
            },
            origin,
        };
        let slot = self.slot_of(serial);
        let mut shard = self.shards[self.shard_of(serial)].write();
        if shard.slots.len() <= slot {
            shard.slots.resize(slot + 1, None);
        }
        if initially_revoked {
            shard.filter.insert(id.filter_key());
        }
        shard.slots[slot] = Some(stored);
        log(shard.slots[slot].as_ref().expect("just inserted"));
        (id, timestamp)
    }

    /// Insert a claim exactly as the primary stored it (replication apply
    /// path): the serial, timestamp, origin, and status come from the
    /// shipped WAL record, not from local allocation or stamping, so a
    /// follower's state is byte-identical to the primary's. `log` runs
    /// under the shard write lock, like [`claim_with`](Self::claim_with).
    /// Fails if the serial's slot is already occupied — a duplicate serial
    /// in a replication stream means the stream is broken.
    pub(crate) fn insert_replicated(
        &self,
        stored: StoredClaim,
        log: impl FnOnce(&StoredClaim),
    ) -> Result<(), StoreError> {
        let serial = stored.claim.id.serial;
        let revoked = stored.claim.status != RevocationStatus::NotRevoked;
        let key = stored.claim.id.filter_key();
        // Keep the allocator one past the highest replicated serial so a
        // promoted follower allocates fresh serials, never reused ones.
        self.next_serial.fetch_max(serial + 1, Ordering::AcqRel);
        let slot = self.slot_of(serial);
        let mut shard = self.shards[self.shard_of(serial)].write();
        if shard.slots.len() <= slot {
            shard.slots.resize(slot + 1, None);
        }
        if shard.slots[slot].is_some() {
            return Err(StoreError::DuplicateSerial);
        }
        if revoked {
            shard.filter.insert(key);
        }
        shard.slots[slot] = Some(stored);
        log(shard.slots[slot].as_ref().expect("just inserted"));
        Ok(())
    }

    /// Look up a record (cloned out of the shard).
    pub fn get(&self, id: &RecordId) -> Option<StoredClaim> {
        if id.ledger != self.id {
            return None;
        }
        let shard = self.shards[self.shard_of(id.serial)].read();
        shard.slots.get(self.slot_of(id.serial))?.clone()
    }

    /// Current status and epoch.
    pub fn status(&self, id: &RecordId) -> Option<(RevocationStatus, u64)> {
        if id.ledger != self.id {
            return None;
        }
        let shard = self.shards[self.shard_of(id.serial)].read();
        let stored = shard.slots.get(self.slot_of(id.serial))?.as_ref()?;
        Some((stored.claim.status, stored.claim.status_epoch))
    }

    /// Apply a signed revoke/unrevoke request. Record mutation and the
    /// filter-index update happen under the same shard write lock, so a
    /// concurrent filter projection can never observe one without the
    /// other.
    pub fn apply_revoke(
        &self,
        request: &RevokeRequest,
    ) -> Result<(RevocationStatus, u64), StoreError> {
        self.apply_revoke_with(request, || {})
    }

    /// [`apply_revoke`](Self::apply_revoke) with a durability hook: `log`
    /// runs under the shard write lock, only if the revocation was
    /// accepted (the WAL records applied operations, not attempts).
    pub fn apply_revoke_with(
        &self,
        request: &RevokeRequest,
        log: impl FnOnce(),
    ) -> Result<(RevocationStatus, u64), StoreError> {
        if request.id.ledger != self.id {
            return Err(StoreError::UnknownRecord);
        }
        let slot = self.slot_of(request.id.serial);
        let mut shard = self.shards[self.shard_of(request.id.serial)].write();
        let shard = &mut *shard;
        let rec = shard
            .slots
            .get_mut(slot)
            .and_then(Option::as_mut)
            .ok_or(StoreError::UnknownRecord)?;
        if rec.claim.status == RevocationStatus::PermanentlyRevoked {
            return Err(StoreError::Permanent);
        }
        if request.epoch != rec.claim.status_epoch {
            return Err(StoreError::StaleEpoch);
        }
        if !request.verify(&rec.claim.request.pubkey, rec.claim.status_epoch) {
            return Err(StoreError::BadSignature);
        }
        let was_revoked = rec.claim.status != RevocationStatus::NotRevoked;
        rec.claim.status = if request.revoke {
            RevocationStatus::Revoked
        } else {
            RevocationStatus::NotRevoked
        };
        rec.claim.status_epoch += 1;
        let key = rec.claim.id.filter_key();
        let result = (rec.claim.status, rec.claim.status_epoch);
        match (was_revoked, request.revoke) {
            (false, true) => shard.filter.insert(key),
            (true, false) => shard.filter.remove(key),
            _ => {}
        }
        log();
        Ok(result)
    }

    /// Permanently revoke (appeals outcome); administrative, unsigned.
    pub fn permanently_revoke(&self, id: &RecordId) -> Result<(), StoreError> {
        self.permanently_revoke_with(id, || {})
    }

    /// [`permanently_revoke`](Self::permanently_revoke) with a durability
    /// hook, run under the shard write lock on success.
    pub fn permanently_revoke_with(
        &self,
        id: &RecordId,
        log: impl FnOnce(),
    ) -> Result<(), StoreError> {
        if id.ledger != self.id {
            return Err(StoreError::UnknownRecord);
        }
        let slot = self.slot_of(id.serial);
        let mut shard = self.shards[self.shard_of(id.serial)].write();
        let shard = &mut *shard;
        let rec = shard
            .slots
            .get_mut(slot)
            .and_then(Option::as_mut)
            .ok_or(StoreError::UnknownRecord)?;
        let was_revoked = rec.claim.status != RevocationStatus::NotRevoked;
        rec.claim.status = RevocationStatus::PermanentlyRevoked;
        rec.claim.status_epoch += 1;
        if !was_revoked {
            shard.filter.insert(id.filter_key());
        }
        log();
        Ok(())
    }

    /// Copy every committed record (ascending serial order) while *all*
    /// shard locks are held, and call `f` inside the same critical
    /// section. This is the snapshot cut: `f` captures the WAL position,
    /// and because every mutation both holds a shard lock and logs from
    /// inside it, the copy and the position describe the same instant.
    pub fn frozen_copy<T>(&self, f: impl FnOnce() -> T) -> (Vec<StoredClaim>, T) {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let extra = f();
        let mut records: Vec<StoredClaim> = guards
            .iter()
            .flat_map(|g| g.slots.iter().flatten().cloned())
            .collect();
        drop(guards);
        records.sort_by_key(|r| r.claim.id.serial);
        (records, extra)
    }

    /// Project the revoked-set Bloom filter from the per-shard counting
    /// filters. Takes all shard read locks in index order (single-shard
    /// writers cannot deadlock against this), so the result is a
    /// consistent snapshot: no revocation is half-applied in it.
    pub fn project_filter(&self) -> BloomFilter {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut merged = guards[0].filter.to_bloom();
        for guard in &guards[1..] {
            merged
                .union_with(&guard.filter.to_bloom())
                .expect("identical geometry across shards");
        }
        merged
    }

    /// The filter capacity the per-shard indices were sized with.
    pub fn filter_capacity(&self) -> u64 {
        self.filter_capacity
    }

    /// The exact `filter_key` set of currently revoked records, captured
    /// under every shard read lock so the set is a consistent snapshot —
    /// the tiered publisher seals this into a fuse base at compaction.
    pub fn revoked_filter_keys(&self) -> std::collections::HashSet<u64> {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        guards
            .iter()
            .flat_map(|g| g.slots.iter().flatten())
            .filter(|r| r.claim.status != RevocationStatus::NotRevoked)
            .map(|r| r.claim.id.filter_key())
            .collect()
    }

    /// Count records by status: (not revoked, revoked, permanent).
    /// Shards are visited one at a time; concurrent writers may be
    /// counted in either state, as with any live statistic.
    pub fn status_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for shard in self.shards.iter() {
            let shard = shard.read();
            for stored in shard.slots.iter().flatten() {
                match stored.claim.status {
                    RevocationStatus::NotRevoked => counts.0 += 1,
                    RevocationStatus::Revoked => counts.1 += 1,
                    RevocationStatus::PermanentlyRevoked => counts.2 += 1,
                }
            }
        }
        counts
    }

    /// Visit every committed record (shard by shard, serial order within
    /// each shard).
    pub fn for_each(&self, mut f: impl FnMut(&StoredClaim)) {
        for shard in self.shards.iter() {
            let shard = shard.read();
            for stored in shard.slots.iter().flatten() {
                f(stored);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::LedgerStore;
    use irs_crypto::{Digest, Keypair};
    use irs_filters::Filter;
    use std::sync::Arc;

    fn store(shards: usize) -> ShardedLedgerStore {
        ShardedLedgerStore::new(
            LedgerId(1),
            TimestampAuthority::from_seed(1),
            10_000,
            shards,
        )
    }

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    fn make_claim(s: &ShardedLedgerStore, seed: u8, revoked: bool) -> (RecordId, Keypair) {
        let keypair = kp(seed);
        let req = ClaimRequest::create(&keypair, &Digest::of(&[seed]));
        let (id, _tok) = s.claim(req, ClaimOrigin::Owner, revoked, TimeMs(100));
        (id, keypair)
    }

    #[test]
    fn serials_stay_dense_across_shards() {
        let s = store(4);
        let ids: Vec<u64> = (0..20)
            .map(|i| make_claim(&s, i as u8, false).0.serial)
            .collect();
        assert_eq!(ids, (0..20).collect::<Vec<u64>>());
        assert_eq!(s.len(), 20);
        for serial in 0..20 {
            assert!(s.status(&RecordId::new(LedgerId(1), serial)).is_some());
        }
    }

    #[test]
    fn lifecycle_matches_monolithic_semantics() {
        let s = store(3);
        let (id, keypair) = make_claim(&s, 3, false);
        assert_eq!(s.status(&id), Some((RevocationStatus::NotRevoked, 0)));
        let req = RevokeRequest::create(&keypair, id, true, 0);
        assert_eq!(s.apply_revoke(&req), Ok((RevocationStatus::Revoked, 1)));
        // Replay rejected, wrong key rejected, permanent is final.
        assert_eq!(s.apply_revoke(&req), Err(StoreError::StaleEpoch));
        let intruder = RevokeRequest::create(&kp(99), id, false, 1);
        assert_eq!(s.apply_revoke(&intruder), Err(StoreError::BadSignature));
        s.permanently_revoke(&id).unwrap();
        let late = RevokeRequest::create(&keypair, id, false, 2);
        assert_eq!(s.apply_revoke(&late), Err(StoreError::Permanent));
        assert_eq!(s.status_counts(), (0, 0, 1));
    }

    #[test]
    fn foreign_and_missing_records() {
        let s = store(2);
        assert_eq!(s.status(&RecordId::new(LedgerId(9), 0)), None);
        assert_eq!(s.status(&RecordId::new(LedgerId(1), 7)), None);
        assert_eq!(
            s.permanently_revoke(&RecordId::new(LedgerId(1), 7)),
            Err(StoreError::UnknownRecord)
        );
    }

    #[test]
    fn union_matches_monolithic_store() {
        // Same operation sequence against the monolithic store and a
        // 7-way sharded store: the projected filters must be bit-equal.
        let mut mono = LedgerStore::new(LedgerId(1), TimestampAuthority::from_seed(1), 10_000);
        let sharded = store(7);
        let mut keys = Vec::new();
        for seed in 0..40u8 {
            let revoked = seed % 3 == 0;
            let keypair = kp(seed);
            let req = ClaimRequest::create(&keypair, &Digest::of(&[seed]));
            mono.claim(req, ClaimOrigin::Owner, revoked, TimeMs(1));
            let (id, keypair) = make_claim(&sharded, seed, revoked);
            keys.push((id, keypair, revoked));
        }
        // Revoke a few more on both.
        for (id, keypair, revoked) in &keys {
            if !revoked && id.serial % 5 == 0 {
                let req = RevokeRequest::create(keypair, *id, true, 0);
                mono.apply_revoke(&req).unwrap();
                sharded.apply_revoke(&req).unwrap();
            }
        }
        assert_eq!(
            mono.filter_index().to_bloom().to_bytes(),
            sharded.project_filter().to_bytes()
        );
    }

    #[test]
    fn concurrent_claims_keep_invariants() {
        let s = Arc::new(store(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..50u8 {
                        make_claim(&s, t * 50 + i, i % 2 == 0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.len(), 200);
        let (not_revoked, revoked, permanent) = s.status_counts();
        assert_eq!((not_revoked, revoked, permanent), (100, 100, 0));
        // Every serial is committed and queryable.
        for serial in 0..200 {
            let id = RecordId::new(LedgerId(1), serial);
            assert!(s.status(&id).is_some(), "serial {serial} missing");
        }
        // Filter covers exactly the revoked records (no false negatives).
        let filter = s.project_filter();
        s.for_each(|stored| {
            if stored.claim.status != RevocationStatus::NotRevoked {
                assert!(filter.contains(stored.claim.id.filter_key()));
            }
        });
    }

    #[test]
    fn from_parts_preserves_records_and_filter() {
        let mut mono = LedgerStore::new(LedgerId(1), TimestampAuthority::from_seed(1), 10_000);
        let mut expected = Vec::new();
        for seed in 0..25u8 {
            let keypair = kp(seed);
            let req = ClaimRequest::create(&keypair, &Digest::of(&[seed]));
            let (id, _) = mono.claim(req, ClaimOrigin::Owner, seed % 4 == 0, TimeMs(1));
            expected.push((id, mono.status(&id).unwrap()));
        }
        let records: Vec<StoredClaim> = mono.iter().cloned().collect();
        let sharded = ShardedLedgerStore::from_parts(
            LedgerId(1),
            TimestampAuthority::from_seed(1),
            records,
            10_000,
            5,
        );
        assert_eq!(sharded.len(), 25);
        for (id, status) in expected {
            assert_eq!(sharded.status(&id), Some(status));
        }
        assert_eq!(
            mono.filter_index().to_bloom().to_bytes(),
            sharded.project_filter().to_bytes()
        );
        // New serials continue densely after the migrated ones.
        let (id, _) = make_claim(&sharded, 200, false);
        assert_eq!(id.serial, 25);
    }
}
