//! The §5 attack scenarios ("Direct Attacks and Unintended Consequences"),
//! as executable library code composed from the real system components.
//!
//! * [`destruction`] — the naive attack: strip metadata and distort the
//!   watermark away. The paper calls it self-defeating: the malformed copy
//!   is unsharable under IRS upload rules; these scenarios verify that.
//! * [`reclaim`] — the sophisticated attack: re-claim a revoked photo
//!   under a fresh key with fresh labels, then share it. IRS "cannot
//!   prevent or detect this automatically … but must rely on the
//!   aforementioned appeals process"; the scenario runs the attack and
//!   the appeal end to end.
//! * [`censorship`] — coerced revocation against a nonprofit
//!   non-revocable ledger.

pub mod censorship;
pub mod destruction;
pub mod reclaim;

pub use destruction::{destruction_attack, DestructionReport};
pub use reclaim::{run_reclaim_scenario, ReclaimOutcome};
