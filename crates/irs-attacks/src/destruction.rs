//! The naive direct attack: destroy the label.
//!
//! "A relatively naive attacker could insert incorrect metadata and/or
//! apply enough cropping and/or distortion to render the watermark
//! unreadable. This would render the picture unsharable, which is
//! self-defeating…" (§5).

use irs_core::photo::{LabelState, PhotoFile};
use irs_core::policy::UploadDecision;
use irs_imaging::manipulate::{apply_all, Manipulation};
use irs_imaging::watermark::WatermarkConfig;

/// Result of a destruction attempt at one distortion level.
#[derive(Clone, Debug, PartialEq)]
pub struct DestructionReport {
    /// The distortion recipe applied (names).
    pub recipe: Vec<String>,
    /// Whether the watermark survived.
    pub watermark_survived: bool,
    /// Whether metadata was stripped.
    pub metadata_stripped: bool,
    /// Label state of the attacked photo.
    pub label_state_inconsistent: bool,
    /// PSNR of the attacked photo vs the labeled original (image quality
    /// the attacker sacrificed).
    pub psnr_db: f64,
}

/// Run the attack: strip metadata, apply `ops`, and report what remains.
pub fn destruction_attack(
    labeled: &PhotoFile,
    ops: &[Manipulation],
    cfg: &WatermarkConfig,
) -> (PhotoFile, DestructionReport) {
    let mut attacked = labeled.clone();
    attacked.metadata.strip_all();
    attacked.image = apply_all(&attacked.image, ops);
    let reading = attacked.read_label(cfg);
    let psnr = if (attacked.image.width(), attacked.image.height())
        == (labeled.image.width(), labeled.image.height())
    {
        attacked.image.psnr(&labeled.image).unwrap_or(f64::NAN)
    } else {
        f64::NAN // cropped: dimensions differ
    };
    let report = DestructionReport {
        recipe: ops.iter().map(|m| m.name()).collect(),
        watermark_survived: reading.watermark_id.is_some(),
        metadata_stripped: true,
        label_state_inconsistent: reading.state() == LabelState::Inconsistent,
        psnr_db: psnr,
    };
    (attacked, report)
}

/// The §5 "self-defeating" check: a watermark-surviving, metadata-stripped
/// photo must be denied on upload (inconsistent label). Returns the upload
/// decision an IRS aggregator makes for the attacked photo.
pub fn upload_decision_for_attacked(
    attacked: PhotoFile,
    aggregator: &mut irs_aggregator::Aggregator,
    ledgers: &mut dyn irs_aggregator::LedgerDirectory,
    now: irs_core::time::TimeMs,
) -> UploadDecision {
    aggregator.upload(attacked, ledgers, now).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_aggregator::{Aggregator, AggregatorConfig, LocalLedgers};
    use irs_core::camera::Camera;
    use irs_core::ids::LedgerId;
    use irs_core::time::TimeMs;
    use irs_core::tsa::TimestampAuthority;
    use irs_core::wire::{Request, Response};
    use irs_ledger::{Ledger, LedgerConfig};

    fn labeled_photo(ledgers: &mut LocalLedgers) -> PhotoFile {
        let mut cam = Camera::new(21, 256, 256);
        let shot = cam.capture(100);
        let ledger = ledgers.get_mut(LedgerId(1)).unwrap();
        let Response::Claimed { id, .. } = ledger.handle(Request::Claim(shot.claim), TimeMs(100))
        else {
            panic!("claim failed");
        };
        let mut photo = shot.photo;
        photo.label(id, &WatermarkConfig::default()).unwrap();
        photo
    }

    fn setup() -> (LocalLedgers, Aggregator) {
        let tsa = TimestampAuthority::from_seed(1);
        let mut ledgers = LocalLedgers::new();
        ledgers.add(Ledger::new(LedgerConfig::new(LedgerId(0)), tsa.clone()));
        ledgers.add(Ledger::new(LedgerConfig::new(LedgerId(1)), tsa));
        // Disable custodial claiming so unlabeled attack results are
        // visible as rejections (strict-policy aggregator).
        let agg = Aggregator::new(AggregatorConfig {
            custodial_claiming: false,
            derivative_check: false,
            ..AggregatorConfig::default()
        });
        (ledgers, agg)
    }

    #[test]
    fn metadata_strip_alone_is_self_defeating() {
        let (mut ledgers, mut agg) = setup();
        let labeled = labeled_photo(&mut ledgers);
        let (attacked, report) = destruction_attack(&labeled, &[], &WatermarkConfig::default());
        assert!(report.watermark_survived, "no distortion applied");
        assert!(report.label_state_inconsistent);
        let decision =
            upload_decision_for_attacked(attacked, &mut agg, &mut ledgers, TimeMs(1_000));
        assert_eq!(decision, UploadDecision::DeniedInconsistentLabel);
    }

    #[test]
    fn mild_distortion_does_not_free_the_photo() {
        let (mut ledgers, mut agg) = setup();
        let labeled = labeled_photo(&mut ledgers);
        let ops = [Manipulation::Jpeg(70), Manipulation::Brightness(10)];
        let (attacked, report) = destruction_attack(&labeled, &ops, &WatermarkConfig::default());
        assert!(
            report.watermark_survived,
            "mild distortion must not kill the watermark"
        );
        let decision =
            upload_decision_for_attacked(attacked, &mut agg, &mut ledgers, TimeMs(1_000));
        assert_eq!(decision, UploadDecision::DeniedInconsistentLabel);
    }

    #[test]
    fn heavy_distortion_kills_watermark_but_photo_stays_unsharable() {
        let (mut ledgers, mut agg) = setup();
        let labeled = labeled_photo(&mut ledgers);
        let ops = [
            Manipulation::Jpeg(5),
            Manipulation::Noise {
                sigma: 60.0,
                seed: 7,
            },
            Manipulation::Jpeg(5),
        ];
        let (attacked, report) = destruction_attack(&labeled, &ops, &WatermarkConfig::default());
        assert!(!report.watermark_survived, "heavy distortion should win");
        assert!(
            report.psnr_db < 25.0,
            "and cost severe quality loss: {} dB",
            report.psnr_db
        );
        // Now unlabeled → strict aggregator rejects anyway.
        let decision =
            upload_decision_for_attacked(attacked, &mut agg, &mut ledgers, TimeMs(1_000));
        assert_eq!(decision, UploadDecision::DeniedUnlabeled);
    }

    #[test]
    fn custodial_aggregator_reclaims_destroyed_uploads() {
        // With custodial claiming on, even a successfully destroyed photo
        // re-enters IRS governance under the aggregator's key (§3.2),
        // which is what enables a later appeal takedown.
        let tsa = TimestampAuthority::from_seed(2);
        let mut ledgers = LocalLedgers::new();
        ledgers.add(Ledger::new(LedgerConfig::new(LedgerId(0)), tsa.clone()));
        ledgers.add(Ledger::new(LedgerConfig::new(LedgerId(1)), tsa));
        let mut agg = Aggregator::new(AggregatorConfig {
            custodial_claiming: true,
            derivative_check: false,
            ..AggregatorConfig::default()
        });
        let labeled = labeled_photo(&mut ledgers);
        let ops = [
            Manipulation::Jpeg(5),
            Manipulation::Noise {
                sigma: 60.0,
                seed: 8,
            },
            Manipulation::Jpeg(5),
        ];
        let (attacked, report) = destruction_attack(&labeled, &ops, &WatermarkConfig::default());
        assert!(!report.watermark_survived);
        let (decision, _) = agg.upload(attacked, &mut ledgers, TimeMs(1_000));
        assert!(matches!(decision, UploadDecision::Accepted(Some(_))));
        assert_eq!(agg.stats.custodial_claims, 1);
    }

    #[test]
    fn report_recipe_names() {
        let (mut ledgers, _) = setup();
        let labeled = labeled_photo(&mut ledgers);
        let ops = [Manipulation::Jpeg(50)];
        let (_, report) = destruction_attack(&labeled, &ops, &WatermarkConfig::default());
        assert_eq!(report.recipe, vec!["jpeg-q50".to_string()]);
        assert!(report.psnr_db > 20.0);
    }
}
