//! The sophisticated attack and its remedy, end to end (§5).
//!
//! "To distribute a photo that is currently revoked, a more sophisticated
//! attacker could claim the picture, mark it as not revoked, insert new
//! metadata and a matching watermark (erasing the old one), and then start
//! sharing it. IRS cannot prevent or detect this automatically … but must
//! rely on the aforementioned appeals process."

use irs_aggregator::{Aggregator, LedgerDirectory, LocalLedgers};
use irs_core::camera::Camera;
use irs_core::claim::{ClaimRequest, RevocationStatus, RevokeRequest};
use irs_core::ids::{LedgerId, RecordId};
use irs_core::photo::PhotoFile;
use irs_core::policy::UploadDecision;
use irs_core::time::TimeMs;
use irs_core::wallet::OwnerWallet;
use irs_core::wire::{Request, Response};
use irs_crypto::Keypair;
use irs_imaging::manipulate::Manipulation;
use irs_imaging::watermark::WatermarkConfig;
use irs_ledger::{AppealOutcome, AppealsJudge};

/// Everything that happened in one run of the scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ReclaimOutcome {
    /// The owner's original record.
    pub original_id: RecordId,
    /// The attacker's re-claimed record.
    pub attacker_id: RecordId,
    /// Did the attacker's upload get past the aggregator *before* any
    /// appeal (with derivative checking disabled, per the paper this
    /// succeeds — IRS "cannot prevent or detect this automatically")?
    pub attack_upload_accepted: bool,
    /// With derivative checking enabled, was a second aggregator able to
    /// stop it automatically?
    pub derivative_check_caught_it: bool,
    /// Outcome of the owner's appeal.
    pub appeal: AppealOutcome,
    /// Status of the attacker's record after the appeal.
    pub attacker_record_final: RevocationStatus,
    /// Whether re-uploading the attacker's copy after the appeal is denied.
    pub post_appeal_upload_denied: bool,
}

/// Configuration for the scenario.
#[derive(Clone, Debug)]
pub struct ReclaimConfig {
    /// Manipulation the attacker applies before re-claiming (e.g. a
    /// transcode to dodge exact-hash matching).
    pub attacker_op: Option<Manipulation>,
    /// Watermark parameters.
    pub watermark: WatermarkConfig,
}

impl Default for ReclaimConfig {
    fn default() -> Self {
        ReclaimConfig {
            attacker_op: Some(Manipulation::Jpeg(65)),
            watermark: WatermarkConfig::default(),
        }
    }
}

/// Run the full scenario: claim → revoke → attacker re-claims → upload →
/// appeal → permanent revocation → re-upload denied.
pub fn run_reclaim_scenario(config: &ReclaimConfig) -> ReclaimOutcome {
    let tsa = irs_core::tsa::TimestampAuthority::from_seed(11);
    let tsa_key = tsa.public_key();
    let mut ledgers = LocalLedgers::new();
    ledgers.add(irs_ledger::Ledger::new(
        irs_ledger::LedgerConfig::new(LedgerId(0)),
        tsa.clone(),
    ));
    ledgers.add(irs_ledger::Ledger::new(
        irs_ledger::LedgerConfig::new(LedgerId(1)),
        tsa,
    ));

    // t=100: owner captures, claims, labels, and stores.
    let mut cam = Camera::new(31, 256, 256);
    let shot = cam.capture(100);
    let owner_keypair = shot.keypair.clone();
    let original_image = shot.photo.image.clone();
    let ledger = ledgers.get_mut(LedgerId(1)).unwrap();
    let Response::Claimed {
        id: original_id,
        timestamp,
    } = ledger.handle(Request::Claim(shot.claim), TimeMs(100))
    else {
        panic!("owner claim failed");
    };
    let mut wallet = OwnerWallet::new();
    wallet.store(shot, original_id, timestamp);

    // t=200: owner revokes.
    let rv = RevokeRequest::create(&owner_keypair, original_id, true, 0);
    ledger.handle(Request::Revoke(rv), TimeMs(200));

    // t=5000: the attacker has a copy (from before revocation), distorts
    // it, claims it under a fresh key, and labels it.
    let attacker_image = match &config.attacker_op {
        Some(op) => op.apply(&original_image),
        None => original_image.clone(),
    };
    let mut attacker_photo = PhotoFile::new(attacker_image);
    let attacker_kp = Keypair::from_seed(&[200u8; 32]);
    let attacker_claim = ClaimRequest::create(&attacker_kp, &attacker_photo.digest());
    let ledger = ledgers.get_mut(LedgerId(1)).unwrap();
    let Response::Claimed {
        id: attacker_id, ..
    } = ledger.handle(Request::Claim(attacker_claim), TimeMs(5_000))
    else {
        panic!("attacker claim failed");
    };
    attacker_photo
        .label(attacker_id, &config.watermark)
        .expect("attacker labels the copy");

    // t=6000: upload to a naive aggregator (no derivative DB): accepted —
    // the copy looks like a validly shared picture.
    let mut naive_agg = Aggregator::new(irs_aggregator::AggregatorConfig {
        derivative_check: false,
        ..Default::default()
    });
    let (naive_decision, _) = naive_agg.upload(attacker_photo.clone(), &mut ledgers, TimeMs(6_000));
    let attack_upload_accepted = naive_decision.accepted();

    // A second aggregator that hosts the original *and* runs the
    // derivative DB catches it automatically (§3.2's optional hardening).
    let mut hardened_agg = Aggregator::new(irs_aggregator::AggregatorConfig {
        derivative_check: true,
        ..Default::default()
    });
    // It hosted the original back when it was shareable (pre-revocation
    // hosting is modeled by inserting with its label).
    let mut hosted_original = wallet.get(&original_id).unwrap().original.clone();
    hosted_original
        .label(original_id, &config.watermark)
        .expect("label original");
    // Temporarily unrevoke for hosting realism is unnecessary: insert
    // directly through upload with a not-revoked snapshot is complex, so
    // host the original photo via the public API while it was unrevoked —
    // here we simply accept that the hardened aggregator has the original
    // in its hash DB from before revocation.
    {
        // Unrevoke at the current epoch, upload, re-revoke.
        let (_, epoch) = ledgers.query(original_id, TimeMs(6_100)).unwrap();
        let unrv = RevokeRequest::create(&owner_keypair, original_id, false, epoch);
        ledgers
            .get_mut(LedgerId(1))
            .unwrap()
            .handle(Request::Revoke(unrv), TimeMs(6_100));
        let (d, _) = hardened_agg.upload(hosted_original, &mut ledgers, TimeMs(6_150));
        debug_assert!(d.accepted());
        let (_, epoch) = ledgers.query(original_id, TimeMs(6_200)).unwrap();
        let rv = RevokeRequest::create(&owner_keypair, original_id, true, epoch);
        ledgers
            .get_mut(LedgerId(1))
            .unwrap()
            .handle(Request::Revoke(rv), TimeMs(6_200));
    }
    let (hardened_decision, _) =
        hardened_agg.upload(attacker_photo.clone(), &mut ledgers, TimeMs(6_300));
    let derivative_check_caught_it = matches!(
        hardened_decision,
        UploadDecision::DeniedDerivedFromClaimed(_)
    );

    // t=10000: the owner notices the copy and appeals to the ledger.
    let evidence = wallet.appeal_evidence(&original_id).expect("evidence");
    let mut judge = AppealsJudge::default();
    let appeal = judge.adjudicate(
        ledgers.get_mut(LedgerId(1)).unwrap(),
        &evidence,
        attacker_id,
        &attacker_photo,
        &tsa_key,
        TimeMs(10_000),
    );

    let attacker_record_final = ledgers
        .query(attacker_id, TimeMs(10_001))
        .map(|(s, _)| s)
        .unwrap_or(RevocationStatus::NotRevoked);

    // t=11000: re-uploading the attacker's copy is now denied everywhere.
    let (post_decision, _) = naive_agg.upload(attacker_photo, &mut ledgers, TimeMs(11_000));
    let post_appeal_upload_denied = !post_decision.accepted();

    ReclaimOutcome {
        original_id,
        attacker_id,
        attack_upload_accepted,
        derivative_check_caught_it,
        appeal,
        attacker_record_final,
        post_appeal_upload_denied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_narrative_holds_with_transcoded_copy() {
        let outcome = run_reclaim_scenario(&ReclaimConfig::default());
        // "IRS cannot prevent or detect this automatically" (naive agg):
        assert!(outcome.attack_upload_accepted);
        // …though the optional robust-hash DB does catch it:
        assert!(outcome.derivative_check_caught_it);
        // The appeal resolves it:
        assert_eq!(outcome.appeal, AppealOutcome::Upheld);
        assert_eq!(
            outcome.attacker_record_final,
            RevocationStatus::PermanentlyRevoked
        );
        assert!(outcome.post_appeal_upload_denied);
    }

    #[test]
    fn exact_copy_variant() {
        let outcome = run_reclaim_scenario(&ReclaimConfig {
            attacker_op: None,
            ..Default::default()
        });
        assert!(outcome.attack_upload_accepted);
        assert_eq!(outcome.appeal, AppealOutcome::Upheld);
        assert!(outcome.post_appeal_upload_denied);
    }

    #[test]
    fn records_are_distinct() {
        let outcome = run_reclaim_scenario(&ReclaimConfig::default());
        assert_ne!(outcome.original_id, outcome.attacker_id);
    }
}
