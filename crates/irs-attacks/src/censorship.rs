//! Censorship coercion and the non-revocable ledger defense (§5).
//!
//! "One might worry that government authorities could use their influence
//! on owners or ledgers to force photos to be revoked. … nonprofit groups
//! could create ledgers for specific types of photos … that document
//! human-rights violations … These ledgers could register photos and not
//! allow their revocation (and would deny the appeals process if it
//! appeared the appeal was done under duress)."

#[cfg(test)]
use irs_core::claim::ClaimRequest;
use irs_core::claim::{RevocationStatus, RevokeRequest};
use irs_core::ids::LedgerId;
use irs_core::time::TimeMs;
use irs_core::tsa::TimestampAuthority;
use irs_core::wire::{Request, Response};
#[cfg(test)]
use irs_crypto::Digest;
use irs_crypto::Keypair;
use irs_ledger::{codes, Ledger, LedgerConfig, LedgerPolicy};

/// Outcome of a coercion attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoercionOutcome {
    /// The content was revoked — coercion succeeded.
    Revoked,
    /// The ledger refused on policy grounds — the evidence stays up.
    RefusedByPolicy,
}

/// Attempt to coerce revocation of a record: the authority has compelled
/// the owner to produce a validly signed revoke request. A standard ledger
/// complies; a non-revocable ledger refuses.
pub fn coerce_revocation(
    ledger: &mut Ledger,
    owner: &Keypair,
    id: irs_core::ids::RecordId,
    now: TimeMs,
) -> CoercionOutcome {
    let (_, epoch) = ledger.store().status(&id).expect("record exists");
    let rv = RevokeRequest::create(owner, id, true, epoch);
    match ledger.handle(Request::Revoke(rv), now) {
        Response::RevokeAck {
            status: RevocationStatus::Revoked,
            ..
        } => CoercionOutcome::Revoked,
        Response::Error { code, .. } if code == codes::POLICY => CoercionOutcome::RefusedByPolicy,
        other => panic!("unexpected response {other:?}"),
    }
}

/// Build the standard/nonprofit pair used by tests and the example.
pub fn evidence_ledger_pair(seed: u64) -> (Ledger, Ledger) {
    let tsa = TimestampAuthority::from_seed(seed);
    let standard = Ledger::new(LedgerConfig::new(LedgerId(10)), tsa.clone());
    let mut cfg = LedgerConfig::new(LedgerId(11));
    cfg.policy = LedgerPolicy::NonRevocable;
    let nonprofit = Ledger::new(cfg, tsa);
    (standard, nonprofit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claim(ledger: &mut Ledger, seed: u8) -> (irs_core::ids::RecordId, Keypair) {
        let kp = Keypair::from_seed(&[seed; 32]);
        let req = ClaimRequest::create(&kp, &Digest::of(&[seed]));
        match ledger.handle(Request::Claim(req), TimeMs(10)) {
            Response::Claimed { id, .. } => (id, kp),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn standard_ledger_is_coercible() {
        let (mut standard, _) = evidence_ledger_pair(1);
        let (id, kp) = claim(&mut standard, 1);
        assert_eq!(
            coerce_revocation(&mut standard, &kp, id, TimeMs(100)),
            CoercionOutcome::Revoked
        );
        assert_eq!(
            standard.store().status(&id).unwrap().0,
            RevocationStatus::Revoked
        );
    }

    #[test]
    fn nonprofit_ledger_resists_coercion() {
        let (_, mut nonprofit) = evidence_ledger_pair(2);
        let (id, kp) = claim(&mut nonprofit, 2);
        assert_eq!(
            coerce_revocation(&mut nonprofit, &kp, id, TimeMs(100)),
            CoercionOutcome::RefusedByPolicy
        );
        // Evidence stays viewable.
        assert_eq!(
            nonprofit.store().status(&id).unwrap().0,
            RevocationStatus::NotRevoked
        );
    }

    #[test]
    fn nonprofit_still_answers_queries_normally() {
        let (_, mut nonprofit) = evidence_ledger_pair(3);
        let (id, _) = claim(&mut nonprofit, 3);
        match nonprofit.handle(Request::Query { id }, TimeMs(50)) {
            Response::Status { status, .. } => {
                assert_eq!(status, RevocationStatus::NotRevoked)
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
