//! The upload pipeline, rechecker, and derivative database.

use crate::directory::LedgerDirectory;
use irs_core::claim::ClaimRequest;
use irs_core::freshness::FreshnessProof;
use irs_core::ids::{LedgerId, RecordId};
use irs_core::photo::{LabelState, PhotoFile};
use irs_core::policy::UploadDecision;
use irs_core::time::TimeMs;
use irs_crypto::Keypair;
use irs_imaging::phash::{dct_hash_256, Hash256, MatchVerdict, RobustMatcher};
use irs_imaging::watermark::WatermarkConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Aggregator behavior knobs.
#[derive(Clone, Debug)]
pub struct AggregatorConfig {
    /// Claim unlabeled uploads custodially (vs rejecting them).
    pub custodial_claiming: bool,
    /// Which ledger custodial claims go to.
    pub home_ledger: LedgerId,
    /// Re-validate hosted photos at this interval.
    pub recheck_interval_ms: u64,
    /// Check uploads against the robust-hash DB of hosted content.
    pub derivative_check: bool,
    /// Watermark parameters (label reading and custodial labeling).
    pub watermark: WatermarkConfig,
    /// Keygen seed for custodial claims.
    pub seed: u64,
}

impl Default for AggregatorConfig {
    fn default() -> Self {
        AggregatorConfig {
            custodial_claiming: true,
            home_ledger: LedgerId(0),
            recheck_interval_ms: 3_600_000,
            derivative_check: true,
            watermark: WatermarkConfig::default(),
            seed: 0,
        }
    }
}

/// A photo the aggregator hosts.
#[derive(Clone, Debug)]
pub struct HostedPhoto {
    /// The photo as stored.
    pub photo: PhotoFile,
    /// Its governing record, if claimed.
    pub record: Option<RecordId>,
    /// Last successful revocation check.
    pub last_checked: TimeMs,
    /// Whether it is currently served.
    pub visible: bool,
    /// Latest freshness proof (stapled into responses).
    pub proof: Option<FreshnessProof>,
}

/// Ingest/serving counters, split into baseline work and IRS-added work so
/// E10 can report the overhead fraction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AggregatorStats {
    /// Uploads attempted.
    pub uploads: u64,
    /// Uploads accepted.
    pub accepted: u64,
    /// Uploads denied (any reason).
    pub denied: u64,
    /// Ledger status queries issued (ingest + recheck).
    pub ledger_queries: u64,
    /// Custodial claims made.
    pub custodial_claims: u64,
    /// Watermark extractions performed.
    pub watermark_reads: u64,
    /// Robust-hash computations performed.
    pub hash_computations: u64,
    /// Photos taken down by rechecks.
    pub takedowns: u64,
    /// Freshness proofs fetched.
    pub proofs_fetched: u64,
}

/// Result of one recheck sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecheckReport {
    /// Photos examined this sweep.
    pub checked: u64,
    /// Newly hidden because their record became revoked.
    pub taken_down: u64,
    /// Restored because their record was unrevoked.
    pub restored: u64,
}

/// A content aggregator.
pub struct Aggregator {
    config: AggregatorConfig,
    hosted: HashMap<u64, HostedPhoto>,
    next_key: u64,
    /// Robust hashes of hosted content (key → hash), linear-scanned; real
    /// deployments index this, but our corpora are small.
    hash_db: Vec<(u64, Hash256)>,
    matcher: RobustMatcher,
    keygen: StdRng,
    /// Counters.
    pub stats: AggregatorStats,
}

impl Aggregator {
    /// Create an aggregator.
    pub fn new(config: AggregatorConfig) -> Aggregator {
        let keygen = StdRng::seed_from_u64(config.seed ^ 0x4147_4752_4547_4154);
        Aggregator {
            config,
            hosted: HashMap::new(),
            next_key: 0,
            hash_db: Vec::new(),
            matcher: RobustMatcher::default(),
            keygen,
            stats: AggregatorStats::default(),
        }
    }

    /// Hosted photo count.
    pub fn hosted_count(&self) -> usize {
        self.hosted.len()
    }

    /// Borrow a hosted photo.
    pub fn get(&self, key: u64) -> Option<&HostedPhoto> {
        self.hosted.get(&key)
    }

    /// The §3.2 upload pipeline. Returns the decision and, on acceptance,
    /// the hosting key.
    pub fn upload(
        &mut self,
        photo: PhotoFile,
        ledgers: &mut dyn LedgerDirectory,
        now: TimeMs,
    ) -> (UploadDecision, Option<u64>) {
        self.stats.uploads += 1;
        self.stats.watermark_reads += 1;
        let reading = photo.read_label(&self.config.watermark);
        let decision = match reading.state() {
            LabelState::Labeled(id) => {
                self.stats.ledger_queries += 1;
                match ledgers.query(id, now) {
                    Some((status, _)) if status.allows_viewing() => {
                        // Derivative check: does this content match hosted
                        // content claimed under a *different* record?
                        if let Some(existing) = self.find_derivative(&photo, Some(id)) {
                            UploadDecision::DeniedDerivedFromClaimed(existing)
                        } else {
                            UploadDecision::Accepted(None)
                        }
                    }
                    Some(_) => UploadDecision::DeniedRevoked(id),
                    None => UploadDecision::DeniedUnverifiable,
                }
            }
            LabelState::Inconsistent => UploadDecision::DeniedInconsistentLabel,
            LabelState::Unlabeled => {
                if let Some(existing) = self.find_derivative(&photo, None) {
                    UploadDecision::DeniedDerivedFromClaimed(existing)
                } else if self.config.custodial_claiming {
                    UploadDecision::Accepted(None) // custodial id filled below
                } else {
                    UploadDecision::DeniedUnlabeled
                }
            }
        };

        match decision {
            UploadDecision::Accepted(_) => {
                let (record, photo) = match reading.state() {
                    LabelState::Labeled(id) => (Some(id), photo),
                    LabelState::Unlabeled if self.config.custodial_claiming => {
                        match self.claim_custodially(photo, ledgers, now) {
                            Ok((id, labeled)) => (Some(id), labeled),
                            Err(original) => {
                                // Ledger unreachable or photo too small to
                                // watermark: host untracked.
                                (None, original)
                            }
                        }
                    }
                    _ => (None, photo),
                };
                let key = self.host(photo, record, now);
                let decision = UploadDecision::Accepted(
                    record.filter(|_| matches!(reading.state(), LabelState::Unlabeled)),
                );
                self.stats.accepted += 1;
                (decision, Some(key))
            }
            denied => {
                self.stats.denied += 1;
                (denied, None)
            }
        }
    }

    fn claim_custodially(
        &mut self,
        mut photo: PhotoFile,
        ledgers: &mut dyn LedgerDirectory,
        now: TimeMs,
    ) -> Result<(RecordId, PhotoFile), PhotoFile> {
        let mut seed = [0u8; 32];
        self.keygen.fill(&mut seed);
        let keypair = Keypair::from_seed(&seed);
        let request = ClaimRequest::create(&keypair, &photo.digest());
        let Some((id, _tok)) = ledgers.claim_custodial(self.config.home_ledger, request, now)
        else {
            return Err(photo);
        };
        self.stats.custodial_claims += 1;
        if photo.label(id, &self.config.watermark).is_err() {
            // Too small to watermark; keep metadata-only label.
            photo
                .metadata
                .set(irs_imaging::MetadataKey::IrsRecordId, id.to_string());
        }
        Ok((id, photo))
    }

    fn host(&mut self, photo: PhotoFile, record: Option<RecordId>, now: TimeMs) -> u64 {
        let key = self.next_key;
        self.next_key += 1;
        self.stats.hash_computations += 1;
        let hash = dct_hash_256(&photo.image);
        self.hash_db.push((key, hash));
        self.hosted.insert(
            key,
            HostedPhoto {
                photo,
                record,
                last_checked: now,
                visible: true,
                proof: None,
            },
        );
        key
    }

    /// Upload accompanied by a C2PA-style provenance chain (§3.2's
    /// derivative path: "the intention is to encourage those making
    /// derivative images to transfer the metadata to the modified
    /// version"). A chain that (a) verifies, (b) terminates in exactly
    /// this content, and (c) roots at a claimed capture lets a legitimate
    /// edit be governed by the *original's* record even when the edit
    /// destroyed the watermark — so revoking the original also removes the
    /// derivative. An invalid or unrooted chain falls back to the plain
    /// §3.2 pipeline.
    pub fn upload_with_provenance(
        &mut self,
        photo: PhotoFile,
        chain: &irs_core::provenance::ProvenanceChain,
        ledgers: &mut dyn LedgerDirectory,
        now: TimeMs,
    ) -> (UploadDecision, Option<u64>) {
        let verified = chain.verify(&photo.digest()).is_ok();
        let Some(record) = chain.irs_record().filter(|_| verified) else {
            return self.upload(photo, ledgers, now);
        };
        self.stats.uploads += 1;
        self.stats.ledger_queries += 1;
        match ledgers.query(record, now) {
            Some((status, _)) if status.allows_viewing() => {
                // Host under the original's record: the derivative is now
                // revocable through it.
                let key = self.host(photo, Some(record), now);
                self.stats.accepted += 1;
                (UploadDecision::Accepted(Some(record)), Some(key))
            }
            Some(_) => {
                self.stats.denied += 1;
                (UploadDecision::DeniedRevoked(record), None)
            }
            None => {
                self.stats.denied += 1;
                (UploadDecision::DeniedUnverifiable, None)
            }
        }
    }

    /// Robust-hash scan: hosted content matching this photo whose record
    /// differs from `claimed_as`.
    fn find_derivative(
        &mut self,
        photo: &PhotoFile,
        claimed_as: Option<RecordId>,
    ) -> Option<RecordId> {
        if !self.config.derivative_check {
            return None;
        }
        self.stats.hash_computations += 1;
        let hash = dct_hash_256(&photo.image);
        for (key, existing_hash) in &self.hash_db {
            if self
                .matcher
                .verdict(irs_imaging::phash::hamming256(&hash, existing_hash))
                == MatchVerdict::Derived
            {
                if let Some(hosted) = self.hosted.get(key) {
                    if let Some(record) = hosted.record {
                        if claimed_as != Some(record) {
                            return Some(record);
                        }
                    }
                }
            }
        }
        None
    }

    /// Periodic revalidation (§3.2 "periodically rechecks"). Only photos
    /// whose `last_checked` is older than the configured interval are
    /// queried; fresh proofs are stapled for serving.
    pub fn recheck(&mut self, ledgers: &mut dyn LedgerDirectory, now: TimeMs) -> RecheckReport {
        let mut report = RecheckReport::default();
        for hosted in self.hosted.values_mut() {
            let Some(record) = hosted.record else {
                continue;
            };
            if now.since(hosted.last_checked) < self.config.recheck_interval_ms {
                continue;
            }
            report.checked += 1;
            self.stats.ledger_queries += 1;
            let Some((status, _)) = ledgers.query(record, now) else {
                continue; // unreachable: keep prior state, retry next sweep
            };
            hosted.last_checked = now;
            let should_be_visible = status.allows_viewing();
            if hosted.visible && !should_be_visible {
                hosted.visible = false;
                report.taken_down += 1;
                self.stats.takedowns += 1;
            } else if !hosted.visible && should_be_visible {
                hosted.visible = true;
                report.restored += 1;
            }
            if should_be_visible {
                if let Some(proof) = ledgers.proof(record, now) {
                    self.stats.proofs_fetched += 1;
                    hosted.proof = Some(proof);
                }
            }
        }
        report
    }

    /// Serve a photo: `None` if hidden. Includes the stapled freshness
    /// proof when held (§3.2: responses include "cryptographic proof that
    /// it has recently verified the non-revoked status").
    pub fn serve(&self, key: u64) -> Option<(&PhotoFile, Option<&FreshnessProof>)> {
        let hosted = self.hosted.get(&key)?;
        if !hosted.visible {
            return None;
        }
        Some((&hosted.photo, hosted.proof.as_ref()))
    }

    /// Baseline (non-IRS) ops per upload, for the E10 overhead fraction:
    /// decode + dedupe-hash + store + thumbnail ≈ 4 units of work; IRS
    /// adds watermark read (≈1), ledger query (≈0.1 — network-bound, not
    /// CPU), and a hash-db probe (shared with dedupe). The benches measure
    /// real CPU time; this constant documents the unit model.
    pub const BASELINE_OPS_PER_UPLOAD: f64 = 4.0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::LocalLedgers;
    use irs_core::camera::Camera;
    use irs_core::tsa::TimestampAuthority;
    use irs_core::wire::{Request, Response};
    use irs_imaging::manipulate::Manipulation;
    use irs_ledger::{Ledger, LedgerConfig};

    fn setup() -> (Aggregator, LocalLedgers) {
        let tsa = TimestampAuthority::from_seed(1);
        let mut ledgers = LocalLedgers::new();
        ledgers.add(Ledger::new(LedgerConfig::new(LedgerId(0)), tsa.clone()));
        ledgers.add(Ledger::new(LedgerConfig::new(LedgerId(1)), tsa));
        (Aggregator::new(AggregatorConfig::default()), ledgers)
    }

    /// Owner claims + labels a photo on ledger 1.
    fn owner_photo(
        ledgers: &mut LocalLedgers,
        cam_seed: u64,
        revoke: bool,
    ) -> (PhotoFile, RecordId, Keypair) {
        let mut cam = Camera::new(cam_seed, 256, 256);
        let shot = cam.capture(100);
        let ledger = ledgers.get_mut(LedgerId(1)).unwrap();
        let Response::Claimed { id, .. } = ledger.handle(Request::Claim(shot.claim), TimeMs(100))
        else {
            panic!("claim failed");
        };
        let mut photo = shot.photo;
        photo.label(id, &WatermarkConfig::default()).unwrap();
        if revoke {
            let rv = irs_core::claim::RevokeRequest::create(&shot.keypair, id, true, 0);
            ledger.handle(Request::Revoke(rv), TimeMs(200));
        }
        (photo, id, shot.keypair)
    }

    #[test]
    fn valid_labeled_upload_accepted() {
        let (mut agg, mut ledgers) = setup();
        let (photo, _id, _) = owner_photo(&mut ledgers, 1, false);
        let (decision, key) = agg.upload(photo, &mut ledgers, TimeMs(1_000));
        assert!(decision.accepted());
        assert!(agg.serve(key.unwrap()).is_some());
        assert_eq!(agg.stats.ledger_queries, 1);
    }

    #[test]
    fn revoked_upload_denied() {
        let (mut agg, mut ledgers) = setup();
        let (photo, id, _) = owner_photo(&mut ledgers, 2, true);
        let (decision, key) = agg.upload(photo, &mut ledgers, TimeMs(1_000));
        assert_eq!(decision, UploadDecision::DeniedRevoked(id));
        assert!(key.is_none());
        assert_eq!(agg.stats.denied, 1);
    }

    #[test]
    fn stripped_metadata_denied() {
        let (mut agg, mut ledgers) = setup();
        let (mut photo, _, _) = owner_photo(&mut ledgers, 3, false);
        photo.metadata.strip_all();
        let (decision, _) = agg.upload(photo, &mut ledgers, TimeMs(1_000));
        assert_eq!(decision, UploadDecision::DeniedInconsistentLabel);
    }

    #[test]
    fn unlabeled_upload_custodially_claimed() {
        let (mut agg, mut ledgers) = setup();
        let photo = PhotoFile::new(irs_imaging::PhotoGenerator::new(50).generate(0, 256, 256));
        let (decision, key) = agg.upload(photo, &mut ledgers, TimeMs(1_000));
        let UploadDecision::Accepted(Some(custodial_id)) = decision else {
            panic!("expected custodial acceptance, got {decision:?}");
        };
        assert_eq!(custodial_id.ledger, LedgerId(0));
        assert_eq!(agg.stats.custodial_claims, 1);
        // Hosted copy now carries the custodial label.
        let hosted = agg.get(key.unwrap()).unwrap();
        assert_eq!(hosted.record, Some(custodial_id));
        let reading = hosted.photo.read_label(&WatermarkConfig::default());
        assert_eq!(reading.metadata_id, Some(custodial_id));
    }

    #[test]
    fn unlabeled_rejected_when_policy_says_so() {
        let (_, mut ledgers) = setup();
        let mut agg = Aggregator::new(AggregatorConfig {
            custodial_claiming: false,
            ..AggregatorConfig::default()
        });
        let photo = PhotoFile::new(irs_imaging::PhotoGenerator::new(51).generate(0, 128, 128));
        let (decision, _) = agg.upload(photo, &mut ledgers, TimeMs(1));
        assert_eq!(decision, UploadDecision::DeniedUnlabeled);
    }

    #[test]
    fn recheck_takes_down_newly_revoked() {
        let (mut agg, mut ledgers) = setup();
        let (photo, id, keypair) = owner_photo(&mut ledgers, 4, false);
        let (_, key) = agg.upload(photo, &mut ledgers, TimeMs(1_000));
        let key = key.unwrap();
        assert!(agg.serve(key).is_some());
        // Owner revokes after upload.
        let (_, epoch) = ledgers
            .get(LedgerId(1))
            .unwrap()
            .store()
            .status(&id)
            .unwrap();
        let rv = irs_core::claim::RevokeRequest::create(&keypair, id, true, epoch);
        ledgers
            .get_mut(LedgerId(1))
            .unwrap()
            .handle(Request::Revoke(rv), TimeMs(2_000));
        // Too early: interval not elapsed.
        let r0 = agg.recheck(&mut ledgers, TimeMs(2_000));
        assert_eq!(r0.checked, 0);
        // After the interval the sweep takes it down.
        let r1 = agg.recheck(&mut ledgers, TimeMs(1_000 + 3_600_000));
        assert_eq!(r1.taken_down, 1);
        assert!(agg.serve(key).is_none());
        // Owner unrevokes; next sweep restores.
        let (_, epoch) = ledgers
            .get(LedgerId(1))
            .unwrap()
            .store()
            .status(&id)
            .unwrap();
        let unrv = irs_core::claim::RevokeRequest::create(&keypair, id, false, epoch);
        ledgers
            .get_mut(LedgerId(1))
            .unwrap()
            .handle(Request::Revoke(unrv), TimeMs(3_000));
        let r2 = agg.recheck(&mut ledgers, TimeMs(1_000 + 2 * 3_600_000));
        assert_eq!(r2.restored, 1);
        assert!(agg.serve(key).is_some());
    }

    #[test]
    fn recheck_staples_freshness_proof() {
        let (mut agg, mut ledgers) = setup();
        let (photo, _, _) = owner_photo(&mut ledgers, 5, false);
        let (_, key) = agg.upload(photo, &mut ledgers, TimeMs(0));
        agg.recheck(&mut ledgers, TimeMs(3_600_000));
        let (_, proof) = agg.serve(key.unwrap()).unwrap();
        let proof = proof.expect("proof stapled");
        let ledger_key = ledgers.get(LedgerId(1)).unwrap().public_key();
        assert!(proof.verify(&ledger_key, TimeMs(3_700_000)));
    }

    #[test]
    fn derivative_upload_with_different_claim_denied() {
        let (mut agg, mut ledgers) = setup();
        let (photo, id, _) = owner_photo(&mut ledgers, 6, false);
        let original_image = photo.image.clone();
        let (d1, _) = agg.upload(photo, &mut ledgers, TimeMs(1_000));
        assert!(d1.accepted());
        // Attacker transcodes the image, strips the label, and re-claims
        // under their own key on ledger 1.
        let attacker_image = Manipulation::Jpeg(60).apply(&original_image);
        let mut attacker_photo = PhotoFile::new(attacker_image);
        let attacker_kp = Keypair::from_seed(&[77u8; 32]);
        let claim = ClaimRequest::create(&attacker_kp, &attacker_photo.digest());
        let ledger = ledgers.get_mut(LedgerId(1)).unwrap();
        let Response::Claimed {
            id: attacker_id, ..
        } = ledger.handle(Request::Claim(claim), TimeMs(2_000))
        else {
            panic!("claim failed");
        };
        attacker_photo
            .label(attacker_id, &WatermarkConfig::default())
            .unwrap();
        let (d2, _) = agg.upload(attacker_photo, &mut ledgers, TimeMs(3_000));
        assert_eq!(d2, UploadDecision::DeniedDerivedFromClaimed(id));
    }

    #[test]
    fn provenance_chain_governs_watermarkless_derivative() {
        use irs_core::provenance::{Action, ProvenanceChain};
        let (mut agg, mut ledgers) = setup();
        // Owner captures + claims; an editor crops hard enough that the
        // derivative carries no readable label.
        let mut cam = Camera::new(60, 256, 256);
        let shot = cam.capture(100);
        let camera_kp = shot.keypair.clone();
        let ledger = ledgers.get_mut(LedgerId(1)).unwrap();
        let Response::Claimed { id, .. } = ledger.handle(Request::Claim(shot.claim), TimeMs(100))
        else {
            panic!("claim failed");
        };
        let derivative = PhotoFile::new(
            shot.photo.image.resize(96, 96).unwrap(), // label-destroying edit
        );
        let mut chain =
            ProvenanceChain::capture(&camera_kp, shot.photo.digest(), Some(id), TimeMs(100));
        let editor_kp = Keypair::from_seed(&[61u8; 32]);
        chain.append(
            &editor_kp,
            derivative.digest(),
            Action::Edited("thumbnail".into()),
            TimeMs(200),
        );
        // With the chain: accepted under the ORIGINAL record.
        let (decision, key) =
            agg.upload_with_provenance(derivative.clone(), &chain, &mut ledgers, TimeMs(300));
        assert_eq!(decision, UploadDecision::Accepted(Some(id)));
        assert_eq!(agg.get(key.unwrap()).unwrap().record, Some(id));
        // Revoking the original takes the derivative down at recheck.
        let (_, epoch) = ledgers.query(id, TimeMs(301)).unwrap();
        let rv = irs_core::claim::RevokeRequest::create(&camera_kp, id, true, epoch);
        ledgers
            .get_mut(LedgerId(1))
            .unwrap()
            .handle(Request::Revoke(rv), TimeMs(400));
        let report = agg.recheck(&mut ledgers, TimeMs(300 + 3_600_000));
        assert_eq!(report.taken_down, 1);
    }

    #[test]
    fn revoked_provenance_root_denies_upload() {
        use irs_core::provenance::{Action, ProvenanceChain};
        let (mut agg, mut ledgers) = setup();
        let (_, id, keypair) = {
            let (photo, id, kp) = owner_photo(&mut ledgers, 62, true); // revoked
            (photo, id, kp)
        };
        let derivative = PhotoFile::new(irs_imaging::PhotoGenerator::new(62).generate(9, 128, 128));
        let mut chain = ProvenanceChain::capture(
            &keypair,
            irs_crypto::Digest::of(b"orig"),
            Some(id),
            TimeMs(1),
        );
        chain.append(
            &keypair,
            derivative.digest(),
            Action::Edited("edit".into()),
            TimeMs(2),
        );
        let (decision, _) =
            agg.upload_with_provenance(derivative, &chain, &mut ledgers, TimeMs(10));
        assert_eq!(decision, UploadDecision::DeniedRevoked(id));
    }

    #[test]
    fn tampered_chain_falls_back_to_plain_pipeline() {
        use irs_core::provenance::{Action, ProvenanceChain};
        let (mut agg, mut ledgers) = setup();
        let (_, id, keypair) = {
            let (photo, id, kp) = owner_photo(&mut ledgers, 63, false);
            (photo, id, kp)
        };
        // Chain whose final content does NOT match the upload.
        let unrelated = PhotoFile::new(irs_imaging::PhotoGenerator::new(63).generate(3, 160, 160));
        let mut chain =
            ProvenanceChain::capture(&keypair, irs_crypto::Digest::of(b"x"), Some(id), TimeMs(1));
        chain.append(
            &keypair,
            irs_crypto::Digest::of(b"not the upload"),
            Action::Edited("e".into()),
            TimeMs(2),
        );
        // Falls back to plain rules: unlabeled → custodial claim.
        let (decision, _) = agg.upload_with_provenance(unrelated, &chain, &mut ledgers, TimeMs(10));
        assert!(matches!(decision, UploadDecision::Accepted(Some(custodial)) if custodial != id));
    }

    #[test]
    fn stats_accumulate() {
        let (mut agg, mut ledgers) = setup();
        let (photo, _, _) = owner_photo(&mut ledgers, 7, false);
        agg.upload(photo, &mut ledgers, TimeMs(0));
        let s = agg.stats;
        assert_eq!(s.uploads, 1);
        assert_eq!(s.accepted, 1);
        assert_eq!(s.watermark_reads, 1);
        assert!(s.hash_computations >= 1);
    }
}
