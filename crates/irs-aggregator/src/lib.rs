//! The content aggregator — the eventual solution's enforcement point
//! (§3.2).
//!
//! "Whenever a photo is uploaded to a content aggregator, the aggregator
//! checks with the associated ledger to make sure that the photo is not
//! revoked, and thereafter periodically rechecks the revocation status."
//!
//! * [`directory`] — [`LedgerDirectory`]: how an aggregator reaches the
//!   ecosystem's ledgers (in-process for simulations; the TCP prototype in
//!   `irs-net` provides a networked implementation of the same trait);
//! * [`ingest`] — [`Aggregator`]: the §3.2 upload pipeline
//!   (metadata/watermark agreement → ledger check → derivative check →
//!   custodial claiming), periodic rechecking, freshness-proof stapling,
//!   and the op-cost accounting behind the paper's "only a small
//!   fractional addition to their current workflow" claim (experiment
//!   E10).

pub mod directory;
pub mod ingest;

pub use directory::{LedgerDirectory, LocalLedgers};
pub use ingest::{Aggregator, AggregatorConfig, AggregatorStats, HostedPhoto, RecheckReport};
