//! How aggregators (and other components) reach the ecosystem's ledgers.
//!
//! The trait keeps the ingest pipeline sans-io: simulations pass
//! [`LocalLedgers`] (in-process ledger instances); the TCP prototype
//! implements the same trait over the wire.

use irs_core::claim::{ClaimRequest, RevocationStatus};
use irs_core::freshness::FreshnessProof;
use irs_core::ids::{LedgerId, RecordId};
use irs_core::time::TimeMs;
use irs_core::tsa::TimestampToken;
use irs_ledger::Ledger;
use std::collections::HashMap;

/// Access to the ledger ecosystem.
pub trait LedgerDirectory {
    /// Query a record's status. `None` = ledger unknown/unreachable.
    fn query(&mut self, id: RecordId, now: TimeMs) -> Option<(RevocationStatus, u64)>;

    /// Claim custodially on the given ledger.
    fn claim_custodial(
        &mut self,
        ledger: LedgerId,
        request: ClaimRequest,
        now: TimeMs,
    ) -> Option<(RecordId, TimestampToken)>;

    /// Request a freshness proof for a record.
    fn proof(&mut self, id: RecordId, now: TimeMs) -> Option<FreshnessProof>;
}

/// In-process directory over owned [`Ledger`] instances.
#[derive(Default)]
pub struct LocalLedgers {
    ledgers: HashMap<LedgerId, Ledger>,
}

impl LocalLedgers {
    /// Empty directory.
    pub fn new() -> LocalLedgers {
        LocalLedgers::default()
    }

    /// Add a ledger.
    pub fn add(&mut self, ledger: Ledger) {
        self.ledgers.insert(ledger.id(), ledger);
    }

    /// Borrow a ledger.
    pub fn get(&self, id: LedgerId) -> Option<&Ledger> {
        self.ledgers.get(&id)
    }

    /// Borrow a ledger mutably.
    pub fn get_mut(&mut self, id: LedgerId) -> Option<&mut Ledger> {
        self.ledgers.get_mut(&id)
    }

    /// Iterate ledgers.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Ledger> {
        self.ledgers.values_mut()
    }
}

impl LedgerDirectory for LocalLedgers {
    fn query(&mut self, id: RecordId, _now: TimeMs) -> Option<(RevocationStatus, u64)> {
        self.ledgers.get(&id.ledger)?.store().status(&id)
    }

    fn claim_custodial(
        &mut self,
        ledger: LedgerId,
        request: ClaimRequest,
        now: TimeMs,
    ) -> Option<(RecordId, TimestampToken)> {
        Some(self.ledgers.get_mut(&ledger)?.claim_custodial(request, now))
    }

    fn proof(&mut self, id: RecordId, now: TimeMs) -> Option<FreshnessProof> {
        let ledger = self.ledgers.get(&id.ledger)?;
        let (status, _) = ledger.store().status(&id)?;
        Some(ledger.issue_proof(id, status, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::tsa::TimestampAuthority;
    use irs_crypto::{Digest, Keypair};
    use irs_ledger::LedgerConfig;

    fn directory() -> LocalLedgers {
        let tsa = TimestampAuthority::from_seed(1);
        let mut d = LocalLedgers::new();
        d.add(Ledger::new(LedgerConfig::new(LedgerId(1)), tsa.clone()));
        d.add(Ledger::new(LedgerConfig::new(LedgerId(2)), tsa));
        d
    }

    #[test]
    fn query_routes_by_ledger() {
        let mut d = directory();
        let kp = Keypair::from_seed(&[1u8; 32]);
        let req = ClaimRequest::create(&kp, &Digest::of(b"x"));
        let (id, _) = d.claim_custodial(LedgerId(2), req, TimeMs(5)).unwrap();
        assert_eq!(id.ledger, LedgerId(2));
        assert_eq!(
            d.query(id, TimeMs(6)),
            Some((RevocationStatus::NotRevoked, 0))
        );
        // Unknown ledger.
        let ghost = RecordId::new(LedgerId(9), 0);
        assert_eq!(d.query(ghost, TimeMs(6)), None);
    }

    #[test]
    fn proof_issuance() {
        let mut d = directory();
        let kp = Keypair::from_seed(&[2u8; 32]);
        let req = ClaimRequest::create(&kp, &Digest::of(b"y"));
        let (id, _) = d.claim_custodial(LedgerId(1), req, TimeMs(5)).unwrap();
        let proof = d.proof(id, TimeMs(10)).unwrap();
        let ledger_key = d.get(LedgerId(1)).unwrap().public_key();
        assert!(proof.verify(&ledger_key, TimeMs(20)));
    }
}
