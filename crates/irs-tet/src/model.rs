//! The adoption-dynamics model.
//!
//! Deterministic discrete-time (monthly) dynamical system over three
//! coupled quantities:
//!
//! * `b(t)` — fraction of users on IRS-enabled browsers (logistic growth,
//!   capped by the first-mover vendors' market share until incumbents
//!   adopt);
//! * `P(t)` — claimed-photo population (users on IRS browsers auto-
//!   register photos);
//! * per-aggregator adoption — an incumbent adopts when its utility turns
//!   positive, and adoption is absorbing.
//!
//! Aggregator utility mirrors the paper's two forces plus the costs that
//! hold incumbents back today:
//!
//! ```text
//! U_i(t) = brand_i · b(t)                     (pro-privacy branding)
//!        + peer · adopted_fraction(t)          (competitive pressure)
//!        + liability · b(t) · min(P/P_ref, 1)  (knowable-intent lawsuits)
//!        − engagement_i                        (engagement loss)
//!        − integration_cost_i                  (one-time, amortized)
//! ```
//!
//! All magnitudes are in arbitrary utility units; what the experiments
//! measure is *where the flip happens* and how it moves with parameters,
//! not absolute values.

/// One incumbent content aggregator.
#[derive(Clone, Debug, PartialEq)]
pub struct Actor {
    /// Display name.
    pub name: String,
    /// Weight on privacy branding (higher = markets itself on privacy).
    pub brand_weight: f64,
    /// Perceived engagement loss from honoring revocations.
    pub engagement_loss: f64,
    /// Amortized integration cost.
    pub integration_cost: f64,
}

impl Actor {
    /// Convenience constructor.
    pub fn new(
        name: &str,
        brand_weight: f64,
        engagement_loss: f64,
        integration_cost: f64,
    ) -> Actor {
        Actor {
            name: name.to_string(),
            brand_weight,
            engagement_loss,
            integration_cost,
        }
    }
}

/// Global model parameters.
#[derive(Clone, Debug)]
pub struct ModelParams {
    /// Initial IRS browser share (the first movers' day-one default-on
    /// user base as a fraction of all users).
    pub initial_browser_share: f64,
    /// Market share ceiling of the first-mover vendors (b cannot exceed
    /// this until an incumbent aggregator adopts).
    pub first_mover_cap: f64,
    /// Logistic growth rate of browser adoption per month.
    pub browser_growth_rate: f64,
    /// Total Internet users.
    pub total_users: f64,
    /// Photos auto-claimed per IRS user per month.
    pub claims_per_user_month: f64,
    /// Liability force weight.
    pub liability_weight: f64,
    /// Photo population at which liability exposure saturates (the paper
    /// situates the flip "anywhere close to 100 billion photos").
    pub liability_reference_photos: f64,
    /// Competitive-pressure weight once peers adopt.
    pub peer_weight: f64,
    /// Months to simulate.
    pub months: usize,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            initial_browser_share: 0.01,
            first_mover_cap: 0.35,
            browser_growth_rate: 0.25,
            total_users: 4.0e9,
            claims_per_user_month: 60.0,
            liability_weight: 1.2,
            liability_reference_photos: 1.0e11,
            peer_weight: 0.5,
            months: 240,
        }
    }
}

/// The default incumbent roster: a privacy-branded player, two mainstream
/// giants, and an engagement-maximizing holdout.
pub fn default_actors() -> Vec<Actor> {
    vec![
        Actor::new("privacy-brand", 0.9, 0.10, 0.15),
        Actor::new("mainstream-a", 0.35, 0.25, 0.20),
        Actor::new("mainstream-b", 0.30, 0.30, 0.20),
        Actor::new("engagement-max", 0.05, 0.60, 0.25),
    ]
}

/// Snapshot of one simulated month.
#[derive(Clone, Debug, PartialEq)]
pub struct StepState {
    /// Month index.
    pub month: usize,
    /// IRS browser share.
    pub browser_share: f64,
    /// Claimed photos.
    pub claimed_photos: f64,
    /// Which actors have adopted.
    pub adopted: Vec<bool>,
}

/// Full simulation output.
#[derive(Clone, Debug)]
pub struct SimulationResult {
    /// Monthly snapshots.
    pub timeline: Vec<StepState>,
    /// Per-actor adoption month (`None` = never within the horizon).
    pub adoption_month: Vec<Option<usize>>,
    /// Claimed-photo population at each actor's adoption.
    pub adoption_population: Vec<Option<f64>>,
}

impl SimulationResult {
    /// Month the first incumbent flipped.
    pub fn first_flip(&self) -> Option<usize> {
        self.adoption_month.iter().flatten().copied().min()
    }

    /// Whether every actor adopted within the horizon.
    pub fn fully_transformed(&self) -> bool {
        self.adoption_month.iter().all(|m| m.is_some())
    }

    /// Final browser share.
    pub fn final_browser_share(&self) -> f64 {
        self.timeline.last().map(|s| s.browser_share).unwrap_or(0.0)
    }
}

/// The model: parameters plus the actor roster.
#[derive(Clone, Debug)]
pub struct AdoptionModel {
    /// Global parameters.
    pub params: ModelParams,
    /// Incumbent aggregators.
    pub actors: Vec<Actor>,
}

impl AdoptionModel {
    /// Model with default calibration.
    pub fn with_defaults() -> AdoptionModel {
        AdoptionModel {
            params: ModelParams::default(),
            actors: default_actors(),
        }
    }

    /// Utility of actor `i` in the given state.
    fn utility(
        &self,
        actor: &Actor,
        browser_share: f64,
        photos: f64,
        adopted_fraction: f64,
    ) -> f64 {
        let liability_exposure =
            browser_share * (photos / self.params.liability_reference_photos).min(1.0);
        actor.brand_weight * browser_share
            + self.params.peer_weight * adopted_fraction
            + self.params.liability_weight * liability_exposure
            - actor.engagement_loss
            - actor.integration_cost
    }

    /// Run the simulation.
    pub fn run(&self) -> SimulationResult {
        let p = &self.params;
        let n = self.actors.len();
        let mut browser_share = p.initial_browser_share.clamp(0.0, 1.0);
        let mut photos = 0.0f64;
        let mut adopted = vec![false; n];
        let mut adoption_month = vec![None; n];
        let mut adoption_population = vec![None; n];
        let mut timeline = Vec::with_capacity(p.months);

        for month in 0..p.months {
            // Aggregator decisions first (based on last month's state).
            let adopted_fraction = adopted.iter().filter(|&&a| a).count() as f64 / n.max(1) as f64;
            for (i, actor) in self.actors.iter().enumerate() {
                if !adopted[i] && self.utility(actor, browser_share, photos, adopted_fraction) > 0.0
                {
                    adopted[i] = true;
                    adoption_month[i] = Some(month);
                    adoption_population[i] = Some(photos);
                }
            }
            // Browser adoption: logistic toward the applicable cap. Once
            // any incumbent adopts, IRS support stops being a niche
            // browser feature and the cap lifts.
            let cap = if adopted.iter().any(|&a| a) {
                1.0
            } else {
                p.first_mover_cap
            };
            let growth =
                p.browser_growth_rate * browser_share * (1.0 - browser_share / cap.max(1e-9));
            browser_share = (browser_share + growth).clamp(0.0, cap);
            // Photo growth: IRS users auto-register.
            photos += p.total_users * browser_share * p.claims_per_user_month;

            timeline.push(StepState {
                month,
                browser_share,
                claimed_photos: photos,
                adopted: adopted.clone(),
            });
        }

        SimulationResult {
            timeline,
            adoption_month,
            adoption_population,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_calibration_transforms_the_ecosystem() {
        let result = AdoptionModel::with_defaults().run();
        assert!(result.fully_transformed(), "all incumbents should adopt");
        let first = result.first_flip().expect("some flip");
        assert!(first > 6, "flip should not be instant (month {first})");
    }

    #[test]
    fn flip_population_near_paper_scale() {
        // The paper argues incentives kick in "anywhere close to 100
        // billion photos"; the *mainstream* incumbents (who need the
        // liability force, not just branding) should flip within an order
        // of magnitude of 1e11 under default calibration.
        let model = AdoptionModel::with_defaults();
        let result = model.run();
        // Actor 1 = mainstream-a.
        let pop = result.adoption_population[1].expect("mainstream-a adopts");
        assert!(
            (1.0e10..1.0e12).contains(&pop),
            "mainstream flip at {pop:.2e} photos"
        );
    }

    #[test]
    fn privacy_brand_flips_first_engagement_max_last() {
        let result = AdoptionModel::with_defaults().run();
        let months: Vec<usize> = result
            .adoption_month
            .iter()
            .map(|m| m.expect("adopts"))
            .collect();
        assert!(months[0] < months[1], "privacy brand before mainstream");
        assert!(months[2] < months[3], "mainstream before engagement-max");
    }

    #[test]
    fn no_bootstrap_no_transformation() {
        let mut model = AdoptionModel::with_defaults();
        model.params.initial_browser_share = 0.0;
        let result = model.run();
        assert_eq!(result.first_flip(), None, "ecosystem failure persists");
        assert_eq!(result.final_browser_share(), 0.0);
    }

    #[test]
    fn no_incentives_no_adoption() {
        let mut model = AdoptionModel::with_defaults();
        model.params.liability_weight = 0.0;
        model.params.peer_weight = 0.0;
        for a in model.actors.iter_mut() {
            a.brand_weight = 0.0;
        }
        let result = model.run();
        assert_eq!(result.first_flip(), None);
        // Browser share still grows to the first-mover cap...
        assert!(result.final_browser_share() <= model.params.first_mover_cap + 1e-9);
        assert!(result.final_browser_share() > 0.3);
    }

    #[test]
    fn stronger_liability_flips_earlier() {
        let mut weak = AdoptionModel::with_defaults();
        weak.params.liability_weight = 0.8;
        let mut strong = AdoptionModel::with_defaults();
        strong.params.liability_weight = 2.5;
        let weak_flip = weak.run().adoption_month[1];
        let strong_flip = strong.run().adoption_month[1];
        match (weak_flip, strong_flip) {
            (Some(w), Some(s)) => assert!(s < w, "strong {s} < weak {w}"),
            (None, Some(_)) => {} // weak never flips: also consistent
            other => panic!("unexpected flips {other:?}"),
        }
    }

    #[test]
    fn peer_pressure_cascades() {
        // With peer pressure, laggards adopt soon after the leaders; with
        // none, the holdout lags much further (or never adopts).
        let with = AdoptionModel::with_defaults().run();
        let mut no_peer = AdoptionModel::with_defaults();
        no_peer.params.peer_weight = 0.0;
        let without = no_peer.run();
        let gap_with = match (with.adoption_month[3], with.adoption_month[0]) {
            (Some(last), Some(first)) => (last - first) as i64,
            _ => i64::MAX,
        };
        let gap_without = match (without.adoption_month[3], without.adoption_month[0]) {
            (Some(last), Some(first)) => (last - first) as i64,
            _ => i64::MAX,
        };
        assert!(
            gap_with < gap_without,
            "peer pressure should compress the adoption window ({gap_with} vs {gap_without})"
        );
    }

    #[test]
    fn adoption_is_absorbing_and_timeline_consistent() {
        let result = AdoptionModel::with_defaults().run();
        for actor in 0..4 {
            let mut seen = false;
            for s in &result.timeline {
                if seen {
                    assert!(s.adopted[actor], "adoption must not revert");
                }
                seen |= s.adopted[actor];
            }
        }
        // Photos monotone nondecreasing.
        assert!(result
            .timeline
            .windows(2)
            .all(|w| w[0].claimed_photos <= w[1].claimed_photos));
    }

    #[test]
    fn browser_share_capped_until_flip() {
        let result = AdoptionModel::with_defaults().run();
        let first_flip = result.first_flip().unwrap();
        for s in &result.timeline[..first_flip.saturating_sub(1)] {
            assert!(s.browser_share <= 0.35 + 1e-9);
        }
        assert!(result.final_browser_share() > 0.9, "post-flip growth to ~1");
    }
}
