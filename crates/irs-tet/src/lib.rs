//! Technology Ecosystem Transformation (TET) adoption dynamics.
//!
//! The paper's central systems-economics claim (§1, §4.1, §4.4): a
//! bootstrap deployment by browser first-movers grows the claimed-photo
//! population until "the ecosystem incentives … kick in and the major
//! content aggregators would support IRS" — via two channels:
//!
//! 1. **competitive advantage**: "for those companies branding themselves
//!    as 'pro-privacy' this would be seen as a competitive advantage";
//! 2. **legal liability**: "their lack of support could become a legal
//!    liability (e.g., if a claimed and revoked picture were shown by an
//!    aggregator, and harm resulted, the aggregator could potentially be
//!    sued because the owner's intent was clearly knowable)".
//!
//! This module makes those forces an explicit deterministic dynamical
//! system so experiment E11 can sweep its parameters and locate the
//! incumbent flip threshold (the paper estimates it near the bootstrap
//! design's ~100 B-photo capacity ceiling).

pub mod model;

pub use model::{Actor, AdoptionModel, ModelParams, SimulationResult, StepState};
