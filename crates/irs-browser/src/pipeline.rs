//! The §4.3 page-load model.
//!
//! Reproduces the paper's three-part latency argument:
//!
//! 1. page loads take seconds (HTTP Archive: < 1.8 s is "good", > 60 % of
//!    sites exceed 2.5 s) while ledger checks take tens of milliseconds —
//!    experiment E1 regenerates this comparison;
//! 2. "one need not wait for page resources to be fully loaded before
//!    issuing revocation checks — one can generally check a photo as soon
//!    as its metadata has been downloaded", hiding check latency behind
//!    pixel transfer — experiment E2 sweeps check latency and finds the
//!    zero-delay threshold for a pinterest-like page;
//! 3. the model is deliberately simple: fixed connection parallelism,
//!    bandwidth-bounded transfers, and a metadata-prefix point per image.

use irs_simnet::Link;
use irs_workload::pages::{PageModel, ResourceKind};
use irs_workload::population::PhotoMeta;
use rand::rngs::StdRng;

/// Bytes of an image that must arrive before its label is readable
/// (headers + EXIF segment).
const METADATA_PREFIX_BYTES: u64 = 4_096;

/// Network environment for a page load.
#[derive(Clone, Debug)]
pub struct NetworkParams {
    /// One-way latency to the content site.
    pub site_link: Link,
    /// Last-mile bandwidth in bytes per millisecond (3125 ≈ 25 Mbit/s).
    pub bandwidth_bytes_per_ms: u64,
    /// Simultaneous connections to the site (browsers use ~6/host).
    pub parallel_connections: usize,
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams {
            site_link: irs_simnet::latency::profiles::browser_to_site(),
            bandwidth_bytes_per_ms: 3_125,
            parallel_connections: 6,
        }
    }
}

/// When the browser issues a revocation check for an image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckTiming {
    /// The extension issues a tiny metadata-prefix prefetch for every
    /// image as soon as the preload scanner discovers its URL (right
    /// after the document parses), so checks overlap the *entire* image
    /// queue — the strongest form of the paper's "check a photo as soon
    /// as its metadata has been downloaded".
    EarlyPrefetch,
    /// The check is issued when the metadata prefix of the image's own
    /// (queued) fetch arrives — no extra requests, less overlap.
    MetadataFirst,
    /// Only once the image fully arrives (the naive ablation).
    AfterFullFetch,
}

/// Supplies the latency of one revocation check.
pub trait CheckService {
    /// Milliseconds from issuing the check to having the answer.
    fn check_ms(&mut self, photo: &PhotoMeta) -> u64;

    /// Number of checks that reached beyond the local machine (for load
    /// accounting; default: every check).
    fn remote_checks(&self) -> u64 {
        0
    }
}

/// No IRS at all (baseline).
pub struct NoChecks;

impl CheckService for NoChecks {
    fn check_ms(&mut self, _photo: &PhotoMeta) -> u64 {
        0
    }
}

/// Every check costs a fixed latency (the E2 sweep variable).
pub struct FixedCheck(pub u64);

impl CheckService for FixedCheck {
    fn check_ms(&mut self, _photo: &PhotoMeta) -> u64 {
        self.0
    }
}

/// Every check performs one RTT over a link (direct-to-ledger model).
pub struct LinkCheck {
    /// The link to the validation service.
    pub link: Link,
    /// RNG for latency draws.
    pub rng: StdRng,
    count: u64,
}

impl LinkCheck {
    /// Create from a link and an RNG.
    pub fn new(link: Link, rng: StdRng) -> LinkCheck {
        LinkCheck {
            link,
            rng,
            count: 0,
        }
    }
}

impl CheckService for LinkCheck {
    fn check_ms(&mut self, _photo: &PhotoMeta) -> u64 {
        self.count += 1;
        self.link.rtt(&mut self.rng)
    }

    fn remote_checks(&self) -> u64 {
        self.count
    }
}

/// Result of loading one page.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadReport {
    /// First contentful paint: all render-blocking resources done.
    pub fcp_ms: u64,
    /// Every resource fetched and validated.
    pub page_complete_ms: u64,
    /// Page completion if no IRS checks existed (same fetch schedule).
    pub page_complete_no_irs_ms: u64,
    /// Per-claimed-image added display delay (validation past pixels).
    pub image_delays_ms: Vec<u64>,
    /// Claimed images checked.
    pub checks_issued: u64,
    /// Total bytes transferred.
    pub total_bytes: u64,
}

impl LoadReport {
    /// Largest single image delay.
    pub fn max_image_delay(&self) -> u64 {
        self.image_delays_ms.iter().copied().max().unwrap_or(0)
    }

    /// Added whole-page latency from IRS.
    pub fn page_delay(&self) -> u64 {
        self.page_complete_ms
            .saturating_sub(self.page_complete_no_irs_ms)
    }
}

/// Loads pages under a network model and a check-timing policy.
pub struct PageLoader {
    /// Network environment.
    pub params: NetworkParams,
    /// When checks are issued.
    pub timing: CheckTiming,
    /// RNG for fetch-latency draws.
    pub rng: StdRng,
}

impl PageLoader {
    /// Create a loader.
    pub fn new(params: NetworkParams, timing: CheckTiming, rng: StdRng) -> PageLoader {
        PageLoader {
            params,
            timing,
            rng,
        }
    }

    /// Simulate one page load.
    pub fn load(&mut self, page: &PageModel, checks: &mut dyn CheckService) -> LoadReport {
        let bw = self.params.bandwidth_bytes_per_ms.max(1);
        let mut total_bytes = 0u64;

        // Document first.
        let mut resources = page.resources.iter();
        let Some(doc) = resources.next() else {
            return LoadReport {
                fcp_ms: 0,
                page_complete_ms: 0,
                page_complete_no_irs_ms: 0,
                image_delays_ms: Vec::new(),
                checks_issued: 0,
                total_bytes: 0,
            };
        };
        let doc_done = self.params.site_link.rtt(&mut self.rng) + doc.size_bytes / bw;
        total_bytes += doc.size_bytes;

        let slots = self.params.parallel_connections.max(1);
        let mut slot_free = vec![doc_done; slots];

        let mut fcp = if doc.render_blocking { doc_done } else { 0 };
        let mut complete = doc_done;
        let mut complete_no_irs = doc_done;
        let mut image_delays = Vec::new();
        let mut checks_issued = 0u64;

        for res in resources {
            total_bytes += res.size_bytes;
            // Earliest-free connection.
            let (slot_idx, &start) = slot_free
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("at least one slot");
            let rtt = self.params.site_link.rtt(&mut self.rng);
            let headers_at = start + rtt;
            let metadata_at = headers_at + METADATA_PREFIX_BYTES.min(res.size_bytes) / bw;
            let pixels_at = headers_at + res.size_bytes / bw;
            slot_free[slot_idx] = pixels_at;

            if res.render_blocking {
                fcp = fcp.max(pixels_at);
            }
            complete_no_irs = complete_no_irs.max(pixels_at);

            let displayable = match res.kind {
                ResourceKind::ClaimedImage(meta) => {
                    checks_issued += 1;
                    let issue_at = match self.timing {
                        CheckTiming::EarlyPrefetch => {
                            // Prefix fetch right after parse: one RTT plus
                            // the 4 KiB prefix; bandwidth contention is
                            // negligible at that size.
                            doc_done
                                + self.params.site_link.rtt(&mut self.rng)
                                + METADATA_PREFIX_BYTES / bw
                        }
                        CheckTiming::MetadataFirst => metadata_at,
                        CheckTiming::AfterFullFetch => pixels_at,
                    };
                    let check_done = issue_at + checks.check_ms(&meta);
                    image_delays.push(check_done.saturating_sub(pixels_at));
                    pixels_at.max(check_done)
                }
                _ => pixels_at,
            };
            complete = complete.max(displayable);
        }

        LoadReport {
            fcp_ms: fcp,
            page_complete_ms: complete,
            page_complete_no_irs_ms: complete_no_irs,
            image_delays_ms: image_delays,
            checks_issued,
            total_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_simnet::LatencyModel;
    use irs_workload::pages::PageModel;
    use irs_workload::population::{PhotoPopulation, PopulationConfig};
    use irs_workload::samplers::Zipf;
    use rand::SeedableRng;

    fn fixed_net(latency_ms: u64) -> NetworkParams {
        NetworkParams {
            site_link: Link::new(LatencyModel::Constant(latency_ms)),
            bandwidth_bytes_per_ms: 3_125,
            parallel_connections: 6,
        }
    }

    fn page(images: usize, claimed: f64) -> PageModel {
        let pop = PhotoPopulation::new(PopulationConfig {
            total: 10_000,
            ..PopulationConfig::default()
        });
        let zipf = Zipf::new(pop.public_count() as usize, 0.9);
        let mut rng = StdRng::seed_from_u64(9);
        PageModel::pinterest_like(images, claimed, &pop, &zipf, &mut rng)
    }

    fn loader(timing: CheckTiming) -> PageLoader {
        PageLoader::new(fixed_net(20), timing, StdRng::seed_from_u64(1))
    }

    #[test]
    fn baseline_without_checks_has_zero_delay() {
        let p = page(20, 0.8);
        let mut l = loader(CheckTiming::MetadataFirst);
        let report = l.load(&p, &mut NoChecks);
        assert_eq!(report.page_delay(), 0);
        assert_eq!(report.max_image_delay(), 0);
        assert!(report.fcp_ms > 0);
        assert!(report.page_complete_ms >= report.fcp_ms);
    }

    #[test]
    fn fast_checks_hide_behind_pixel_transfer() {
        // E2's core claim: with metadata-first checks, a modest check
        // latency adds no *page rendering* delay on an image-heavy page —
        // individual small images may display a hair late, but the page's
        // completion is bounded by large transfers elsewhere.
        let p = page(30, 1.0);
        let mut l = loader(CheckTiming::MetadataFirst);
        let report = l.load(&p, &mut FixedCheck(30));
        assert_eq!(
            report.page_delay(),
            0,
            "30 ms checks must not move page completion"
        );
        // And no image can be delayed by more than the check itself.
        assert!(report.max_image_delay() <= 30);
    }

    #[test]
    fn slow_checks_eventually_delay() {
        let p = page(30, 1.0);
        let mut l = loader(CheckTiming::MetadataFirst);
        let report = l.load(&p, &mut FixedCheck(5_000));
        assert!(report.max_image_delay() > 0, "5 s checks must be visible");
        assert!(report.page_delay() > 0);
    }

    #[test]
    fn metadata_first_beats_after_fetch() {
        let p = page(30, 1.0);
        let check = 100u64;
        let mut meta_first = loader(CheckTiming::MetadataFirst);
        let r1 = meta_first.load(&p, &mut FixedCheck(check));
        let mut after = loader(CheckTiming::AfterFullFetch);
        let r2 = after.load(&p, &mut FixedCheck(check));
        assert!(
            r1.max_image_delay() < r2.max_image_delay(),
            "metadata-first {} vs after-fetch {}",
            r1.max_image_delay(),
            r2.max_image_delay()
        );
        // After-fetch pays the full check on every image.
        assert_eq!(r2.max_image_delay(), check);
    }

    #[test]
    fn fcp_unaffected_by_image_checks() {
        // Checks only gate images, which never block first paint.
        let p = page(30, 1.0);
        let mut with = loader(CheckTiming::MetadataFirst);
        let r1 = with.load(&p, &mut FixedCheck(10_000));
        let mut without = loader(CheckTiming::MetadataFirst);
        let r2 = without.load(&p, &mut NoChecks);
        assert_eq!(r1.fcp_ms, r2.fcp_ms);
    }

    #[test]
    fn check_count_matches_claimed_images() {
        let p = page(25, 1.0);
        let mut l = loader(CheckTiming::MetadataFirst);
        let report = l.load(&p, &mut FixedCheck(10));
        assert_eq!(report.checks_issued as usize, p.claimed_count());
        assert_eq!(report.image_delays_ms.len(), p.claimed_count());
    }

    #[test]
    fn empty_page() {
        let mut l = loader(CheckTiming::MetadataFirst);
        let report = l.load(&PageModel::default(), &mut NoChecks);
        assert_eq!(report.page_complete_ms, 0);
    }

    #[test]
    fn parallelism_speeds_up_load() {
        let p = page(40, 0.0);
        let mut narrow = PageLoader::new(
            NetworkParams {
                parallel_connections: 1,
                ..fixed_net(20)
            },
            CheckTiming::MetadataFirst,
            StdRng::seed_from_u64(1),
        );
        let r1 = narrow.load(&p, &mut NoChecks);
        let mut wide = PageLoader::new(
            NetworkParams {
                parallel_connections: 8,
                ..fixed_net(20)
            },
            CheckTiming::MetadataFirst,
            StdRng::seed_from_u64(1),
        );
        let r2 = wide.load(&p, &mut NoChecks);
        assert!(r2.page_complete_ms < r1.page_complete_ms);
    }

    #[test]
    fn link_check_counts_remote() {
        let p = page(10, 1.0);
        let mut l = loader(CheckTiming::MetadataFirst);
        let mut svc = LinkCheck::new(
            Link::new(LatencyModel::Constant(25)),
            StdRng::seed_from_u64(3),
        );
        let report = l.load(&p, &mut svc);
        assert_eq!(svc.remote_checks(), report.checks_issued);
    }
}
