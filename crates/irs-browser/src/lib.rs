//! Browser-side IRS support — the bootstrap phase's first-mover component
//! (§4.1: "we believe the right place to make this intervention is within
//! browser software").
//!
//! * [`validator`] — the in-browser validation engine: reads labels,
//!   consults an optional in-browser filter (§4.4's "early adoption"
//!   variant), otherwise delegates to a proxy, and maps results through
//!   the viewer policy (Goal #3);
//! * [`pipeline`] — the §4.3 page-load model: resource fetch scheduling
//!   with limited connection parallelism, metadata-first revocation
//!   checks, first-contentful-paint accounting, and per-image IRS delay;
//! * [`remote`] — the validator driven end to end over a composed
//!   `irs_net` service stack (fresh, stale, and unreachable answers all
//!   mapped onto the right completion);
//! * [`scroll`] — scroll-session model for the §4.3 prototype experiment
//!   ("we did not notice additional delay when scrolling");
//! * [`sites`] — the §4.4 accountability mechanism: badge sites by their
//!   IRS behavior, "as \[browsers\] do with TLS icons".

pub mod pipeline;
pub mod remote;
pub mod scroll;
pub mod sites;
pub mod validator;

pub use pipeline::{CheckService, LoadReport, NetworkParams, PageLoader};
pub use remote::RemoteValidator;
pub use sites::{SiteBadge, SiteReputation};
pub use validator::{BrowserValidator, ValidationPlan};
