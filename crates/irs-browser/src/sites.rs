//! Site IRS-support marking (§4.4, closing paragraph).
//!
//! "Not all sites will adopt IRS after the bootstrap phase, but their
//! decision to not respect owner-privacy will be known because browsers
//! could mark such sites (as they do with TLS icons), third-party rating
//! services could publicize their lack of adoption, and search engines
//! might lower their rankings."
//!
//! The browser observes, per site: does it preserve IRS metadata, do its
//! responses carry fresh proofs, and does it serve photos whose records
//! stand revoked? Those observations roll up into a badge.

use irs_core::freshness::FreshnessProof;
use irs_core::photo::{LabelState, PhotoFile};
use irs_core::time::TimeMs;
use irs_crypto::PublicKey;
use irs_imaging::watermark::WatermarkConfig;
use std::collections::HashMap;

/// The browser-UI badge for a site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteBadge {
    /// Preserves labels and staples valid freshness proofs.
    IrsSupporting,
    /// Preserves labels but attaches no proofs (bootstrap-era neutral).
    Neutral,
    /// Strips labels or serves revoked content: marked, like a broken-TLS
    /// icon.
    MarkedNonCompliant,
    /// Not enough observations yet.
    Unknown,
}

/// Per-site observation counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SiteRecord {
    /// Photos observed from this site.
    pub photos_seen: u64,
    /// Photos whose labels arrived intact (both channels agree).
    pub labels_intact: u64,
    /// Photos whose labels were stripped/inconsistent.
    pub labels_damaged: u64,
    /// Responses carrying a verifying, fresh proof.
    pub valid_proofs: u64,
    /// Photos served while their record stood revoked (the liability
    /// event §4.1 predicts lawsuits over).
    pub revoked_served: u64,
}

/// Tracks per-site behavior and assigns badges.
#[derive(Default)]
pub struct SiteReputation {
    sites: HashMap<String, SiteRecord>,
    /// Observations required before leaving [`SiteBadge::Unknown`].
    pub min_observations: u64,
}

impl SiteReputation {
    /// New tracker requiring `min_observations` photos per site.
    pub fn new(min_observations: u64) -> SiteReputation {
        SiteReputation {
            sites: HashMap::new(),
            min_observations,
        }
    }

    /// Record one served photo from `site`. `revoked` is the validation
    /// verdict the browser reached for it; `proof` is whatever the site
    /// stapled; `trusted_ledger` verifies it.
    #[allow(clippy::too_many_arguments)] // one call site per validation verdict; a params struct would just rename the arguments
    pub fn observe(
        &mut self,
        site: &str,
        photo: &PhotoFile,
        revoked: bool,
        proof: Option<&FreshnessProof>,
        trusted_ledger: Option<&PublicKey>,
        wm: &WatermarkConfig,
        now: TimeMs,
    ) {
        let rec = self.sites.entry(site.to_string()).or_default();
        rec.photos_seen += 1;
        match photo.read_label(wm).state() {
            LabelState::Labeled(_) => rec.labels_intact += 1,
            LabelState::Inconsistent => rec.labels_damaged += 1,
            LabelState::Unlabeled => {}
        }
        if let (Some(p), Some(key)) = (proof, trusted_ledger) {
            if p.verify(key, now) {
                rec.valid_proofs += 1;
            }
        }
        if revoked {
            rec.revoked_served += 1;
        }
    }

    /// The record for a site.
    pub fn record(&self, site: &str) -> Option<&SiteRecord> {
        self.sites.get(site)
    }

    /// Badge for a site.
    pub fn badge(&self, site: &str) -> SiteBadge {
        let Some(rec) = self.sites.get(site) else {
            return SiteBadge::Unknown;
        };
        if rec.photos_seen < self.min_observations {
            return SiteBadge::Unknown;
        }
        // Any persistent revoked-serving or label damage marks the site.
        let damage_rate = rec.labels_damaged as f64 / rec.photos_seen as f64;
        if rec.revoked_served > 0 || damage_rate > 0.10 {
            return SiteBadge::MarkedNonCompliant;
        }
        let proof_rate = rec.valid_proofs as f64 / rec.photos_seen as f64;
        if proof_rate > 0.5 {
            SiteBadge::IrsSupporting
        } else {
            SiteBadge::Neutral
        }
    }

    /// Sites currently marked non-compliant — what a rating service would
    /// publish.
    pub fn marked_sites(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .sites
            .keys()
            .map(String::as_str)
            .filter(|s| self.badge(s) == SiteBadge::MarkedNonCompliant)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::claim::RevocationStatus;
    use irs_core::ids::{LedgerId, RecordId};
    use irs_crypto::Keypair;
    use irs_imaging::PhotoGenerator;

    fn wm() -> WatermarkConfig {
        WatermarkConfig::default()
    }

    fn labeled_photo() -> PhotoFile {
        let mut p = PhotoFile::new(PhotoGenerator::new(1).generate(0, 256, 256));
        p.label(RecordId::new(LedgerId(1), 1), &wm()).unwrap();
        p
    }

    fn proof(kp: &Keypair) -> FreshnessProof {
        FreshnessProof::issue(
            kp,
            RecordId::new(LedgerId(1), 1),
            RevocationStatus::NotRevoked,
            TimeMs(0),
            1_000_000,
        )
    }

    #[test]
    fn unknown_until_enough_observations() {
        let mut rep = SiteReputation::new(3);
        assert_eq!(rep.badge("a.example"), SiteBadge::Unknown);
        let photo = labeled_photo();
        rep.observe("a.example", &photo, false, None, None, &wm(), TimeMs(1));
        assert_eq!(rep.badge("a.example"), SiteBadge::Unknown);
    }

    #[test]
    fn proof_stapling_site_earns_supporting_badge() {
        let mut rep = SiteReputation::new(2);
        let kp = Keypair::from_seed(&[9u8; 32]);
        let photo = labeled_photo();
        let p = proof(&kp);
        for _ in 0..3 {
            rep.observe(
                "good.example",
                &photo,
                false,
                Some(&p),
                Some(&kp.public),
                &wm(),
                TimeMs(10),
            );
        }
        assert_eq!(rep.badge("good.example"), SiteBadge::IrsSupporting);
    }

    #[test]
    fn label_preserving_site_without_proofs_is_neutral() {
        let mut rep = SiteReputation::new(2);
        let photo = labeled_photo();
        for _ in 0..3 {
            rep.observe("meh.example", &photo, false, None, None, &wm(), TimeMs(1));
        }
        assert_eq!(rep.badge("meh.example"), SiteBadge::Neutral);
    }

    #[test]
    fn stripping_site_gets_marked() {
        let mut rep = SiteReputation::new(2);
        let mut stripped = labeled_photo();
        stripped.metadata.strip_all(); // watermark survives ⇒ inconsistent
        for _ in 0..3 {
            rep.observe(
                "strip.example",
                &stripped,
                false,
                None,
                None,
                &wm(),
                TimeMs(1),
            );
        }
        assert_eq!(rep.badge("strip.example"), SiteBadge::MarkedNonCompliant);
        assert_eq!(rep.marked_sites(), vec!["strip.example"]);
    }

    #[test]
    fn serving_revoked_content_gets_marked_immediately() {
        let mut rep = SiteReputation::new(2);
        let photo = labeled_photo();
        rep.observe("bad.example", &photo, false, None, None, &wm(), TimeMs(1));
        rep.observe("bad.example", &photo, true, None, None, &wm(), TimeMs(2));
        assert_eq!(rep.badge("bad.example"), SiteBadge::MarkedNonCompliant);
    }

    #[test]
    fn expired_proofs_do_not_count() {
        let mut rep = SiteReputation::new(1);
        let kp = Keypair::from_seed(&[9u8; 32]);
        let photo = labeled_photo();
        let p = proof(&kp); // valid for 1_000_000 ms from t=0
        for _ in 0..2 {
            rep.observe(
                "stale.example",
                &photo,
                false,
                Some(&p),
                Some(&kp.public),
                &wm(),
                TimeMs(2_000_000), // expired
            );
        }
        assert_eq!(rep.badge("stale.example"), SiteBadge::Neutral);
    }
}
