//! The in-browser validation engine.
//!
//! Sans-io, like the proxy: [`BrowserValidator::plan`] classifies a photo
//! into a local outcome or a needed proxy query; the embedding application
//! performs the I/O and calls [`BrowserValidator::complete`]. The §4.4
//! "early adoption" note — "one could use the same strategy to reduce the
//! load on the proxies by inserting a Bloom filter in browsers themselves"
//! — is the optional local filter.

use irs_core::claim::RevocationStatus;
use irs_core::ids::RecordId;
use irs_core::photo::{LabelReading, LabelState};
use irs_core::policy::{ValidationOutcome, ViewerPolicy};
use irs_core::time::TimeMs;
use irs_filters::{BloomFilter, Filter};
use irs_proxy::LruTtlCache;

/// What the validator decides for one photo.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidationPlan {
    /// Resolved locally.
    Local(ValidationOutcome),
    /// Must ask the proxy about this record, then call `complete`.
    AskProxy(RecordId),
}

/// Counters for the browser's validation traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ValidatorStats {
    /// Photos examined.
    pub examined: u64,
    /// Resolved by the in-browser filter.
    pub local_filter: u64,
    /// Resolved by the in-browser cache.
    pub local_cache: u64,
    /// Sent to the proxy.
    pub proxy_queries: u64,
    /// Photos with no label at all.
    pub unlabeled: u64,
}

/// The validation engine an IRS-enabled browser embeds.
pub struct BrowserValidator {
    /// Optional in-browser copy of the merged revoked-set filter.
    local_filter: Option<BloomFilter>,
    cache: LruTtlCache<RecordId, RevocationStatus>,
    /// The viewer policy in force.
    pub policy: ViewerPolicy,
    /// Counters.
    pub stats: ValidatorStats,
}

impl BrowserValidator {
    /// Create a validator. `cache_entries`/`cache_ttl_ms` bound local
    /// status reuse.
    pub fn new(policy: ViewerPolicy, cache_entries: usize, cache_ttl_ms: u64) -> Self {
        BrowserValidator {
            local_filter: None,
            cache: LruTtlCache::new(cache_entries.max(1), cache_ttl_ms),
            policy,
            stats: ValidatorStats::default(),
        }
    }

    /// Install (or replace) the in-browser filter.
    pub fn install_filter(&mut self, filter: BloomFilter) {
        self.local_filter = Some(filter);
    }

    /// Whether a local filter is installed.
    pub fn has_filter(&self) -> bool {
        self.local_filter.is_some()
    }

    /// Classify a photo given its label reading.
    pub fn plan(&mut self, reading: &LabelReading, now: TimeMs) -> ValidationPlan {
        self.stats.examined += 1;
        let id = match reading.state() {
            LabelState::Unlabeled => {
                self.stats.unlabeled += 1;
                return ValidationPlan::Local(ValidationOutcome::NotClaimed);
            }
            LabelState::Inconsistent => {
                // Viewer-side: advisory; see ViewerPolicy for handling.
                return ValidationPlan::Local(ValidationOutcome::InconsistentLabel);
            }
            LabelState::Labeled(id) => id,
        };
        if let Some(filter) = &self.local_filter {
            if !filter.contains(id.filter_key()) {
                self.stats.local_filter += 1;
                return ValidationPlan::Local(ValidationOutcome::Valid(id));
            }
        }
        if let Some(status) = self.cache.get(&id, now) {
            self.stats.local_cache += 1;
            return ValidationPlan::Local(outcome_for(id, status));
        }
        self.stats.proxy_queries += 1;
        ValidationPlan::AskProxy(id)
    }

    /// Feed back a proxy answer; returns the final outcome.
    pub fn complete(
        &mut self,
        id: RecordId,
        status: RevocationStatus,
        now: TimeMs,
    ) -> ValidationOutcome {
        self.cache.insert(id, status, now);
        outcome_for(id, status)
    }

    /// The proxy did not answer (timeout): policy decides.
    pub fn complete_unreachable(&mut self, id: RecordId) -> ValidationOutcome {
        ValidationOutcome::Unknown(id)
    }

    /// Feed back a *stale* proxy answer (a degraded proxy serving from
    /// its last-good state with an honest age, `Response::StatusStale`).
    ///
    /// A stale `Revoked` is always honored — acting on an old takedown
    /// is strictly safer than ignoring it. A stale `NotRevoked` is only
    /// trusted within `max_stale_ms`; beyond that the record may have
    /// been revoked since, so the answer degrades to `Unknown` and the
    /// viewer policy decides (fail-open shows it, Nongoal #4's bounded
    /// delay; fail-closed hides it).
    pub fn complete_stale(
        &mut self,
        id: RecordId,
        status: RevocationStatus,
        age_ms: u64,
        max_stale_ms: u64,
    ) -> ValidationOutcome {
        if !status.allows_viewing() {
            return ValidationOutcome::Revoked(id);
        }
        if age_ms <= max_stale_ms {
            // Deliberately NOT cached: a stale answer must not launder
            // itself into a fresh one on the next lookup.
            ValidationOutcome::Valid(id)
        } else {
            ValidationOutcome::Unknown(id)
        }
    }
}

fn outcome_for(id: RecordId, status: RevocationStatus) -> ValidationOutcome {
    if status.allows_viewing() {
        ValidationOutcome::Valid(id)
    } else {
        ValidationOutcome::Revoked(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::ids::LedgerId;
    use irs_core::policy::DisplayAction;

    fn rid(n: u64) -> RecordId {
        RecordId::new(LedgerId(1), n)
    }

    fn labeled(id: RecordId) -> LabelReading {
        LabelReading {
            metadata_id: Some(id),
            watermark_id: Some(id),
        }
    }

    fn validator() -> BrowserValidator {
        BrowserValidator::new(ViewerPolicy::default(), 64, 10_000)
    }

    #[test]
    fn unlabeled_resolves_locally() {
        let mut v = validator();
        let reading = LabelReading {
            metadata_id: None,
            watermark_id: None,
        };
        assert_eq!(
            v.plan(&reading, TimeMs(0)),
            ValidationPlan::Local(ValidationOutcome::NotClaimed)
        );
        assert_eq!(v.stats.unlabeled, 1);
    }

    #[test]
    fn inconsistent_label_resolves_locally() {
        let mut v = validator();
        let reading = LabelReading {
            metadata_id: Some(rid(1)),
            watermark_id: None,
        };
        assert_eq!(
            v.plan(&reading, TimeMs(0)),
            ValidationPlan::Local(ValidationOutcome::InconsistentLabel)
        );
    }

    #[test]
    fn labeled_without_filter_asks_proxy() {
        let mut v = validator();
        assert_eq!(
            v.plan(&labeled(rid(1)), TimeMs(0)),
            ValidationPlan::AskProxy(rid(1))
        );
        let outcome = v.complete(rid(1), RevocationStatus::Revoked, TimeMs(0));
        assert_eq!(outcome, ValidationOutcome::Revoked(rid(1)));
        // Cached now.
        assert_eq!(
            v.plan(&labeled(rid(1)), TimeMs(100)),
            ValidationPlan::Local(ValidationOutcome::Revoked(rid(1)))
        );
        assert_eq!(v.stats.local_cache, 1);
    }

    #[test]
    fn in_browser_filter_short_circuits() {
        let mut v = validator();
        let mut f = BloomFilter::with_params(1 << 12, 4, 0).unwrap();
        f.insert(rid(7).filter_key());
        v.install_filter(f);
        // rid(7) hits the revoked-set filter → proxy; rid(1000) misses →
        // definitely not revoked → locally valid.
        assert_eq!(
            v.plan(&labeled(rid(7)), TimeMs(0)),
            ValidationPlan::AskProxy(rid(7))
        );
        assert_eq!(
            v.plan(&labeled(rid(1000)), TimeMs(0)),
            ValidationPlan::Local(ValidationOutcome::Valid(rid(1000)))
        );
        assert_eq!(v.stats.local_filter, 1);
    }

    #[test]
    fn policy_drives_display() {
        let mut v = validator();
        let outcome = v.complete(rid(2), RevocationStatus::Revoked, TimeMs(0));
        assert_eq!(v.policy.display_action(outcome), DisplayAction::Placeholder);
        let ok = v.complete(rid(3), RevocationStatus::NotRevoked, TimeMs(0));
        assert_eq!(v.policy.display_action(ok), DisplayAction::Show);
    }

    #[test]
    fn unreachable_fails_open_by_default() {
        let mut v = validator();
        let outcome = v.complete_unreachable(rid(9));
        assert_eq!(v.policy.display_action(outcome), DisplayAction::Show);
    }

    #[test]
    fn stale_answers_degrade_by_age_and_severity() {
        let mut v = validator();
        // Stale revocation: honored at any age.
        assert_eq!(
            v.complete_stale(rid(5), RevocationStatus::Revoked, 999_999, 1_000),
            ValidationOutcome::Revoked(rid(5))
        );
        // Fresh-enough stale NotRevoked: still valid.
        assert_eq!(
            v.complete_stale(rid(6), RevocationStatus::NotRevoked, 500, 1_000),
            ValidationOutcome::Valid(rid(6))
        );
        // Too old: Unknown, and the default policy fails open.
        let outcome = v.complete_stale(rid(7), RevocationStatus::NotRevoked, 5_000, 1_000);
        assert_eq!(outcome, ValidationOutcome::Unknown(rid(7)));
        assert_eq!(v.policy.display_action(outcome), DisplayAction::Show);
        // Stale answers are not cached as fresh.
        assert_eq!(
            v.plan(&labeled(rid(6)), TimeMs(1)),
            ValidationPlan::AskProxy(rid(6))
        );
    }

    #[test]
    fn permanently_revoked_blocks() {
        let mut v = validator();
        let outcome = v.complete(rid(4), RevocationStatus::PermanentlyRevoked, TimeMs(0));
        assert_eq!(outcome, ValidationOutcome::Revoked(rid(4)));
    }
}
