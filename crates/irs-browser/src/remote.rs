//! The browser's remote validation path: a [`BrowserValidator`] driven
//! over a composed [`Service`] stack.
//!
//! [`BrowserValidator`] is sans-io — [`plan`](BrowserValidator::plan)
//! classifies, the embedder performs I/O, then feeds the answer back.
//! [`RemoteValidator`] is that embedder: it owns the validator plus any
//! service stack (a bare [`TcpTransport`], the full resilience ladder
//! from `irs_net::service::stacks`, or a `service_fn` mock in tests) and
//! maps each wire response onto the right completion:
//!
//! * `Status` → [`complete`](BrowserValidator::complete) (fresh, cached);
//! * `StatusStale` → [`complete_stale`](BrowserValidator::complete_stale)
//!   (honored within the staleness budget, never cached as fresh);
//! * anything else, including transport errors →
//!   [`complete_unreachable`](BrowserValidator::complete_unreachable)
//!   (the viewer policy decides).
//!
//! [`TcpTransport`]: irs_net::service::TcpTransport

use crate::validator::{BrowserValidator, ValidationPlan};
use irs_core::photo::LabelReading;
use irs_core::policy::ValidationOutcome;
use irs_core::time::TimeMs;
use irs_core::wire::{Request, Response};
use irs_net::service::CallCtx;
use irs_net::Service;
use irs_obs::SpanRecorder;
use std::sync::Arc;

/// A [`BrowserValidator`] wired to a proxy through a service stack.
pub struct RemoteValidator<S> {
    /// The sans-io validation engine (exposed for stats and policy).
    pub validator: BrowserValidator,
    service: S,
    /// How old a stale `NotRevoked` may be before it degrades to
    /// `Unknown` (see [`BrowserValidator::complete_stale`]).
    pub max_stale_ms: u64,
}

impl<S: Service> RemoteValidator<S> {
    /// Wrap `validator` around `service`. `max_stale_ms` bounds trust in
    /// stale not-revoked answers.
    pub fn new(validator: BrowserValidator, service: S, max_stale_ms: u64) -> Self {
        RemoteValidator {
            validator,
            service,
            max_stale_ms,
        }
    }

    /// Validate one photo end to end: plan locally, query the stack if
    /// needed, and map the reply to a final outcome.
    pub fn validate(&mut self, reading: &LabelReading, now: TimeMs) -> ValidationOutcome {
        self.validate_ctx(reading, now, &CallCtx::at(now))
    }

    /// [`validate`](Self::validate) with tracing attached: every service
    /// layer the query traverses records a span into `recorder`, so one
    /// call yields the per-layer latency breakdown
    /// ([`SpanRecorder::breakdown`]). Local plans (cache hits, unlabeled
    /// photos) never reach the stack and record nothing.
    pub fn validate_traced(
        &mut self,
        reading: &LabelReading,
        now: TimeMs,
        recorder: &Arc<SpanRecorder>,
    ) -> ValidationOutcome {
        let ctx = CallCtx::at(now).with_trace(recorder.clone());
        self.validate_ctx(reading, now, &ctx)
    }

    fn validate_ctx(
        &mut self,
        reading: &LabelReading,
        now: TimeMs,
        ctx: &CallCtx,
    ) -> ValidationOutcome {
        let id = match self.validator.plan(reading, now) {
            ValidationPlan::Local(outcome) => return outcome,
            ValidationPlan::AskProxy(id) => id,
        };
        let reply = self.service.call(Request::Query { id }, ctx);
        match reply {
            Ok(Response::Status { id, status, .. }) => self.validator.complete(id, status, now),
            Ok(Response::StatusStale { id, status, age_ms }) => {
                self.validator
                    .complete_stale(id, status, age_ms, self.max_stale_ms)
            }
            // Unavailable, unexpected replies, or transport failure: the
            // proxy could not answer; the viewer policy decides.
            Ok(_) | Err(_) => self.validator.complete_unreachable(id),
        }
    }

    /// The underlying service stack.
    pub fn get_ref(&self) -> &S {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::claim::RevocationStatus;
    use irs_core::ids::{LedgerId, RecordId};
    use irs_core::policy::ViewerPolicy;
    use irs_net::service::{service_fn, stacks};
    use irs_net::NetError;

    fn rid(n: u64) -> RecordId {
        RecordId::new(LedgerId(1), n)
    }

    fn labeled(id: RecordId) -> LabelReading {
        LabelReading {
            metadata_id: Some(id),
            watermark_id: Some(id),
        }
    }

    fn validator() -> BrowserValidator {
        BrowserValidator::new(ViewerPolicy::default(), 64, 10_000)
    }

    #[test]
    fn fresh_answers_complete_and_cache() {
        let service = service_fn(|req, _ctx| match req {
            Request::Query { id } => Ok(Response::Status {
                id,
                status: RevocationStatus::Revoked,
                epoch: 1,
            }),
            _ => panic!("validator must only send queries"),
        });
        let mut remote = RemoteValidator::new(validator(), service, 1_000);
        assert_eq!(
            remote.validate(&labeled(rid(1)), TimeMs(0)),
            ValidationOutcome::Revoked(rid(1))
        );
        // Second look is a local cache hit: the service is not consulted.
        assert_eq!(
            remote.validate(&labeled(rid(1)), TimeMs(10)),
            ValidationOutcome::Revoked(rid(1))
        );
        assert_eq!(remote.validator.stats.proxy_queries, 1);
        assert_eq!(remote.validator.stats.local_cache, 1);
    }

    #[test]
    fn stale_answers_respect_the_staleness_budget() {
        let service = service_fn(|req, _ctx| match req {
            Request::Query { id } => Ok(Response::StatusStale {
                id,
                status: RevocationStatus::NotRevoked,
                age_ms: if id.serial == 1 { 500 } else { 5_000 },
            }),
            _ => panic!("validator must only send queries"),
        });
        let mut remote = RemoteValidator::new(validator(), service, 1_000);
        assert_eq!(
            remote.validate(&labeled(rid(1)), TimeMs(0)),
            ValidationOutcome::Valid(rid(1))
        );
        assert_eq!(
            remote.validate(&labeled(rid(2)), TimeMs(0)),
            ValidationOutcome::Unknown(rid(2))
        );
        // Stale answers are never cached as fresh: asking again re-queries.
        assert_eq!(
            remote.validate(&labeled(rid(1)), TimeMs(1)),
            ValidationOutcome::Valid(rid(1))
        );
        assert_eq!(remote.validator.stats.proxy_queries, 3);
    }

    #[test]
    fn failures_and_unavailable_fall_back_to_policy() {
        let service = service_fn(|req, _ctx| match req {
            Request::Query { id } if id.serial == 1 => Err(NetError::ConnectionLost),
            Request::Query { id } => Ok(Response::Unavailable {
                id,
                age_ms: u64::MAX,
            }),
            _ => panic!("validator must only send queries"),
        });
        let mut remote = RemoteValidator::new(validator(), service, 1_000);
        let outcome = remote.validate(&labeled(rid(1)), TimeMs(0));
        assert_eq!(outcome, ValidationOutcome::Unknown(rid(1)));
        let outcome = remote.validate(&labeled(rid(2)), TimeMs(0));
        assert_eq!(outcome, ValidationOutcome::Unknown(rid(2)));
    }

    #[test]
    fn traced_validate_records_stack_spans_and_local_hits_record_none() {
        let service = service_fn(|req, ctx: &CallCtx| {
            let span = ctx.span("transport");
            match req {
                Request::Query { id } => {
                    span.verdict("ok");
                    Ok(Response::Status {
                        id,
                        status: RevocationStatus::NotRevoked,
                        epoch: 1,
                    })
                }
                _ => panic!("validator must only send queries"),
            }
        });
        let mut remote = RemoteValidator::new(validator(), service, 1_000);
        let rec = irs_obs::SpanRecorder::new();
        assert_eq!(
            remote.validate_traced(&labeled(rid(9)), TimeMs(0), &rec),
            ValidationOutcome::Valid(rid(9))
        );
        let spans = rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].name, spans[0].verdict), ("transport", "ok"));
        // The second look resolves from the validator's local cache: the
        // stack is never consulted, so no new span appears.
        assert_eq!(
            remote.validate_traced(&labeled(rid(9)), TimeMs(10), &rec),
            ValidationOutcome::Valid(rid(9))
        );
        assert_eq!(rec.spans().len(), 1);
    }

    #[test]
    fn validates_over_a_real_proxy_stack() {
        use irs_core::claim::{ClaimRequest, RevokeRequest};
        use irs_core::tsa::TimestampAuthority;
        use irs_crypto::{Digest, Keypair};
        use irs_filters::BloomFilter;
        use irs_ledger::{Ledger, LedgerConfig};
        use irs_net::resilient::RetryPolicy;
        use irs_net::{LedgerClient, LedgerServer};
        use irs_proxy::{ProxyConfig, SharedProxy};
        use std::sync::Arc;

        // A live ledger with one revoked record, fronted by the same
        // retrying upstream stack the proxy composes.
        let ledger = Ledger::new(
            LedgerConfig::new(LedgerId(1)),
            TimestampAuthority::from_seed(0xB10),
        );
        let server = LedgerServer::start(ledger, "127.0.0.1:0").unwrap();
        let mut owner = LedgerClient::connect(server.addr()).unwrap();
        let kp = Keypair::from_seed(&[5u8; 32]);
        let claim = ClaimRequest::create(&kp, &Digest::of(b"browser-pic"));
        let Ok(Response::Claimed { id: revoked, .. }) = owner.call(&Request::Claim(claim)) else {
            panic!("claim failed");
        };
        let revoke = RevokeRequest::create(&kp, revoked, true, 0);
        assert!(matches!(
            owner.call(&Request::Revoke(revoke)),
            Ok(Response::RevokeAck { .. })
        ));

        // The proxy's merged filter holds the revoked id; everything else
        // misses and resolves locally through the cache layer.
        let shared = Arc::new(SharedProxy::new(ProxyConfig::default()));
        let mut filter = BloomFilter::with_params(1 << 14, 6, 0).unwrap();
        filter.insert(revoked.filter_key());
        shared
            .update_filters(|f| f.apply_full(LedgerId(1), 1, filter.to_bytes()))
            .unwrap();
        let stack = stacks::retrying_upstream(
            shared.clone(),
            vec![server.addr()],
            RetryPolicy::fast(0xB10),
        );
        let mut remote = RemoteValidator::new(validator(), stack, 1_000);
        assert_eq!(
            remote.validate(&labeled(revoked), TimeMs(5)),
            ValidationOutcome::Revoked(revoked)
        );
        // A filter-miss id never leaves the proxy stack: definitely not
        // revoked, answered by the filter rung.
        assert_eq!(
            remote.validate(&labeled(rid(424_242)), TimeMs(5)),
            ValidationOutcome::Valid(rid(424_242))
        );
        assert_eq!(shared.stats().filter_negative, 1);
        assert_eq!(shared.stats().ledger_queries, 1);
        server.shutdown();
    }
}
