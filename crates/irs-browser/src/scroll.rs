//! Scroll-session model — the §4.3 prototype observation.
//!
//! "We built a prototype ledger and browser extension that performed
//! revocation checks. … we did not notice additional delay when scrolling
//! through a variety of web sites containing claimed images."
//!
//! A session scrolls through a long image grid one viewport at a time,
//! dwelling on each. The browser prefetches (and validates) the next
//! viewport during the dwell, so a check is visible only if it outlasts
//! dwell + fetch slack. Experiment E3 runs this against the real TCP
//! ledger prototype in `irs-net`.

use crate::pipeline::CheckService;
use irs_simnet::{Histogram, Link};
use irs_workload::population::{PhotoMeta, PhotoPopulation};
use irs_workload::samplers::Zipf;
use rand::rngs::StdRng;
use rand::Rng;

/// Scroll session parameters.
#[derive(Clone, Debug)]
pub struct ScrollConfig {
    /// Images visible per viewport.
    pub viewport_images: usize,
    /// Number of viewports scrolled through.
    pub viewports: usize,
    /// Dwell on each viewport before scrolling (ms).
    pub dwell_ms: u64,
    /// Fraction of images that are claimed.
    pub claimed_fraction: f64,
    /// Image fetch link.
    pub fetch_link: Link,
    /// Bytes per ms of bandwidth.
    pub bandwidth_bytes_per_ms: u64,
    /// Average image bytes.
    pub image_bytes: u64,
}

impl Default for ScrollConfig {
    fn default() -> Self {
        ScrollConfig {
            viewport_images: 12,
            viewports: 20,
            dwell_ms: 1_500,
            claimed_fraction: 0.8,
            fetch_link: irs_simnet::latency::profiles::browser_to_site(),
            bandwidth_bytes_per_ms: 3_125,
            image_bytes: 150_000,
        }
    }
}

/// Result of one scroll session.
#[derive(Clone, Debug)]
pub struct ScrollReport {
    /// Per-viewport visible delay (ms past the scroll instant before every
    /// image in the viewport is displayable).
    pub viewport_delays: Histogram,
    /// Per-image delay attributable to IRS validation specifically.
    pub irs_delays: Histogram,
    /// Checks issued.
    pub checks: u64,
}

/// Run a scroll session.
pub fn run_session(
    config: &ScrollConfig,
    population: &PhotoPopulation,
    zipf: &Zipf,
    checks: &mut dyn CheckService,
    rng: &mut StdRng,
) -> ScrollReport {
    let mut viewport_delays = Histogram::new();
    let mut irs_delays = Histogram::new();
    let mut checks_issued = 0u64;
    let bw = config.bandwidth_bytes_per_ms.max(1);

    for viewport in 0..config.viewports {
        // The user arrives at viewport v at time v · dwell. Prefetch of
        // its images begins one dwell earlier (when the previous viewport
        // came on screen), except the first viewport which starts cold.
        let scroll_at = viewport as u64 * config.dwell_ms;
        let prefetch_at = scroll_at.saturating_sub(config.dwell_ms);
        let mut viewport_ready = prefetch_at;
        for _ in 0..config.viewport_images {
            let fetch_start = prefetch_at;
            let rtt = config.fetch_link.rtt(rng);
            let metadata_at = fetch_start + rtt + 4_096.min(config.image_bytes) / bw;
            let pixels_at = fetch_start + rtt + config.image_bytes / bw;
            let displayable = if rng.gen_bool(config.claimed_fraction.clamp(0.0, 1.0)) {
                let rank = zipf.sample(rng) as u64;
                let meta: PhotoMeta = population.public_photo_by_rank(rank);
                checks_issued += 1;
                let check_done = metadata_at + checks.check_ms(&meta);
                irs_delays.record(check_done.saturating_sub(pixels_at));
                pixels_at.max(check_done)
            } else {
                irs_delays.record(0);
                pixels_at
            };
            viewport_ready = viewport_ready.max(displayable);
        }
        viewport_delays.record(viewport_ready.saturating_sub(scroll_at));
    }

    ScrollReport {
        viewport_delays,
        irs_delays,
        checks: checks_issued,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{FixedCheck, NoChecks};
    use irs_simnet::LatencyModel;
    use irs_workload::population::PopulationConfig;
    use rand::SeedableRng;

    fn setup() -> (PhotoPopulation, Zipf) {
        let pop = PhotoPopulation::new(PopulationConfig {
            total: 10_000,
            ..PopulationConfig::default()
        });
        let zipf = Zipf::new(pop.public_count() as usize, 0.9);
        (pop, zipf)
    }

    fn config() -> ScrollConfig {
        ScrollConfig {
            fetch_link: Link::new(LatencyModel::Constant(30)),
            ..ScrollConfig::default()
        }
    }

    #[test]
    fn prefetch_hides_modest_checks() {
        let (pop, zipf) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut report = run_session(&config(), &pop, &zipf, &mut FixedCheck(50), &mut rng);
        // After the first (cold) viewport, everything is prefetched during
        // the dwell; added delay beyond the baseline must be zero.
        let mut rng2 = StdRng::seed_from_u64(1);
        let mut baseline = run_session(&config(), &pop, &zipf, &mut NoChecks, &mut rng2);
        let with = report.viewport_delays.summary();
        let without = baseline.viewport_delays.summary();
        assert_eq!(
            with.p50, without.p50,
            "median viewport delay must match baseline"
        );
        assert!(report.checks > 0);
    }

    #[test]
    fn huge_checks_surface_as_delay() {
        let (pop, zipf) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut report = run_session(&config(), &pop, &zipf, &mut FixedCheck(10_000), &mut rng);
        assert!(report.viewport_delays.summary().p50 > 1_000);
    }

    #[test]
    fn unclaimed_session_has_no_checks() {
        let (pop, zipf) = setup();
        let cfg = ScrollConfig {
            claimed_fraction: 0.0,
            ..config()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let report = run_session(&cfg, &pop, &zipf, &mut FixedCheck(1_000), &mut rng);
        assert_eq!(report.checks, 0);
    }

    #[test]
    fn first_viewport_is_cold() {
        let (pop, zipf) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut report = run_session(&config(), &pop, &zipf, &mut NoChecks, &mut rng);
        // Cold start: first viewport pays full fetch; the max across
        // viewports is at least the image transfer time.
        assert!(report.viewport_delays.summary().max >= 100);
    }
}
