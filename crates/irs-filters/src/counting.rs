//! Counting Bloom filter with 4-bit saturating counters.
//!
//! Ledgers maintain one of these internally so that the claimed-photo set
//! can shrink (custodial claims released, appeals resolved, records
//! expired) without rebuilding; the exported filter published to proxies is
//! the plain-bit projection ([`CountingBloom::to_bloom`]).

use crate::hash::double_hash_indices;
use crate::{Filter, FilterError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const COUNTER_MAX: u8 = 15;

/// Serialization magic for [`CountingBloom::to_bytes`].
const MAGIC: u32 = 0x4952_5343; // "IRSC"

/// A counting Bloom filter over `u64` keys (4-bit counters).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountingBloom {
    /// Two counters per byte.
    counters: Vec<u8>,
    m: u64,
    k: u32,
    seed: u64,
    inserted: u64,
}

impl CountingBloom {
    /// Create with `m_bits` counters (one counter per "bit" slot).
    pub fn with_params(m_bits: u64, k: u32, seed: u64) -> Result<Self, FilterError> {
        if m_bits == 0 {
            return Err(FilterError::BadParams("m_bits must be > 0"));
        }
        if k == 0 || k > 32 {
            return Err(FilterError::BadParams("k must be in 1..=32"));
        }
        Ok(CountingBloom {
            counters: vec![0u8; m_bits.div_ceil(2) as usize],
            m: m_bits,
            k,
            seed,
            inserted: 0,
        })
    }

    /// Size for `capacity` keys at `target_fpr`.
    pub fn for_capacity(capacity: u64, target_fpr: f64) -> Result<Self, FilterError> {
        if !(1e-10..1.0).contains(&target_fpr) {
            return Err(FilterError::BadParams("target_fpr must be in (0, 1)"));
        }
        let capacity = capacity.max(1);
        let m = crate::analysis::bits_for(capacity, target_fpr).max(64);
        let k = crate::analysis::optimal_k_clamped(m, capacity);
        CountingBloom::with_params(m, k, 0)
    }

    fn get_counter(&self, idx: u64) -> u8 {
        let byte = self.counters[(idx / 2) as usize];
        if idx % 2 == 0 {
            byte & 0x0f
        } else {
            byte >> 4
        }
    }

    fn set_counter(&mut self, idx: u64, v: u8) {
        let slot = &mut self.counters[(idx / 2) as usize];
        if idx % 2 == 0 {
            *slot = (*slot & 0xf0) | (v & 0x0f);
        } else {
            *slot = (*slot & 0x0f) | (v << 4);
        }
    }

    /// Insert a key. Counters saturate at 15 (saturated counters are never
    /// decremented, trading rare stuck bits for correctness).
    pub fn insert(&mut self, key: u64) {
        for idx in double_hash_indices(key, self.seed, self.k, self.m) {
            let c = self.get_counter(idx);
            if c < COUNTER_MAX {
                self.set_counter(idx, c + 1);
            }
        }
        self.inserted += 1;
    }

    /// Remove a previously inserted key. Removing a key that was never
    /// inserted may introduce false negatives for other keys, so callers
    /// (the ledger store) must only remove known-present keys; this is
    /// asserted in debug builds.
    pub fn remove(&mut self, key: u64) {
        debug_assert!(self.contains(key), "removing a key that is not present");
        for idx in double_hash_indices(key, self.seed, self.k, self.m) {
            let c = self.get_counter(idx);
            if c > 0 && c < COUNTER_MAX {
                self.set_counter(idx, c - 1);
            }
        }
        self.inserted = self.inserted.saturating_sub(1);
    }

    /// Number of live insertions.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Project to a plain [`crate::BloomFilter`] (counter > 0 ⇒ bit set)
    /// with identical geometry — this is what the ledger publishes.
    pub fn to_bloom(&self) -> crate::BloomFilter {
        let mut bloom = crate::BloomFilter::with_params(self.m, self.k, self.seed)
            .expect("geometry already validated");
        for idx in 0..self.m {
            if self.get_counter(idx) > 0 {
                bloom.words_mut()[(idx / 64) as usize] |= 1u64 << (idx % 64);
            }
        }
        bloom.set_inserted(self.inserted);
        bloom
    }

    /// Serialize: magic, m, k, seed, inserted, packed counter bytes. Used
    /// by ledger snapshots so the revocation index survives restarts
    /// without a full rebuild.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32 + self.counters.len());
        buf.put_u32(MAGIC);
        buf.put_u64(self.m);
        buf.put_u32(self.k);
        buf.put_u64(self.seed);
        buf.put_u64(self.inserted);
        buf.put_slice(&self.counters);
        buf.freeze()
    }

    /// Deserialize from [`CountingBloom::to_bytes`] output.
    pub fn from_bytes(mut data: Bytes) -> Result<CountingBloom, FilterError> {
        if data.remaining() < 32 {
            return Err(FilterError::Malformed("header truncated"));
        }
        if data.get_u32() != MAGIC {
            return Err(FilterError::Malformed("bad magic"));
        }
        let m = data.get_u64();
        let k = data.get_u32();
        let seed = data.get_u64();
        let inserted = data.get_u64();
        let bytes = m.div_ceil(2) as usize;
        if data.remaining() != bytes {
            return Err(FilterError::Malformed("payload length mismatch"));
        }
        let mut filter = CountingBloom::with_params(m, k, seed)?;
        data.copy_to_slice(&mut filter.counters);
        filter.inserted = inserted;
        Ok(filter)
    }
}

impl Filter for CountingBloom {
    fn contains(&self, key: u64) -> bool {
        double_hash_indices(key, self.seed, self.k, self.m).all(|idx| self.get_counter(idx) > 0)
    }

    fn bits(&self) -> u64 {
        self.m * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut f = CountingBloom::for_capacity(1000, 0.01).unwrap();
        for key in 0..100u64 {
            f.insert(key);
        }
        for key in 0..100u64 {
            assert!(f.contains(key));
        }
        for key in 0..50u64 {
            f.remove(key);
        }
        // Removed keys are (almost surely) gone, kept keys remain.
        for key in 50..100u64 {
            assert!(f.contains(key), "kept key {key} lost");
        }
        let still_there = (0..50u64).filter(|&k| f.contains(k)).count();
        assert!(still_there <= 3, "{still_there} removed keys still hit");
    }

    #[test]
    fn counters_saturate_without_wrap() {
        let mut f = CountingBloom::with_params(64, 1, 0).unwrap();
        for _ in 0..100 {
            f.insert(7);
        }
        assert!(f.contains(7));
        // Saturated counters stay pinned even under removes.
        for _ in 0..100 {
            f.remove(7);
        }
        assert!(f.contains(7), "saturated counter must not underflow");
    }

    #[test]
    fn projection_matches_membership() {
        let mut f = CountingBloom::with_params(2048, 4, 5).unwrap();
        for key in 0..300u64 {
            f.insert(key * 17);
        }
        let bloom = f.to_bloom();
        for key in 0..300u64 {
            assert!(crate::Filter::contains(&bloom, key * 17));
        }
        assert_eq!(bloom.inserted(), 300);
        assert_eq!(bloom.k(), 4);
        assert_eq!(bloom.seed(), 5);
        // Projection has identical hit set (same geometry & seed).
        for probe in 10_000..11_000u64 {
            assert_eq!(f.contains(probe), crate::Filter::contains(&bloom, probe));
        }
    }

    #[test]
    fn four_bit_packing() {
        let mut f = CountingBloom::with_params(10, 1, 0).unwrap();
        // Directly exercise get/set on odd and even slots.
        f.set_counter(0, 5);
        f.set_counter(1, 9);
        assert_eq!(f.get_counter(0), 5);
        assert_eq!(f.get_counter(1), 9);
        f.set_counter(0, 0);
        assert_eq!(f.get_counter(0), 0);
        assert_eq!(f.get_counter(1), 9);
    }

    #[test]
    fn bits_reports_counter_cost() {
        let f = CountingBloom::with_params(1000, 4, 0).unwrap();
        assert_eq!(f.bits(), 4000);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut f = CountingBloom::with_params(1 << 12, 4, 99).unwrap();
        for key in 0..500u64 {
            f.insert(key * 3);
        }
        for key in 0..100u64 {
            f.remove(key * 3);
        }
        let g = CountingBloom::from_bytes(f.to_bytes()).unwrap();
        assert_eq!(f, g);
        assert_eq!(g.inserted(), 400);
    }

    #[test]
    fn deserialization_rejects_garbage() {
        assert!(CountingBloom::from_bytes(Bytes::from_static(b"short")).is_err());
        let mut bad = CountingBloom::with_params(128, 2, 0)
            .unwrap()
            .to_bytes()
            .to_vec();
        bad[0] ^= 0xff; // corrupt magic
        assert!(CountingBloom::from_bytes(Bytes::from(bad)).is_err());
        let mut trunc = CountingBloom::with_params(128, 2, 0)
            .unwrap()
            .to_bytes()
            .to_vec();
        trunc.pop();
        assert!(CountingBloom::from_bytes(Bytes::from(trunc)).is_err());
    }
}
