//! Xor filters (Graf & Lemire, *Xor Filters: Faster and Smaller Than Bloom
//! and Cuckoo Filters*, cited by the paper as a "more recent advance" over
//! the standard Bloom filter).
//!
//! Static (build-once) filters: each key maps to three slots across three
//! equal blocks; construction peels the resulting 3-uniform hypergraph and
//! assigns fingerprints so that `fp[h0] ^ fp[h1] ^ fp[h2] == fingerprint(k)`
//! for every inserted key. ~9.84 bits/key at 8-bit fingerprints with an FPR
//! of 2⁻⁸ ≈ 0.39 %.
//!
//! In IRS these model a ledger's *published snapshot* format: a ledger with
//! a stable hourly claimed-set can publish an xor filter that is both
//! smaller and faster to query than the Bloom equivalent at matching FPR
//! (experiment E12).

use crate::hash::{mix_seeded, reduce};
use crate::{Filter, FilterError};

/// Maximum seeds tried before giving up on peeling.
const MAX_ATTEMPTS: u64 = 64;

/// Peel a 3-uniform hypergraph: returns, in peel order, `(key_index, slot)`
/// pairs such that assigning fingerprints in reverse order satisfies every
/// key. `None` if the graph has a 2-core.
pub(crate) fn peel(
    n_slots: usize,
    keys: &[u64],
    slots_of: impl Fn(u64) -> [usize; 3],
) -> Option<Vec<(usize, usize)>> {
    // Per-slot count and xor of incident key indices (index-xor trick: when
    // count reaches 1, the xor IS the remaining key index).
    let mut count = vec![0u32; n_slots];
    let mut kxor = vec![0usize; n_slots];
    for (i, &k) in keys.iter().enumerate() {
        for s in slots_of(k) {
            count[s] += 1;
            kxor[s] ^= i;
        }
    }
    let mut queue: Vec<usize> = (0..n_slots).filter(|&s| count[s] == 1).collect();
    let mut order: Vec<(usize, usize)> = Vec::with_capacity(keys.len());
    while let Some(slot) = queue.pop() {
        if count[slot] != 1 {
            continue;
        }
        let key_idx = kxor[slot];
        order.push((key_idx, slot));
        for s in slots_of(keys[key_idx]) {
            count[s] -= 1;
            kxor[s] ^= key_idx;
            if count[s] == 1 {
                queue.push(s);
            }
        }
    }
    if order.len() == keys.len() {
        Some(order)
    } else {
        None
    }
}

/// Check for duplicate keys (peeling cannot succeed with duplicates).
pub(crate) fn has_duplicates(keys: &[u64]) -> bool {
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).any(|w| w[0] == w[1])
}

macro_rules! xor_filter {
    ($name:ident, $fp:ty, $fpbits:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            fingerprints: Vec<$fp>,
            block: usize,
            seed: u64,
        }

        impl $name {
            /// Build the filter over a set of distinct keys.
            pub fn build(keys: &[u64]) -> Result<Self, FilterError> {
                if has_duplicates(keys) {
                    return Err(FilterError::DuplicateKeys);
                }
                let capacity = ((keys.len() as f64 * 1.23).ceil() as usize + 32).max(3);
                let block = capacity.div_ceil(3);
                let n_slots = block * 3;
                for attempt in 0..MAX_ATTEMPTS {
                    let seed = attempt.wrapping_mul(0xc2b2_ae3d_27d4_eb4f).wrapping_add(1);
                    let slots = |k: u64| Self::slots(k, seed, block);
                    if let Some(order) = peel(n_slots, keys, slots) {
                        let mut fingerprints = vec![0 as $fp; n_slots];
                        for &(key_idx, slot) in order.iter().rev() {
                            let k = keys[key_idx];
                            let [a, b, c] = Self::slots(k, seed, block);
                            let mut f = Self::fingerprint(k, seed);
                            for s in [a, b, c] {
                                if s != slot {
                                    f ^= fingerprints[s];
                                }
                            }
                            fingerprints[slot] = f;
                        }
                        return Ok($name {
                            fingerprints,
                            block,
                            seed,
                        });
                    }
                }
                Err(FilterError::ConstructionFailed)
            }

            #[inline]
            fn slots(key: u64, seed: u64, block: usize) -> [usize; 3] {
                let h = mix_seeded(key, seed);
                [
                    reduce(h, block as u64) as usize,
                    block + reduce(h.rotate_left(21), block as u64) as usize,
                    2 * block + reduce(h.rotate_left(42), block as u64) as usize,
                ]
            }

            #[inline]
            fn fingerprint(key: u64, seed: u64) -> $fp {
                (mix_seeded(key, seed ^ 0x5bf0_3635_d1a2_4f27) & (<$fp>::MAX as u64)) as $fp
            }

            /// Number of slots (3 × block).
            pub fn slots_len(&self) -> usize {
                self.fingerprints.len()
            }

            /// Bits per key for `n` keys stored.
            pub fn bits_per_key(&self, n: usize) -> f64 {
                (self.fingerprints.len() * $fpbits) as f64 / n.max(1) as f64
            }
        }

        impl Filter for $name {
            fn contains(&self, key: u64) -> bool {
                let [a, b, c] = Self::slots(key, self.seed, self.block);
                let f = Self::fingerprint(key, self.seed);
                self.fingerprints[a] ^ self.fingerprints[b] ^ self.fingerprints[c] == f
            }

            fn bits(&self) -> u64 {
                (self.fingerprints.len() * $fpbits) as u64
            }
        }
    };
}

xor_filter!(
    Xor8,
    u8,
    8,
    "Xor filter with 8-bit fingerprints (FPR ≈ 1/256, ~9.84 bits/key)."
);
xor_filter!(
    Xor16,
    u16,
    16,
    "Xor filter with 16-bit fingerprints (FPR ≈ 1/65536, ~19.7 bits/key)."
);

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        (0..n).map(crate::hash::mix64).collect()
    }

    #[test]
    fn no_false_negatives_xor8() {
        let ks = keys(10_000);
        let f = Xor8::build(&ks).unwrap();
        for &k in &ks {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn no_false_negatives_xor16() {
        let ks = keys(5_000);
        let f = Xor16::build(&ks).unwrap();
        for &k in &ks {
            assert!(f.contains(k));
        }
    }

    #[test]
    fn fpr_matches_fingerprint_width() {
        let ks = keys(20_000);
        let f8 = Xor8::build(&ks).unwrap();
        let trials = 200_000u64;
        let fp8 = (0..trials)
            .map(|i| crate::hash::mix64(i + 1_000_000))
            .filter(|&k| f8.contains(k))
            .count() as f64;
        let rate8 = fp8 / trials as f64;
        // Expect ≈ 1/256 ≈ 0.0039.
        assert!(rate8 < 0.008, "xor8 fpr {rate8}");
        assert!(rate8 > 0.001, "xor8 fpr suspiciously low {rate8}");

        let f16 = Xor16::build(&ks).unwrap();
        let fp16 = (0..trials)
            .map(|i| crate::hash::mix64(i + 1_000_000))
            .filter(|&k| f16.contains(k))
            .count();
        // Expect ≈ 1/65536 → about 3 hits in 200k.
        assert!(fp16 < 25, "xor16 false positives {fp16}");
    }

    #[test]
    fn bits_per_key_near_advertised() {
        let ks = keys(100_000);
        let f = Xor8::build(&ks).unwrap();
        let bpk = f.bits_per_key(ks.len());
        assert!((9.5..10.5).contains(&bpk), "bits/key {bpk}");
    }

    #[test]
    fn duplicates_rejected() {
        let mut ks = keys(100);
        ks.push(ks[0]);
        assert!(matches!(Xor8::build(&ks), Err(FilterError::DuplicateKeys)));
    }

    #[test]
    fn empty_and_tiny_sets() {
        let f = Xor8::build(&[]).unwrap();
        // An empty filter may have false positives at the fingerprint rate
        // (all-zero fingerprints match keys whose fingerprint is 0); just
        // check it was built and is queryable.
        let _ = f.contains(1);
        let one = Xor8::build(&[42]).unwrap();
        assert!(one.contains(42));
        let three = Xor16::build(&[1, 2, 3]).unwrap();
        for k in [1u64, 2, 3] {
            assert!(three.contains(k));
        }
    }

    #[test]
    fn peel_detects_unpeelable() {
        // Three keys all mapping to the same three slots form a 2-core.
        let keys = [10u64, 20, 30];
        let res = peel(9, &keys, |_| [0, 1, 2]);
        assert!(res.is_none());
    }

    #[test]
    fn peel_order_covers_all_keys() {
        let ks = keys(1000);
        let block = 500usize;
        let order = peel(block * 3, &ks, |k| {
            let h = mix_seeded(k, 99);
            [
                reduce(h, block as u64) as usize,
                block + reduce(h.rotate_left(21), block as u64) as usize,
                2 * block + reduce(h.rotate_left(42), block as u64) as usize,
            ]
        })
        .expect("peelable at 1.5× capacity");
        let mut seen: Vec<usize> = order.iter().map(|&(i, _)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }
}
