//! Fuse filters — the spatially-coupled refinement of xor filters that the
//! paper cites via *Binary Fuse Filters: Fast and Smaller Than Xor Filters*
//! (Graf & Lemire, 2022).
//!
//! **Construction fidelity note (recorded in DESIGN.md):** this module
//! implements the *fuse graph* construction (Dietzfelbinger & Walzer):
//! slots are divided into `w` consecutive segments, each key picks a random
//! window of three consecutive segments and one slot in each. This is the
//! construction binary fuse filters refine; it achieves the same asymptotic
//! ~1.13·n space (vs 1.23·n for xor) and identical query structure (three
//! probes, fingerprint xor), which is what experiment E12 compares. The
//! binary-fuse paper's additional engineering (power-of-two segment
//! arithmetic, construction-time sorting) affects constants, not the
//! space/FPR trade-off reproduced here.

use crate::hash::{mix_seeded, reduce};
use crate::xor::{has_duplicates, peel};
use crate::{Filter, FilterError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serialization magic for fuse filters ("IRSU"); the epoch-sealed base
/// tier ships over the wire in this format.
const MAGIC: u32 = 0x4952_5355;

/// Seeds tried per capacity level.
const SEEDS_PER_LEVEL: u64 = 8;
/// Capacity growth levels tried before giving up.
const MAX_LEVELS: u32 = 8;

fn segment_count(n: usize) -> usize {
    // More segments → better space at scale, but small sets peel more
    // reliably with few segments. Breakpoints chosen empirically (see the
    // peel-threshold probe results recorded in DESIGN.md).
    match n {
        0..=9_999 => 3,
        10_000..=49_999 => 32,
        50_000..=499_999 => 64,
        _ => 100,
    }
}

fn initial_capacity(n: usize) -> usize {
    // Spatial coupling approaches ~1.13× asymptotically; these factors give
    // ≥ 4/5 first-level peel success at each scale, with the retry ladder
    // absorbing the rest.
    let factor = if n < 10_000 {
        1.30
    } else if n < 50_000 {
        1.25
    } else {
        1.18
    };
    ((n as f64 * factor).ceil() as usize + 32).max(3)
}

macro_rules! fuse_filter {
    ($name:ident, $fp:ty, $fpbits:expr, $put:ident, $get:ident, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            fingerprints: Vec<$fp>,
            segment_len: usize,
            segments: usize,
            seed: u64,
        }

        impl $name {
            /// Build the filter over a set of distinct keys. Retries with
            /// fresh seeds and, if necessary, grows capacity slightly; the
            /// chance of overall failure is negligible.
            pub fn build(keys: &[u64]) -> Result<Self, FilterError> {
                if has_duplicates(keys) {
                    return Err(FilterError::DuplicateKeys);
                }
                let segments = segment_count(keys.len());
                let mut capacity = initial_capacity(keys.len());
                for _level in 0..MAX_LEVELS {
                    let segment_len = capacity.div_ceil(segments).max(1);
                    let n_slots = segment_len * segments;
                    for attempt in 0..SEEDS_PER_LEVEL {
                        let seed = attempt
                            .wrapping_mul(0x9e6c_63d0_876a_46bd)
                            .wrapping_add(capacity as u64);
                        let slots = |k: u64| Self::slots(k, seed, segment_len, segments);
                        if let Some(order) = peel(n_slots, keys, slots) {
                            let mut fingerprints = vec![0 as $fp; n_slots];
                            for &(key_idx, slot) in order.iter().rev() {
                                let k = keys[key_idx];
                                let trio = Self::slots(k, seed, segment_len, segments);
                                let mut f = Self::fingerprint(k, seed);
                                for s in trio {
                                    if s != slot {
                                        f ^= fingerprints[s];
                                    }
                                }
                                fingerprints[slot] = f;
                            }
                            return Ok($name {
                                fingerprints,
                                segment_len,
                                segments,
                                seed,
                            });
                        }
                    }
                    capacity = capacity + capacity / 10 + 8;
                }
                Err(FilterError::ConstructionFailed)
            }

            #[inline]
            fn slots(key: u64, seed: u64, segment_len: usize, segments: usize) -> [usize; 3] {
                let h = mix_seeded(key, seed);
                // Window of three consecutive segments; start ∈ [0, w−3].
                let start = if segments > 3 {
                    reduce(h, (segments - 2) as u64) as usize
                } else {
                    0
                };
                let h1 = h.rotate_left(17);
                let h2 = h.rotate_left(34);
                let h3 = h.rotate_left(51);
                [
                    start * segment_len + reduce(h1, segment_len as u64) as usize,
                    (start + 1) * segment_len + reduce(h2, segment_len as u64) as usize,
                    (start + 2) * segment_len + reduce(h3, segment_len as u64) as usize,
                ]
            }

            #[inline]
            fn fingerprint(key: u64, seed: u64) -> $fp {
                (mix_seeded(key, seed ^ 0x1b87_3593_68df_5cab) & (<$fp>::MAX as u64)) as $fp
            }

            /// Bits per key for `n` keys stored.
            pub fn bits_per_key(&self, n: usize) -> f64 {
                (self.fingerprints.len() * $fpbits) as f64 / n.max(1) as f64
            }

            /// Number of segments in the layout.
            pub fn segments(&self) -> usize {
                self.segments
            }

            /// Serialize: magic, fingerprint width, seed, segment layout,
            /// fingerprint array. Ledgers ship the epoch-sealed base tier
            /// to proxies in this format.
            pub fn to_bytes(&self) -> Bytes {
                let mut buf = BytesMut::with_capacity(37 + self.fingerprints.len() * ($fpbits / 8));
                buf.put_u32(MAGIC);
                buf.put_u8($fpbits as u8);
                buf.put_u64(self.seed);
                buf.put_u64(self.segment_len as u64);
                buf.put_u64(self.segments as u64);
                buf.put_u64(self.fingerprints.len() as u64);
                for &f in &self.fingerprints {
                    buf.$put(f);
                }
                buf.freeze()
            }

            /// Deserialize a filter produced by `to_bytes`, rejecting
            /// structural corruption (bad magic, wrong fingerprint width,
            /// layout/length mismatch).
            pub fn from_bytes(mut data: Bytes) -> Result<Self, FilterError> {
                if data.remaining() < 37 {
                    return Err(FilterError::Malformed("fuse header truncated"));
                }
                if data.get_u32() != MAGIC {
                    return Err(FilterError::Malformed("bad fuse magic"));
                }
                if data.get_u8() as usize != $fpbits {
                    return Err(FilterError::Malformed("fingerprint width mismatch"));
                }
                let seed = data.get_u64();
                let segment_len = data.get_u64() as usize;
                let segments = data.get_u64() as usize;
                let n_slots = data.get_u64() as usize;
                if segments < 3
                    || segment_len == 0
                    || segment_len.checked_mul(segments) != Some(n_slots)
                {
                    return Err(FilterError::Malformed("fuse layout mismatch"));
                }
                if data.remaining() != n_slots * ($fpbits / 8) {
                    return Err(FilterError::Malformed("fuse payload length mismatch"));
                }
                let mut fingerprints = Vec::with_capacity(n_slots);
                for _ in 0..n_slots {
                    fingerprints.push(data.$get());
                }
                Ok($name {
                    fingerprints,
                    segment_len,
                    segments,
                    seed,
                })
            }
        }

        impl Filter for $name {
            fn contains(&self, key: u64) -> bool {
                let trio = Self::slots(key, self.seed, self.segment_len, self.segments);
                let f = Self::fingerprint(key, self.seed);
                self.fingerprints[trio[0]] ^ self.fingerprints[trio[1]] ^ self.fingerprints[trio[2]]
                    == f
            }

            fn bits(&self) -> u64 {
                (self.fingerprints.len() * $fpbits) as u64
            }
        }
    };
}

fuse_filter!(
    Fuse8,
    u8,
    8,
    put_u8,
    get_u8,
    "Fuse filter with 8-bit fingerprints (FPR ≈ 1/256, approaching ~9 bits/key at scale)."
);
fuse_filter!(
    Fuse16,
    u16,
    16,
    put_u16,
    get_u16,
    "Fuse filter with 16-bit fingerprints (FPR ≈ 1/65536)."
);

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| crate::hash::mix64(i ^ 0x517c_c1b7_2722_0a95))
            .collect()
    }

    #[test]
    fn no_false_negatives_small_and_large() {
        for n in [0u64, 1, 10, 500, 5_000, 60_000] {
            let ks = keys(n);
            let f = Fuse8::build(&ks).unwrap_or_else(|e| panic!("build n={n}: {e}"));
            for &k in &ks {
                assert!(f.contains(k), "n={n} lost key");
            }
        }
    }

    #[test]
    fn fpr_close_to_fingerprint_rate() {
        let ks = keys(30_000);
        let f = Fuse8::build(&ks).unwrap();
        let trials = 200_000u64;
        let fp = (0..trials)
            .map(|i| crate::hash::mix64(i + 5_000_000))
            .filter(|&k| f.contains(k))
            .count() as f64;
        let rate = fp / trials as f64;
        assert!(rate < 0.008, "fuse8 fpr {rate}");
    }

    #[test]
    fn space_beats_xor_at_scale() {
        let ks = keys(200_000);
        let fuse = Fuse8::build(&ks).unwrap();
        let xor = crate::Xor8::build(&ks).unwrap();
        assert!(
            fuse.bits() < xor.bits(),
            "fuse {} bits vs xor {} bits",
            fuse.bits(),
            xor.bits()
        );
        let bpk = fuse.bits_per_key(ks.len());
        assert!(bpk < 9.6, "fuse bits/key {bpk}");
    }

    #[test]
    fn fuse16_false_positive_rarity() {
        let ks = keys(20_000);
        let f = Fuse16::build(&ks).unwrap();
        let fp = (0..200_000u64)
            .map(|i| crate::hash::mix64(i + 9_000_000))
            .filter(|&k| f.contains(k))
            .count();
        assert!(fp < 25, "fuse16 fp count {fp}");
    }

    #[test]
    fn serialization_roundtrip() {
        let ks = keys(10_000);
        let f = Fuse8::build(&ks).unwrap();
        let g = Fuse8::from_bytes(f.to_bytes()).unwrap();
        assert_eq!(f.bits(), g.bits());
        for &k in &ks {
            assert!(g.contains(k), "decoded filter lost a key");
        }
        let f16 = Fuse16::build(&ks[..1000]).unwrap();
        let g16 = Fuse16::from_bytes(f16.to_bytes()).unwrap();
        for &k in &ks[..1000] {
            assert!(g16.contains(k));
        }
    }

    #[test]
    fn deserialization_rejects_garbage() {
        assert!(Fuse8::from_bytes(bytes::Bytes::from_static(b"short")).is_err());
        let good = Fuse8::build(&keys(100)).unwrap().to_bytes().to_vec();
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(Fuse8::from_bytes(bytes::Bytes::from(bad_magic)).is_err());
        let mut trunc = good.clone();
        trunc.pop();
        assert!(Fuse8::from_bytes(bytes::Bytes::from(trunc)).is_err());
        // An 8-bit payload is not a 16-bit filter.
        assert!(Fuse16::from_bytes(bytes::Bytes::from(good)).is_err());
    }

    #[test]
    fn duplicates_rejected() {
        let mut ks = keys(50);
        ks.push(ks[10]);
        assert!(matches!(Fuse8::build(&ks), Err(FilterError::DuplicateKeys)));
    }

    #[test]
    fn segment_layout_scales() {
        assert_eq!(segment_count(100), 3);
        assert_eq!(segment_count(50_000), 64);
        assert!(segment_count(2_000_000) > segment_count(50_000));
    }
}
