//! Partitioned Bloom filter: the bit array is split into `k` equal
//! partitions and each hash function sets one bit in its own partition.
//!
//! Slightly worse FPR than the standard construction at the same size, but
//! the per-partition layout gives predictable memory access and makes the
//! per-ledger sharding in `irs-proxy` straightforward. Included as the
//! comparison point the §4.4 "standard Bloom filter (see more recent
//! advances …)" remark invites.

use crate::hash::{mix64, mix_seeded, reduce};
use crate::{Filter, FilterError};

/// A k-partition Bloom filter over `u64` keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionedBloom {
    bits: Vec<u64>,
    partition_bits: u64,
    k: u32,
    seed: u64,
    inserted: u64,
}

impl PartitionedBloom {
    /// Total size will be `k * partition_bits` bits.
    pub fn with_params(partition_bits: u64, k: u32, seed: u64) -> Result<Self, FilterError> {
        if partition_bits == 0 {
            return Err(FilterError::BadParams("partition_bits must be > 0"));
        }
        if k == 0 || k > 32 {
            return Err(FilterError::BadParams("k must be in 1..=32"));
        }
        let words = (partition_bits * k as u64).div_ceil(64) as usize;
        Ok(PartitionedBloom {
            bits: vec![0u64; words],
            partition_bits,
            k,
            seed,
            inserted: 0,
        })
    }

    /// Size for `capacity` keys at `target_fpr` (same total bits as the
    /// standard filter; each partition gets an equal share).
    pub fn for_capacity(capacity: u64, target_fpr: f64) -> Result<Self, FilterError> {
        if !(1e-10..1.0).contains(&target_fpr) {
            return Err(FilterError::BadParams("target_fpr must be in (0, 1)"));
        }
        let capacity = capacity.max(1);
        let m = crate::analysis::bits_for(capacity, target_fpr).max(64);
        let k = crate::analysis::optimal_k_clamped(m, capacity);
        PartitionedBloom::with_params(m.div_ceil(k as u64), k, 0)
    }

    fn index(&self, key: u64, i: u32) -> u64 {
        let h = mix_seeded(
            key,
            self.seed
                .wrapping_add(i as u64)
                .wrapping_mul(0xa076_1d64_78bd_642f),
        );
        i as u64 * self.partition_bits + reduce(mix64(h), self.partition_bits)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        for i in 0..self.k {
            let idx = self.index(key, i);
            self.bits[(idx / 64) as usize] |= 1u64 << (idx % 64);
        }
        self.inserted += 1;
    }

    /// Number of `insert` calls so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Fill ratio of the busiest partition (the FPR driver).
    pub fn max_partition_fill(&self) -> f64 {
        (0..self.k)
            .map(|i| {
                let start = i as u64 * self.partition_bits;
                let end = start + self.partition_bits;
                let mut set = 0u64;
                for idx in start..end {
                    if self.bits[(idx / 64) as usize] & (1u64 << (idx % 64)) != 0 {
                        set += 1;
                    }
                }
                set as f64 / self.partition_bits as f64
            })
            .fold(0.0, f64::max)
    }
}

impl Filter for PartitionedBloom {
    fn contains(&self, key: u64) -> bool {
        (0..self.k).all(|i| {
            let idx = self.index(key, i);
            self.bits[(idx / 64) as usize] & (1u64 << (idx % 64)) != 0
        })
    }

    fn bits(&self) -> u64 {
        self.partition_bits * self.k as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = PartitionedBloom::for_capacity(2000, 0.01).unwrap();
        for key in 0..2000u64 {
            f.insert(key ^ 0xabcd_ef01_2345_6789);
        }
        for key in 0..2000u64 {
            assert!(f.contains(key ^ 0xabcd_ef01_2345_6789));
        }
    }

    #[test]
    fn fpr_in_expected_ballpark() {
        let n = 10_000u64;
        let mut f = PartitionedBloom::for_capacity(n, 0.02).unwrap();
        for key in 0..n {
            f.insert(key);
        }
        let trials = 50_000u64;
        let fp = (n..n + trials).filter(|&k| f.contains(k)).count() as f64;
        let measured = fp / trials as f64;
        // Partitioned filters run slightly above target; allow 2×.
        assert!(measured < 0.04, "measured {measured}");
    }

    #[test]
    fn partitions_fill_evenly() {
        let mut f = PartitionedBloom::with_params(4096, 4, 11).unwrap();
        for key in 0..2000u64 {
            f.insert(key);
        }
        let max = f.max_partition_fill();
        // Expected fill ≈ 1 − e^{−2000/4096} ≈ 0.386.
        assert!((0.3..0.5).contains(&max), "max fill {max}");
    }

    #[test]
    fn geometry_validation() {
        assert!(PartitionedBloom::with_params(0, 4, 0).is_err());
        assert!(PartitionedBloom::with_params(64, 0, 0).is_err());
        assert!(PartitionedBloom::with_params(64, 64, 0).is_err());
    }

    #[test]
    fn bits_accounts_all_partitions() {
        let f = PartitionedBloom::with_params(1000, 5, 0).unwrap();
        assert_eq!(f.bits(), 5000);
    }
}
