//! The standard Bloom filter, as assumed by the paper's §4.4 sizing
//! argument.
//!
//! Ledgers export a filter of their claimed photo identifiers; proxies OR
//! all ledger filters together ([`BloomFilter::union_with`]) and consult the
//! result before issuing a real ledger query.

use crate::hash::double_hash_indices;
use crate::{Filter, FilterError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serialization magic for [`BloomFilter::to_bytes`].
const MAGIC: u32 = 0x4952_5342; // "IRSB"

/// A classic Bloom filter over `u64` keys.
///
/// ```
/// use irs_filters::{BloomFilter, Filter};
///
/// let mut filter = BloomFilter::for_capacity(1_000, 0.02).unwrap();
/// filter.insert(42);
/// assert!(filter.contains(42));          // no false negatives, ever
/// // Ledgers publish, proxies OR:
/// let mut merged = BloomFilter::from_bytes(filter.to_bytes()).unwrap();
/// let other = BloomFilter::with_params(merged.m_bits(), merged.k(), merged.seed()).unwrap();
/// merged.union_with(&other).unwrap();
/// assert!(merged.contains(42));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m: u64,
    k: u32,
    seed: u64,
    inserted: u64,
}

impl BloomFilter {
    /// Create a filter with an explicit number of bits and hash functions.
    pub fn with_params(m_bits: u64, k: u32, seed: u64) -> Result<BloomFilter, FilterError> {
        if m_bits == 0 {
            return Err(FilterError::BadParams("m_bits must be > 0"));
        }
        if k == 0 || k > 32 {
            return Err(FilterError::BadParams("k must be in 1..=32"));
        }
        let words = m_bits.div_ceil(64) as usize;
        Ok(BloomFilter {
            bits: vec![0u64; words],
            m: m_bits,
            k,
            seed,
            inserted: 0,
        })
    }

    /// Create a filter sized optimally for `capacity` keys at `target_fpr`.
    pub fn for_capacity(capacity: u64, target_fpr: f64) -> Result<BloomFilter, FilterError> {
        if !(1e-10..1.0).contains(&target_fpr) {
            return Err(FilterError::BadParams("target_fpr must be in (0, 1)"));
        }
        let capacity = capacity.max(1);
        let m = crate::analysis::bits_for(capacity, target_fpr).max(64);
        let k = crate::analysis::optimal_k_clamped(m, capacity);
        BloomFilter::with_params(m, k, 0)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        for idx in double_hash_indices(key, self.seed, self.k, self.m) {
            self.bits[(idx / 64) as usize] |= 1u64 << (idx % 64);
        }
        self.inserted += 1;
    }

    /// Number of `insert` calls so far (duplicates counted).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Number of bits in the filter.
    pub fn m_bits(&self) -> u64 {
        self.m
    }

    /// Number of hash functions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Hash seed (filters can only be unioned if seeds and geometry agree).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fraction of bits set; the analytic FPR is `fill_ratio^k`.
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.m as f64
    }

    /// FPR estimated from the current fill ratio.
    pub fn estimated_fpr(&self) -> f64 {
        self.fill_ratio().powi(self.k as i32)
    }

    /// OR another filter into this one. Both filters must have identical
    /// geometry (m, k, seed); this is how a proxy merges per-ledger filters.
    pub fn union_with(&mut self, other: &BloomFilter) -> Result<(), FilterError> {
        if self.m != other.m || self.k != other.k || self.seed != other.seed {
            return Err(FilterError::BadParams("union requires identical geometry"));
        }
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
        self.inserted += other.inserted;
        Ok(())
    }

    /// Raw bit words (used by the delta encoder).
    pub(crate) fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Mutable bit words (used by the delta applier).
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.bits
    }

    /// Set the insert counter (used when applying deltas, which carry the
    /// new counter value).
    pub(crate) fn set_inserted(&mut self, n: u64) {
        self.inserted = n;
    }

    /// Read one bit. Together with [`BloomFilter::set_bit`] and
    /// [`BloomFilter::clear_bit`] this lets the proxy maintain its merged
    /// union filter incrementally — patching O(flips) bits per delta
    /// instead of re-ORing every per-ledger filter.
    ///
    /// # Panics
    /// If `pos` is outside the filter's bit words.
    pub fn bit(&self, pos: u64) -> bool {
        self.bits[(pos / 64) as usize] & (1u64 << (pos % 64)) != 0
    }

    /// Set one bit without touching the insert counter (merged-view
    /// maintenance; see [`BloomFilter::bit`]).
    pub fn set_bit(&mut self, pos: u64) {
        self.bits[(pos / 64) as usize] |= 1u64 << (pos % 64);
    }

    /// Clear one bit without touching the insert counter (merged-view
    /// maintenance; see [`BloomFilter::bit`]).
    pub fn clear_bit(&mut self, pos: u64) {
        self.bits[(pos / 64) as usize] &= !(1u64 << (pos % 64));
    }

    /// `true` if no bit is set (an empty delta tier never needs probing).
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Serialize: magic, m, k, seed, inserted, bit words. This is the
    /// payload a ledger publishes hourly.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(36 + self.bits.len() * 8);
        buf.put_u32(MAGIC);
        buf.put_u64(self.m);
        buf.put_u32(self.k);
        buf.put_u64(self.seed);
        buf.put_u64(self.inserted);
        for w in &self.bits {
            buf.put_u64(*w);
        }
        buf.freeze()
    }

    /// Deserialize a filter from [`BloomFilter::to_bytes`] output.
    pub fn from_bytes(mut data: Bytes) -> Result<BloomFilter, FilterError> {
        if data.remaining() < 32 {
            return Err(FilterError::Malformed("header truncated"));
        }
        if data.get_u32() != MAGIC {
            return Err(FilterError::Malformed("bad magic"));
        }
        let m = data.get_u64();
        let k = data.get_u32();
        let seed = data.get_u64();
        let inserted = data.get_u64();
        let words = m.div_ceil(64) as usize;
        if data.remaining() != words * 8 {
            return Err(FilterError::Malformed("payload length mismatch"));
        }
        let mut filter = BloomFilter::with_params(m, k, seed)?;
        for w in filter.bits.iter_mut() {
            *w = data.get_u64();
        }
        filter.inserted = inserted;
        Ok(filter)
    }
}

impl Filter for BloomFilter {
    fn contains(&self, key: u64) -> bool {
        double_hash_indices(key, self.seed, self.k, self.m)
            .all(|idx| self.bits[(idx / 64) as usize] & (1u64 << (idx % 64)) != 0)
    }

    fn bits(&self) -> u64 {
        self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::for_capacity(1000, 0.01).unwrap();
        for key in 0..1000u64 {
            f.insert(key.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        for key in 0..1000u64 {
            assert!(f.contains(key.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        }
    }

    #[test]
    fn fpr_close_to_target() {
        let n = 20_000u64;
        let target = 0.02;
        let mut f = BloomFilter::for_capacity(n, target).unwrap();
        for key in 0..n {
            f.insert(key);
        }
        let mut fp = 0u64;
        let trials = 100_000u64;
        for key in n..n + trials {
            if f.contains(key) {
                fp += 1;
            }
        }
        let measured = fp as f64 / trials as f64;
        assert!(
            measured < target * 1.6,
            "measured {measured} vs target {target}"
        );
        assert!(measured > target * 0.4, "suspiciously low fpr {measured}");
    }

    #[test]
    fn estimated_fpr_tracks_fill() {
        let mut f = BloomFilter::with_params(1 << 14, 6, 1).unwrap();
        assert_eq!(f.estimated_fpr(), 0.0);
        for key in 0..1500u64 {
            f.insert(key);
        }
        let est = f.estimated_fpr();
        let analytic = crate::analysis::bloom_fpr(1 << 14, 1500, 6);
        assert!(
            (est - analytic).abs() < analytic * 0.5,
            "{est} vs {analytic}"
        );
    }

    #[test]
    fn union_behaves_like_combined_inserts() {
        let mut a = BloomFilter::with_params(4096, 5, 7).unwrap();
        let mut b = BloomFilter::with_params(4096, 5, 7).unwrap();
        for key in 0..100u64 {
            a.insert(key);
        }
        for key in 100..200u64 {
            b.insert(key);
        }
        a.union_with(&b).unwrap();
        for key in 0..200u64 {
            assert!(a.contains(key));
        }
        assert_eq!(a.inserted(), 200);
    }

    #[test]
    fn union_rejects_mismatched_geometry() {
        let mut a = BloomFilter::with_params(4096, 5, 7).unwrap();
        let b = BloomFilter::with_params(4096, 6, 7).unwrap();
        let c = BloomFilter::with_params(8192, 5, 7).unwrap();
        let d = BloomFilter::with_params(4096, 5, 8).unwrap();
        assert!(a.union_with(&b).is_err());
        assert!(a.union_with(&c).is_err());
        assert!(a.union_with(&d).is_err());
    }

    #[test]
    fn serialization_roundtrip() {
        let mut f = BloomFilter::with_params(1 << 12, 4, 99).unwrap();
        for key in 0..500u64 {
            f.insert(key * 3);
        }
        let bytes = f.to_bytes();
        let g = BloomFilter::from_bytes(bytes).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn deserialization_rejects_garbage() {
        assert!(BloomFilter::from_bytes(Bytes::from_static(b"short")).is_err());
        let mut good = BloomFilter::with_params(128, 2, 0)
            .unwrap()
            .to_bytes()
            .to_vec();
        good[0] ^= 0xff; // corrupt magic
        assert!(BloomFilter::from_bytes(Bytes::from(good)).is_err());
        let mut trunc = BloomFilter::with_params(128, 2, 0)
            .unwrap()
            .to_bytes()
            .to_vec();
        trunc.pop();
        assert!(BloomFilter::from_bytes(Bytes::from(trunc)).is_err());
    }

    #[test]
    fn bad_params_rejected() {
        assert!(BloomFilter::with_params(0, 3, 0).is_err());
        assert!(BloomFilter::with_params(100, 0, 0).is_err());
        assert!(BloomFilter::with_params(100, 33, 0).is_err());
        assert!(BloomFilter::for_capacity(100, 0.0).is_err());
        assert!(BloomFilter::for_capacity(100, 1.0).is_err());
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::with_params(1 << 16, 6, 3).unwrap();
        let hits = (0..10_000u64).filter(|&k| f.contains(k)).count();
        assert_eq!(hits, 0);
    }
}
