//! Probabilistic membership filters for the IRS bootstrap design (§4.4 of
//! the paper).
//!
//! Proxies (and optionally browsers) hold a filter over all *claimed* photo
//! identifiers so that the common case — a labeled photo that is claimed but
//! whose record is not present / not revoked — can be answered locally, and
//! only filter hits generate real ledger queries. The paper sizes this as
//! "a 1 GB filter … 2 % false-hit rate with a population of 1 billion
//! photos, thereby lessening the load on ledgers by a factor of fifty".
//!
//! This crate provides:
//!
//! * [`bloom::BloomFilter`] — the standard Bloom filter the paper's sizing
//!   argument assumes, with union (the proxy ORs per-ledger filters) and
//!   byte-level serialization;
//! * [`partitioned::PartitionedBloom`] — the k-partition variant;
//! * [`counting::CountingBloom`] — 4-bit counters supporting deletion, used
//!   by ledgers to maintain a filter under claim *and* unclaim churn;
//! * [`xor::Xor8`] / [`xor::Xor16`] — static xor filters (Graf & Lemire,
//!   cited as "more recent advances" \[15\]);
//! * [`fuse::Fuse8`] / [`fuse::Fuse16`] — fuse-graph filters in the spirit
//!   of binary fuse filters \[16\] (see module docs for construction
//!   fidelity);
//! * [`delta`] — delta encoding of Bloom filter updates, for the paper's
//!   "transferred with a delta encoding such that the update traffic will
//!   be low" (hourly refresh, §4.4);
//! * [`tiered`] — the production pipeline: a frozen fuse8 base sealed per
//!   epoch plus a small Bloom delta for churn since the seal, with
//!   background compaction rolling the epoch (DESIGN.md §16).
//!
//! All filters share the [`Filter`] trait and key on `u64` values; callers
//! hash record identifiers down to 64 bits (see `irs_core::RecordId`).

pub mod analysis;
pub mod bloom;
pub mod counting;
pub mod delta;
pub mod fuse;
pub mod hash;
pub mod partitioned;
pub mod tiered;
pub mod xor;

pub use bloom::BloomFilter;
pub use counting::CountingBloom;
pub use fuse::{Fuse16, Fuse8};
pub use partitioned::PartitionedBloom;
pub use tiered::{
    PublishOutcome, TieredConfig, TieredFilter, TieredPublisher, TieredServe, TieredSnapshot,
};
pub use xor::{Xor16, Xor8};

/// An approximate membership filter: never a false negative for inserted
/// keys, false positives at the filter's design rate.
pub trait Filter {
    /// `true` if `key` *may* have been inserted; `false` means definitely
    /// not inserted.
    fn contains(&self, key: u64) -> bool;

    /// Size of the filter's payload in bits (excluding struct overhead);
    /// used by the space-efficiency experiments (E4/E12).
    fn bits(&self) -> u64;
}

/// Errors from filter construction or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterError {
    /// Static construction (xor/fuse peeling) failed after all retries —
    /// statistically negligible for correct sizing, but surfaced rather
    /// than looping forever.
    ConstructionFailed,
    /// Byte payload too short or structurally invalid.
    Malformed(&'static str),
    /// Parameters out of range (e.g. zero bits, zero hashes).
    BadParams(&'static str),
    /// Duplicate keys passed to a static filter builder.
    DuplicateKeys,
}

impl std::fmt::Display for FilterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterError::ConstructionFailed => write!(f, "static filter construction failed"),
            FilterError::Malformed(what) => write!(f, "malformed filter encoding: {what}"),
            FilterError::BadParams(what) => write!(f, "bad filter parameters: {what}"),
            FilterError::DuplicateKeys => write!(f, "duplicate keys in static filter input"),
        }
    }
}

impl std::error::Error for FilterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_object_usable() {
        let mut b = BloomFilter::for_capacity(100, 0.01).unwrap();
        b.insert(42);
        let f: &dyn Filter = &b;
        assert!(f.contains(42));
        assert!(f.bits() > 0);
    }
}
