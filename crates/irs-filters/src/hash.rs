//! 64-bit mixing functions used by every filter in this crate.
//!
//! Filters key on `u64` values that are themselves digests of record
//! identifiers, but we still re-mix with a per-filter seed so that (a) two
//! filters built over the same key set have independent false-positive sets
//! and (b) static construction can retry with a fresh seed on peel failure.

/// splitmix64 finalizer — a full-avalanche 64→64 bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mix a key with a seed.
#[inline]
pub fn mix_seeded(key: u64, seed: u64) -> u64 {
    mix64(key ^ mix64(seed))
}

/// Map a 64-bit hash to `[0, n)` without modulo bias (Lemire's
/// multiply-shift reduction).
#[inline]
pub fn reduce(hash: u64, n: u64) -> u64 {
    ((hash as u128 * n as u128) >> 64) as u64
}

/// Derive `k` indices in `[0, m)` via Kirsch–Mitzenmacher double hashing.
#[inline]
pub fn double_hash_indices(key: u64, seed: u64, k: u32, m: u64) -> impl Iterator<Item = u64> {
    let h = mix_seeded(key, seed);
    let h1 = h;
    // Ensure h2 is odd so successive probes do not collapse.
    let h2 = mix64(h) | 1;
    (0..k).map(move |i| reduce(h1.wrapping_add((i as u64).wrapping_mul(h2)), m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        // Crude avalanche check: flipping one input bit flips ~half the
        // output bits on average.
        let mut total = 0u32;
        for bit in 0..64 {
            total += (mix64(0xdead_beef) ^ mix64(0xdead_beef ^ (1 << bit))).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((20.0..44.0).contains(&avg), "avalanche avg {avg}");
    }

    #[test]
    fn reduce_stays_in_range() {
        for n in [1u64, 2, 3, 1000, u32::MAX as u64] {
            for h in [0u64, 1, u64::MAX, 0x8000_0000_0000_0000] {
                assert!(reduce(h, n) < n);
            }
        }
    }

    #[test]
    fn reduce_is_roughly_uniform() {
        let n = 10u64;
        let mut counts = [0u64; 10];
        for i in 0..10_000u64 {
            counts[reduce(mix64(i), n) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn double_hash_produces_k_indices_in_range() {
        let idx: Vec<u64> = double_hash_indices(42, 7, 6, 1000).collect();
        assert_eq!(idx.len(), 6);
        assert!(idx.iter().all(|&i| i < 1000));
        // Different seeds give different index sets (overwhelmingly).
        let idx2: Vec<u64> = double_hash_indices(42, 8, 6, 1000).collect();
        assert_ne!(idx, idx2);
    }
}
