//! Tiered revoked-set filters: a frozen [`Fuse8`] base sealed per *epoch*
//! plus a small mutable Bloom delta covering revocations since the seal.
//!
//! §4.4 sizes the proxy filter as the thing that makes global revocation
//! affordable, and E12 shows static fuse filters beat FPR-matched Blooms
//! on both space (9.44 vs 11.54 bits/key) and query time — but they cannot
//! absorb churn. The tiering resolves that tension:
//!
//! * the **base** tier is a fuse8 filter over every key revoked up to the
//!   epoch seal — immutable, near-optimal space, shipped once per epoch;
//! * the **delta** tier is a small Bloom filter over keys revoked *since*
//!   the seal — mutable, cache-resident, kept fresh by the existing
//!   [`BloomDelta`] update channel;
//! * [`TieredFilter::contains`] ORs both tiers, so a miss still means
//!   "definitely not revoked" (no false negatives, ever);
//! * background **compaction** ([`TieredPublisher::publish`]) rebuilds the
//!   base over the full revoked set and resets the delta when the delta's
//!   key count crosses a threshold, bumping the epoch.
//!
//! Keys *unrevoked* after the seal simply remain in the frozen base as
//! harmless false positives until the next compaction sweeps them out —
//! soundness only requires the filter to over-approximate the revoked set.

use crate::bloom::BloomFilter;
use crate::delta::BloomDelta;
use crate::fuse::Fuse8;
use crate::{Filter, FilterError};
use bytes::Bytes;
use std::collections::HashSet;
use std::sync::Arc;

/// Sizing knobs for the delta tier and the compaction trigger.
#[derive(Clone, Copy, Debug)]
pub struct TieredConfig {
    /// Keys the delta Bloom is sized for. Small by design: the delta only
    /// covers churn since the last epoch seal, so it stays cache-resident.
    pub delta_capacity: u64,
    /// Delta tier's FPR budget. The effective tiered FPR is the base's
    /// ≈1/256 plus this, so keep it well below 1/256's order.
    pub delta_fpr: f64,
    /// Delta key count that triggers an epoch roll on the next publish.
    pub compact_at: u64,
}

impl Default for TieredConfig {
    fn default() -> Self {
        TieredConfig {
            delta_capacity: 8_192,
            delta_fpr: 1e-3,
            compact_at: 4_096,
        }
    }
}

impl TieredConfig {
    fn empty_delta(&self) -> Result<BloomFilter, FilterError> {
        BloomFilter::for_capacity(self.delta_capacity, self.delta_fpr)
    }
}

/// The client-side (proxy) view of one ledger's tiered filter.
#[derive(Clone, Debug)]
pub struct TieredFilter {
    epoch: u64,
    base: Option<Fuse8>,
    delta: BloomFilter,
    delta_version: u64,
}

impl TieredFilter {
    /// Assemble a tier from decoded parts.
    pub fn new(epoch: u64, base: Option<Fuse8>, delta: BloomFilter, delta_version: u64) -> Self {
        TieredFilter {
            epoch,
            base,
            delta,
            delta_version,
        }
    }

    /// Decode a tier from wire payloads (an empty `base` blob means the
    /// ledger has not sealed an epoch yet).
    pub fn from_wire(
        epoch: u64,
        base: &Bytes,
        delta_version: u64,
        delta: Bytes,
    ) -> Result<TieredFilter, FilterError> {
        let base = if base.is_empty() {
            None
        } else {
            Some(Fuse8::from_bytes(base.clone())?)
        };
        Ok(TieredFilter {
            epoch,
            base,
            delta: BloomFilter::from_bytes(delta)?,
            delta_version,
        })
    }

    /// Epoch of the sealed base tier.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Version of the delta tier within the current epoch.
    pub fn delta_version(&self) -> u64 {
        self.delta_version
    }

    /// The frozen base tier, if an epoch has been sealed.
    pub fn base(&self) -> Option<&Fuse8> {
        self.base.as_ref()
    }

    /// The mutable delta tier.
    pub fn delta(&self) -> &BloomFilter {
        &self.delta
    }

    /// Apply a same-epoch delta update. Atomic: a rejected delta leaves
    /// the tier untouched (see [`BloomDelta::apply`]).
    pub fn apply_delta(&mut self, delta: &BloomDelta, to_version: u64) -> Result<(), FilterError> {
        delta.apply(&mut self.delta)?;
        self.delta_version = to_version;
        Ok(())
    }

    /// Install a freshly sealed base for `epoch` and reset the delta tier
    /// (the server resets its delta at the seal, and delta geometry is
    /// fixed per config, so clearing our copy reproduces it exactly).
    /// Only a single-epoch advance is accepted — anything else means this
    /// client missed state and must resync with a full tiered install.
    pub fn roll_epoch(&mut self, epoch: u64, base: &Bytes) -> Result<(), FilterError> {
        if epoch != self.epoch.wrapping_add(1) {
            return Err(FilterError::BadParams("epoch roll is not single-step"));
        }
        let base = Fuse8::from_bytes(base.clone())?;
        for w in self.delta.words_mut() {
            *w = 0;
        }
        self.delta.set_inserted(0);
        self.base = Some(base);
        self.epoch = epoch;
        self.delta_version = 0;
        Ok(())
    }

    /// Resident size of both tiers in bits (proxy memory accounting).
    pub fn resident_bits(&self) -> u64 {
        self.base.as_ref().map_or(0, |b| b.bits()) + self.delta.bits()
    }
}

impl Filter for TieredFilter {
    /// `true` if either tier may contain `key`; `false` is authoritative.
    fn contains(&self, key: u64) -> bool {
        self.delta.contains(key) || self.base.as_ref().is_some_and(|b| b.contains(key))
    }

    fn bits(&self) -> u64 {
        self.resident_bits()
    }
}

/// What one publish pass did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PublishOutcome {
    /// Nothing changed since the last publish.
    Unchanged,
    /// The delta tier advanced to this version.
    DeltaAdvanced(u64),
    /// The base was rebuilt over the full revoked set and the delta reset;
    /// this is the new epoch.
    Compacted(u64),
}

/// One answer to a tiered filter request.
#[derive(Clone, Debug)]
pub enum TieredServe {
    /// Client is up to date.
    Current,
    /// Same epoch, client is exactly one delta version behind.
    Delta {
        /// Version the client holds (the diff's precondition).
        from_version: u64,
        /// Version the diff produces.
        to_version: u64,
        /// The bit-flip diff between the two delta snapshots.
        delta: BloomDelta,
    },
    /// The epoch rolled by exactly one and the new delta is still empty:
    /// ship only the sealed base, the client clears its delta locally.
    Base {
        /// The newly sealed epoch.
        epoch: u64,
        /// Encoded fuse8 base tier.
        base: Bytes,
    },
    /// Full resync: base + delta (bootstrap, multi-epoch lag, or any
    /// version the server can no longer diff against).
    Tiered {
        /// Current epoch.
        epoch: u64,
        /// Encoded fuse8 base tier (empty if no epoch sealed yet).
        base: Bytes,
        /// Current delta version.
        delta_version: u64,
        /// Encoded delta Bloom.
        delta: Bytes,
    },
}

/// An immutable, cheaply clonable publication of the tiered state —
/// concurrent ledgers keep `Arc<TieredSnapshot>` behind a lock and serve
/// requests entirely off-lock.
#[derive(Clone, Debug)]
pub struct TieredSnapshot {
    epoch: u64,
    base_bytes: Bytes,
    delta: BloomFilter,
    delta_bytes: Bytes,
    delta_version: u64,
    prev_delta: Option<(u64, BloomFilter)>,
}

impl TieredSnapshot {
    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current delta version.
    pub fn delta_version(&self) -> u64 {
        self.delta_version
    }

    /// Encoded base tier (empty until the first epoch seals).
    pub fn base_bytes(&self) -> &Bytes {
        &self.base_bytes
    }

    /// The published delta tier (ledgers diff against it to answer
    /// up-to-date requesters with an empty delta).
    pub fn delta(&self) -> &BloomFilter {
        &self.delta
    }

    /// Decide what to send a client that holds `(have_epoch, have_version)`.
    ///
    /// The fallback matrix (also in DESIGN.md §16): current → `Current`;
    /// same epoch one version behind → `Delta`; single-epoch lag onto a
    /// still-empty delta → `Base`; everything else → full `Tiered`.
    pub fn serve(&self, have_epoch: u64, have_version: u64) -> TieredServe {
        if have_epoch == self.epoch {
            if have_version == self.delta_version {
                return TieredServe::Current;
            }
            if let Some((prev_version, prev)) = &self.prev_delta {
                if *prev_version == have_version {
                    if let Ok(delta) = BloomDelta::diff(prev, &self.delta) {
                        return TieredServe::Delta {
                            from_version: have_version,
                            to_version: self.delta_version,
                            delta,
                        };
                    }
                }
            }
        } else if have_epoch.wrapping_add(1) == self.epoch
            && have_epoch >= 1
            && self.delta_version == 0
            && self.delta.inserted() == 0
        {
            return TieredServe::Base {
                epoch: self.epoch,
                base: self.base_bytes.clone(),
            };
        }
        TieredServe::Tiered {
            epoch: self.epoch,
            base: self.base_bytes.clone(),
            delta_version: self.delta_version,
            delta: self.delta_bytes.clone(),
        }
    }
}

/// The ledger-side tiered state machine: tracks the sealed base key set,
/// rebuilds the delta tier from the live revoked set on each publish, and
/// compacts (seals a new epoch) when the delta outgrows its budget.
#[derive(Debug)]
pub struct TieredPublisher {
    cfg: TieredConfig,
    epoch: u64,
    base_keys: HashSet<u64>,
    base_bytes: Bytes,
    delta: BloomFilter,
    delta_keys: HashSet<u64>,
    delta_version: u64,
    prev_delta: Option<(u64, BloomFilter)>,
    failed_compactions: u64,
    snap: Arc<TieredSnapshot>,
}

impl TieredPublisher {
    /// Create a publisher with no sealed epoch (epoch 1, empty tiers).
    pub fn new(cfg: TieredConfig) -> Result<TieredPublisher, FilterError> {
        let delta = cfg.empty_delta()?;
        let snap = Arc::new(TieredSnapshot {
            epoch: 1,
            base_bytes: Bytes::new(),
            delta_bytes: delta.to_bytes(),
            delta: delta.clone(),
            delta_version: 0,
            prev_delta: None,
        });
        Ok(TieredPublisher {
            cfg,
            epoch: 1,
            base_keys: HashSet::new(),
            base_bytes: Bytes::new(),
            delta,
            delta_keys: HashSet::new(),
            delta_version: 0,
            prev_delta: None,
            failed_compactions: 0,
            snap,
        })
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current delta version.
    pub fn delta_version(&self) -> u64 {
        self.delta_version
    }

    /// Fuse constructions that failed (the publisher falls back to growing
    /// the delta and retries at the next publish).
    pub fn failed_compactions(&self) -> u64 {
        self.failed_compactions
    }

    /// The current publication, cheap to clone and safe to serve off-lock.
    pub fn snapshot(&self) -> Arc<TieredSnapshot> {
        Arc::clone(&self.snap)
    }

    /// Reconcile the tiers with the ledger's live revoked key set.
    ///
    /// Delta keys are `revoked \ base`; if they exceed the compaction
    /// threshold the base is rebuilt over the *entire* revoked set (also
    /// sweeping out keys unrevoked since the last seal), the epoch
    /// advances, and the delta resets. A failed fuse construction is not
    /// fatal: the delta keeps absorbing churn and compaction retries on
    /// the next publish.
    pub fn publish(&mut self, revoked: &HashSet<u64>) -> Result<PublishOutcome, FilterError> {
        let delta_keys: HashSet<u64> = revoked.difference(&self.base_keys).copied().collect();
        if delta_keys.len() as u64 >= self.cfg.compact_at {
            let keys: Vec<u64> = revoked.iter().copied().collect();
            match Fuse8::build(&keys) {
                Ok(base) => {
                    self.epoch += 1;
                    self.base_bytes = base.to_bytes();
                    self.base_keys = revoked.clone();
                    self.delta = self.cfg.empty_delta()?;
                    self.delta_keys = HashSet::new();
                    self.delta_version = 0;
                    self.prev_delta = None;
                    self.refresh_snapshot();
                    return Ok(PublishOutcome::Compacted(self.epoch));
                }
                Err(_) => self.failed_compactions += 1,
            }
        }
        if delta_keys == self.delta_keys {
            return Ok(PublishOutcome::Unchanged);
        }
        let mut next = self.cfg.empty_delta()?;
        for &k in &delta_keys {
            next.insert(k);
        }
        self.prev_delta = Some((self.delta_version, std::mem::replace(&mut self.delta, next)));
        self.delta_keys = delta_keys;
        self.delta_version += 1;
        self.refresh_snapshot();
        Ok(PublishOutcome::DeltaAdvanced(self.delta_version))
    }

    fn refresh_snapshot(&mut self) {
        self.snap = Arc::new(TieredSnapshot {
            epoch: self.epoch,
            base_bytes: self.base_bytes.clone(),
            delta_bytes: self.delta.to_bytes(),
            delta: self.delta.clone(),
            delta_version: self.delta_version,
            prev_delta: self.prev_delta.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::mix64;

    fn keyset(range: std::ops::Range<u64>) -> HashSet<u64> {
        range.map(mix64).collect()
    }

    /// Drive a publisher and mirror its publications into a client-side
    /// `TieredFilter` exactly as the proxy refresh path would.
    pub(super) fn sync(client: &mut Option<TieredFilter>, snap: &TieredSnapshot) {
        let (have_epoch, have_version) = client
            .as_ref()
            .map_or((0, 0), |t| (t.epoch(), t.delta_version()));
        match snap.serve(have_epoch, have_version) {
            TieredServe::Current => {}
            TieredServe::Delta {
                to_version, delta, ..
            } => {
                client
                    .as_mut()
                    .unwrap()
                    .apply_delta(&delta, to_version)
                    .unwrap();
            }
            TieredServe::Base { epoch, base } => {
                client.as_mut().unwrap().roll_epoch(epoch, &base).unwrap();
            }
            TieredServe::Tiered {
                epoch,
                base,
                delta_version,
                delta,
            } => {
                *client =
                    Some(TieredFilter::from_wire(epoch, &base, delta_version, delta).unwrap());
            }
        }
    }

    #[test]
    fn tiers_or_together_without_false_negatives() {
        let cfg = TieredConfig {
            delta_capacity: 512,
            delta_fpr: 1e-3,
            compact_at: 256,
        };
        let mut publisher = TieredPublisher::new(cfg).unwrap();
        let mut client: Option<TieredFilter> = None;

        // Enough keys to seal an epoch, then churn into the delta.
        let sealed = keyset(0..1000);
        assert_eq!(
            publisher.publish(&sealed).unwrap(),
            PublishOutcome::Compacted(2)
        );
        sync(&mut client, &publisher.snapshot());
        let t = client.as_ref().unwrap();
        assert_eq!(t.epoch(), 2);
        assert!(t.base().is_some());

        let mut revoked = sealed.clone();
        revoked.extend(keyset(1000..1100));
        assert_eq!(
            publisher.publish(&revoked).unwrap(),
            PublishOutcome::DeltaAdvanced(1)
        );
        sync(&mut client, &publisher.snapshot());
        let t = client.as_ref().unwrap();
        for k in keyset(0..1100) {
            assert!(t.contains(k), "tiered filter lost a revoked key");
        }
    }

    #[test]
    fn compaction_resets_delta_and_sweeps_unrevoked() {
        let cfg = TieredConfig {
            delta_capacity: 256,
            delta_fpr: 1e-3,
            compact_at: 64,
        };
        let mut publisher = TieredPublisher::new(cfg).unwrap();
        let mut revoked = keyset(0..100);
        publisher.publish(&revoked).unwrap();
        assert_eq!(publisher.epoch(), 2);

        // Unrevoke one key: it stays in the frozen base (harmless FP)…
        let gone = mix64(0);
        revoked.remove(&gone);
        publisher.publish(&revoked).unwrap();
        let mut client = None;
        sync(&mut client, &publisher.snapshot());
        assert!(client.as_ref().unwrap().contains(gone));

        // …until the next compaction sweeps it out.
        revoked.extend(keyset(100..200));
        assert!(matches!(
            publisher.publish(&revoked).unwrap(),
            PublishOutcome::Compacted(3)
        ));
        sync(&mut client, &publisher.snapshot());
        let t = client.as_ref().unwrap();
        assert_eq!(t.epoch(), 3);
        assert_eq!(t.delta_version(), 0);
        assert!(t.delta().inserted() == 0);
        for &k in &revoked {
            assert!(t.contains(k));
        }
        // The swept key is now subject only to the base's design FPR, so
        // it is *allowed* to hit, but the full revoked set must.
    }

    #[test]
    fn serve_matrix_covers_all_lags() {
        let cfg = TieredConfig {
            delta_capacity: 512,
            delta_fpr: 1e-3,
            compact_at: 128,
        };
        let mut publisher = TieredPublisher::new(cfg).unwrap();
        let mut revoked = keyset(0..200);
        publisher.publish(&revoked).unwrap(); // epoch 2, v0

        // Bootstrap client → full tiered install.
        assert!(matches!(
            publisher.snapshot().serve(0, 0),
            TieredServe::Tiered { epoch: 2, .. }
        ));
        // Single-epoch lag onto empty delta → base-only.
        assert!(matches!(
            publisher.snapshot().serve(1, 0),
            TieredServe::Base { epoch: 2, .. }
        ));
        // Current → current.
        assert!(matches!(
            publisher.snapshot().serve(2, 0),
            TieredServe::Current
        ));

        revoked.extend(keyset(200..210));
        publisher.publish(&revoked).unwrap(); // epoch 2, v1
        assert!(matches!(
            publisher.snapshot().serve(2, 0),
            TieredServe::Delta {
                from_version: 0,
                to_version: 1,
                ..
            }
        ));
        // Two versions behind → full resync.
        revoked.extend(keyset(210..220));
        publisher.publish(&revoked).unwrap(); // epoch 2, v2
        assert!(matches!(
            publisher.snapshot().serve(2, 0),
            TieredServe::Tiered { .. }
        ));
        // Epoch lag with a non-empty delta → full resync, not base-only.
        let mut big = revoked.clone();
        big.extend(keyset(220..500));
        publisher.publish(&big).unwrap(); // epoch 3, v0
        big.extend(keyset(500..510));
        publisher.publish(&big).unwrap(); // epoch 3, v1
        assert!(matches!(
            publisher.snapshot().serve(2, 2),
            TieredServe::Tiered { epoch: 3, .. }
        ));
    }

    #[test]
    fn unchanged_publish_is_detected() {
        let mut publisher = TieredPublisher::new(TieredConfig::default()).unwrap();
        let revoked = keyset(0..50);
        assert!(matches!(
            publisher.publish(&revoked).unwrap(),
            PublishOutcome::DeltaAdvanced(1)
        ));
        assert_eq!(
            publisher.publish(&revoked).unwrap(),
            PublishOutcome::Unchanged
        );
        assert_eq!(publisher.delta_version(), 1);
    }

    #[test]
    fn epoch_roll_must_be_single_step() {
        let cfg = TieredConfig {
            delta_capacity: 256,
            delta_fpr: 1e-3,
            compact_at: 32,
        };
        let mut publisher = TieredPublisher::new(cfg).unwrap();
        publisher.publish(&keyset(0..40)).unwrap(); // epoch 2
        let mut client = None;
        sync(&mut client, &publisher.snapshot());
        publisher.publish(&keyset(0..80)).unwrap(); // epoch 3
        publisher.publish(&keyset(0..120)).unwrap(); // epoch 4
        let snap = publisher.snapshot();
        if let TieredServe::Base { epoch, base } = snap.serve(3, 0) {
            // A client at epoch 2 must refuse this single-step payload…
            assert!(client.as_mut().unwrap().roll_epoch(epoch, &base).is_err());
        }
        // …and the serve matrix hands the epoch-2 client a full resync.
        assert!(matches!(snap.serve(2, 0), TieredServe::Tiered { .. }));
    }

    /// Queries racing an epoch compaction never see a false negative: the
    /// snapshot-swap pattern (publish → new snapshot → client install)
    /// always presents a complete tier pair.
    #[test]
    fn concurrent_compaction_has_zero_false_negatives() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::RwLock;

        let cfg = TieredConfig {
            delta_capacity: 2_048,
            delta_fpr: 1e-3,
            compact_at: 512,
        };
        let mut publisher = TieredPublisher::new(cfg).unwrap();
        let total: u64 = 20_000;

        // Shared client-side tier, swapped whole like SharedProxy does.
        let mut seed_client = None;
        sync(&mut seed_client, &publisher.snapshot());
        let shared: Arc<RwLock<TieredFilter>> = Arc::new(RwLock::new(seed_client.unwrap()));
        // Readers only assert keys published *and installed* so far.
        let visible = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let mut readers = Vec::new();
        for r in 0..4u64 {
            let shared = Arc::clone(&shared);
            let visible = Arc::clone(&visible);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut probes = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let upto = visible.load(Ordering::Acquire);
                    if upto == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    let tier = shared.read().unwrap().clone();
                    // Probe a spread sample of the keys known to be
                    // installed; any miss is a soundness violation.
                    for j in 0..256u64 {
                        let i = (j.wrapping_mul(0x9e37_79b9).wrapping_add(r)) % upto;
                        assert!(tier.contains(mix64(i)), "false negative for key index {i}");
                        probes += 1;
                    }
                }
                probes
            }));
        }

        let mut revoked = HashSet::new();
        let mut client: Option<TieredFilter> = Some(shared.read().unwrap().clone());
        let mut compactions = 0u32;
        for chunk in 0..(total / 500) {
            for i in (chunk * 500)..((chunk + 1) * 500) {
                revoked.insert(mix64(i));
            }
            if matches!(
                publisher.publish(&revoked).unwrap(),
                PublishOutcome::Compacted(_)
            ) {
                compactions += 1;
            }
            sync(&mut client, &publisher.snapshot());
            *shared.write().unwrap() = client.clone().unwrap();
            visible.store((chunk + 1) * 500, Ordering::Release);
        }
        stop.store(true, Ordering::Release);
        let probes: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(compactions >= 2, "sweep never compacted ({compactions})");
        assert!(probes > 0, "readers never probed");
        // Final state: every revoked key answered by the tier pair.
        let tier = shared.read().unwrap().clone();
        for &k in &revoked {
            assert!(tier.contains(k));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// For any key set split across base epoch and delta, the tiered
        /// filter has zero false negatives, and compaction preserves that
        /// across an epoch roll.
        #[test]
        fn tiered_invariant_across_epoch_roll(
            base_n in 1u64..400,
            churn in prop::collection::vec(any::<u64>(), 0..200),
            compact_at in 16u64..64,
        ) {
            let cfg = TieredConfig {
                delta_capacity: 1024,
                delta_fpr: 1e-3,
                compact_at,
            };
            let mut publisher = TieredPublisher::new(cfg).unwrap();
            let mut revoked: HashSet<u64> =
                (0..base_n).map(crate::hash::mix64).collect();
            publisher.publish(&revoked).unwrap();
            let mut client = None;
            tests::sync(&mut client, &publisher.snapshot());
            for &k in &revoked {
                prop_assert!(client.as_ref().unwrap().contains(k));
            }
            // Arbitrary churn, publishing (and possibly compacting) every
            // few keys; the client follows via the serve matrix.
            for (i, &k) in churn.iter().enumerate() {
                revoked.insert(k);
                if i % 8 == 0 {
                    publisher.publish(&revoked).unwrap();
                    tests::sync(&mut client, &publisher.snapshot());
                }
            }
            publisher.publish(&revoked).unwrap();
            tests::sync(&mut client, &publisher.snapshot());
            let tier = client.unwrap();
            for &k in &revoked {
                prop_assert!(tier.contains(k), "false negative after churn");
            }
        }
    }
}
