//! Delta encoding for Bloom filter updates.
//!
//! §4.4: filters are "updated regularly (perhaps hourly), and transferred
//! with a delta encoding such that the update traffic will be low". A delta
//! is the sorted list of flipped bit positions, gap-compressed with LEB128
//! varints — a fresh claim sets at most `k` bits, so an hour of churn costs
//! ≈ `k · new_claims · ⌈log₂(gap)⌉/7` bytes instead of re-shipping the
//! whole filter (experiment E6 quantifies this).

use crate::bloom::BloomFilter;
use crate::FilterError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0x4952_5344; // "IRSD"

/// A compact description of the bit flips between two Bloom filters of
/// identical geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomDelta {
    m: u64,
    k: u32,
    seed: u64,
    new_inserted: u64,
    /// Sorted positions of bits that differ.
    flipped: Vec<u64>,
}

impl BloomDelta {
    /// Compute the delta that transforms `old` into `new`.
    pub fn diff(old: &BloomFilter, new: &BloomFilter) -> Result<BloomDelta, FilterError> {
        if old.m_bits() != new.m_bits() || old.k() != new.k() || old.seed() != new.seed() {
            return Err(FilterError::BadParams("delta requires identical geometry"));
        }
        let mut flipped = Vec::new();
        for (word_idx, (a, b)) in old.words().iter().zip(new.words().iter()).enumerate() {
            let mut x = a ^ b;
            while x != 0 {
                let bit = x.trailing_zeros() as u64;
                flipped.push(word_idx as u64 * 64 + bit);
                x &= x - 1;
            }
        }
        Ok(BloomDelta {
            m: new.m_bits(),
            k: new.k(),
            seed: new.seed(),
            new_inserted: new.inserted(),
            flipped,
        })
    }

    /// Apply the delta to `filter` in place. The filter must match the
    /// delta's geometry and (by XOR semantics) must be the `old` snapshot
    /// the delta was computed from for the result to equal `new`.
    ///
    /// Atomic: every flip position is validated against `m` before any
    /// word is touched, so a rejected delta leaves `filter` bit-identical
    /// to its pre-apply state. Proxies apply deltas to their *live* merged
    /// filters; a half-patched filter would silently break the "definitely
    /// not revoked" soundness guarantee.
    pub fn apply(&self, filter: &mut BloomFilter) -> Result<(), FilterError> {
        if filter.m_bits() != self.m || filter.k() != self.k || filter.seed() != self.seed {
            return Err(FilterError::BadParams("delta geometry mismatch"));
        }
        if self.flipped.iter().any(|&pos| pos >= self.m) {
            return Err(FilterError::Malformed("flip position out of range"));
        }
        for &pos in &self.flipped {
            filter.words_mut()[(pos / 64) as usize] ^= 1u64 << (pos % 64);
        }
        filter.set_inserted(self.new_inserted);
        Ok(())
    }

    /// Number of flipped bits.
    pub fn flips(&self) -> usize {
        self.flipped.len()
    }

    /// Sorted flipped-bit positions. The proxy's incremental merged-view
    /// maintenance walks these to patch its union filter in O(flips)
    /// instead of re-ORing every ledger filter.
    pub fn positions(&self) -> &[u64] {
        &self.flipped
    }

    /// Bit count of the geometry this delta applies to.
    pub fn m_bits(&self) -> u64 {
        self.m
    }

    /// Hash count of the geometry this delta applies to.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Hash seed of the geometry this delta applies to.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Encode: header + gap-compressed varint positions.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(44 + self.flipped.len() * 3);
        buf.put_u32(MAGIC);
        buf.put_u64(self.m);
        buf.put_u32(self.k);
        buf.put_u64(self.seed);
        buf.put_u64(self.new_inserted);
        buf.put_u64(self.flipped.len() as u64);
        let mut prev = 0u64;
        for &pos in &self.flipped {
            put_varint(&mut buf, pos - prev);
            prev = pos;
        }
        buf.freeze()
    }

    /// Decode from [`BloomDelta::to_bytes`] output.
    pub fn from_bytes(mut data: Bytes) -> Result<BloomDelta, FilterError> {
        if data.remaining() < 40 {
            return Err(FilterError::Malformed("delta header truncated"));
        }
        if data.get_u32() != MAGIC {
            return Err(FilterError::Malformed("bad delta magic"));
        }
        let m = data.get_u64();
        let k = data.get_u32();
        let seed = data.get_u64();
        let new_inserted = data.get_u64();
        let n = data.get_u64() as usize;
        if n > m as usize {
            return Err(FilterError::Malformed("flip count exceeds filter size"));
        }
        let mut flipped = Vec::with_capacity(n);
        let mut pos = 0u64;
        for i in 0..n {
            let gap = get_varint(&mut data).ok_or(FilterError::Malformed("varint truncated"))?;
            pos = pos
                .checked_add(gap)
                .ok_or(FilterError::Malformed("position overflow"))?;
            if i > 0 && gap == 0 {
                return Err(FilterError::Malformed("duplicate flip position"));
            }
            flipped.push(pos);
        }
        Ok(BloomDelta {
            m,
            k,
            seed,
            new_inserted,
            flipped,
        })
    }
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(data: &mut Bytes) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !data.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = data.get_u8();
        let payload = (byte & 0x7f) as u64;
        // The tenth byte lands at shift 63, where only one payload bit
        // still fits in a u64. Anything wider would be shifted out
        // silently, decoding a corrupted stream to a *wrong value*
        // instead of an error — reject it.
        if shift == 63 && payload > 1 {
            return None;
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_with(keys: impl Iterator<Item = u64>) -> BloomFilter {
        let mut f = BloomFilter::with_params(1 << 16, 6, 42).unwrap();
        for k in keys {
            f.insert(k);
        }
        f
    }

    #[test]
    fn diff_apply_roundtrip() {
        let old = filter_with(0..1000);
        let new = filter_with(0..1100);
        let delta = BloomDelta::diff(&old, &new).unwrap();
        let mut patched = old.clone();
        delta.apply(&mut patched).unwrap();
        assert_eq!(patched, new);
        assert_eq!(patched.inserted(), 1100);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let old = filter_with(0..500);
        let new = filter_with(0..620);
        let delta = BloomDelta::diff(&old, &new).unwrap();
        let decoded = BloomDelta::from_bytes(delta.to_bytes()).unwrap();
        assert_eq!(delta, decoded);
    }

    #[test]
    fn delta_is_much_smaller_than_full_filter() {
        let old = filter_with(0..100_000);
        let new = filter_with(0..100_500); // 0.5% churn
        let delta = BloomDelta::diff(&old, &new).unwrap();
        let full = new.to_bytes().len();
        let d = delta.to_bytes().len();
        assert!(
            d * 2 < full,
            "delta {d} bytes should be far below full {full} bytes"
        );
    }

    #[test]
    fn empty_delta() {
        let f = filter_with(0..100);
        let delta = BloomDelta::diff(&f, &f).unwrap();
        assert_eq!(delta.flips(), 0);
        let decoded = BloomDelta::from_bytes(delta.to_bytes()).unwrap();
        let mut g = f.clone();
        decoded.apply(&mut g).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let a = BloomFilter::with_params(1024, 4, 0).unwrap();
        let b = BloomFilter::with_params(2048, 4, 0).unwrap();
        assert!(BloomDelta::diff(&a, &b).is_err());
        let c = filter_with(0..10);
        let delta = BloomDelta::diff(&c, &c).unwrap();
        let mut wrong = BloomFilter::with_params(128, 2, 9).unwrap();
        assert!(delta.apply(&mut wrong).is_err());
    }

    #[test]
    fn malformed_encodings_rejected() {
        assert!(BloomDelta::from_bytes(Bytes::from_static(b"tiny")).is_err());
        let old = filter_with(0..10);
        let new = filter_with(0..20);
        let good = BloomDelta::diff(&old, &new).unwrap().to_bytes().to_vec();
        // Corrupt magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(BloomDelta::from_bytes(Bytes::from(bad)).is_err());
        // Truncate payload.
        let mut short = good.clone();
        short.truncate(good.len() - 1);
        assert!(BloomDelta::from_bytes(Bytes::from(short)).is_err());
    }

    #[test]
    fn out_of_range_flip_rejected_on_apply() {
        let delta = BloomDelta {
            m: 64,
            k: 2,
            seed: 0,
            new_inserted: 1,
            flipped: vec![64],
        };
        let mut f = BloomFilter::with_params(64, 2, 0).unwrap();
        assert!(delta.apply(&mut f).is_err());
    }

    #[test]
    fn rejected_delta_leaves_filter_bit_identical() {
        // Regression: `apply` used to validate positions *while* flipping,
        // so a malformed delta returned an error but left the live filter
        // half-patched. The filter must be untouched after a rejection.
        let mut live = filter_with(0..1000);
        let pristine = live.clone();
        let delta = BloomDelta {
            m: live.m_bits(),
            k: live.k(),
            seed: live.seed(),
            new_inserted: 1001,
            // Valid positions first, so the old buggy code would have
            // flipped them before discovering the out-of-range one.
            flipped: vec![1, 2, 3, 4, 5, live.m_bits()],
        };
        assert!(matches!(
            delta.apply(&mut live),
            Err(FilterError::Malformed(_))
        ));
        assert_eq!(live, pristine, "rejected delta mutated the filter");
        assert_eq!(live.inserted(), pristine.inserted());
    }

    #[test]
    fn overlong_varint_rejected_not_truncated() {
        // Ten continuation bytes of 0x80|0x7f followed by a final byte
        // whose payload exceeds the single remaining bit: the old decoder
        // shifted the excess out and returned a wrong value.
        let mut bad = BytesMut::new();
        for _ in 0..9 {
            bad.put_u8(0xff);
        }
        bad.put_u8(0x02); // payload 2 at shift 63 — overflows u64
        assert_eq!(get_varint(&mut bad.freeze()), None);

        // The canonical u64::MAX encoding (final byte 0x01) still decodes.
        let mut max = BytesMut::new();
        put_varint(&mut max, u64::MAX);
        assert_eq!(get_varint(&mut max.freeze()), Some(u64::MAX));

        // An eleventh byte (continuation at shift 63) is also rejected.
        let mut eleven = BytesMut::new();
        for _ in 0..10 {
            eleven.put_u8(0x81);
        }
        eleven.put_u8(0x01);
        assert_eq!(get_varint(&mut eleven.freeze()), None);
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for &v in &values {
            assert_eq!(get_varint(&mut bytes), Some(v));
        }
        assert!(!bytes.has_remaining());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// decode(encode(v)) is exact for every u64, including values that
        /// need the full ten bytes.
        #[test]
        fn varint_exact_roundtrip(v in any::<u64>()) {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            prop_assert_eq!(get_varint(&mut bytes), Some(v));
            prop_assert!(!bytes.has_remaining());
        }

        /// Corrupting the final byte of a ten-byte encoding so its payload
        /// overflows u64 is rejected, never mis-decoded.
        #[test]
        fn varint_overflowing_tenth_byte_rejected(v in (1u64 << 63)..=u64::MAX, junk in 2u8..0x7f) {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut enc = buf.to_vec();
            prop_assume!(enc.len() == 10);
            *enc.last_mut().unwrap() = junk; // payload ≥ 2 at shift 63
            prop_assert_eq!(get_varint(&mut Bytes::from(enc)), None);
        }

        /// A rejected delta never mutates the target filter, for arbitrary
        /// key churn and an arbitrary out-of-range position.
        #[test]
        fn rejected_delta_is_a_no_op(
            keys in prop::collection::vec(any::<u64>(), 1..200),
            excess in 0u64..1000,
        ) {
            let mut live = BloomFilter::with_params(1 << 12, 5, 7).unwrap();
            for &k in &keys {
                live.insert(k);
            }
            let pristine = live.clone();
            let mut flipped: Vec<u64> = (0..keys.len() as u64 % 64).collect();
            flipped.push(live.m_bits() + excess);
            let delta = BloomDelta {
                m: live.m_bits(),
                k: live.k(),
                seed: live.seed(),
                new_inserted: live.inserted() + 1,
                flipped,
            };
            prop_assert!(delta.apply(&mut live).is_err());
            prop_assert_eq!(&live, &pristine);
        }

        /// diff → encode → decode → apply reproduces the new filter bit for
        /// bit under arbitrary insert churn.
        #[test]
        fn delta_pipeline_roundtrip(
            old_keys in prop::collection::vec(any::<u64>(), 0..300),
            new_keys in prop::collection::vec(any::<u64>(), 0..100),
        ) {
            let mut old = BloomFilter::with_params(1 << 13, 4, 3).unwrap();
            for &k in &old_keys {
                old.insert(k);
            }
            let mut new = old.clone();
            for &k in &new_keys {
                new.insert(k);
            }
            let delta = BloomDelta::diff(&old, &new).unwrap();
            let decoded = BloomDelta::from_bytes(delta.to_bytes()).unwrap();
            let mut patched = old.clone();
            decoded.apply(&mut patched).unwrap();
            prop_assert_eq!(&patched, &new);
        }
    }
}
