//! Delta encoding for Bloom filter updates.
//!
//! §4.4: filters are "updated regularly (perhaps hourly), and transferred
//! with a delta encoding such that the update traffic will be low". A delta
//! is the sorted list of flipped bit positions, gap-compressed with LEB128
//! varints — a fresh claim sets at most `k` bits, so an hour of churn costs
//! ≈ `k · new_claims · ⌈log₂(gap)⌉/7` bytes instead of re-shipping the
//! whole filter (experiment E6 quantifies this).

use crate::bloom::BloomFilter;
use crate::FilterError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u32 = 0x4952_5344; // "IRSD"

/// A compact description of the bit flips between two Bloom filters of
/// identical geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomDelta {
    m: u64,
    k: u32,
    seed: u64,
    new_inserted: u64,
    /// Sorted positions of bits that differ.
    flipped: Vec<u64>,
}

impl BloomDelta {
    /// Compute the delta that transforms `old` into `new`.
    pub fn diff(old: &BloomFilter, new: &BloomFilter) -> Result<BloomDelta, FilterError> {
        if old.m_bits() != new.m_bits() || old.k() != new.k() || old.seed() != new.seed() {
            return Err(FilterError::BadParams("delta requires identical geometry"));
        }
        let mut flipped = Vec::new();
        for (word_idx, (a, b)) in old.words().iter().zip(new.words().iter()).enumerate() {
            let mut x = a ^ b;
            while x != 0 {
                let bit = x.trailing_zeros() as u64;
                flipped.push(word_idx as u64 * 64 + bit);
                x &= x - 1;
            }
        }
        Ok(BloomDelta {
            m: new.m_bits(),
            k: new.k(),
            seed: new.seed(),
            new_inserted: new.inserted(),
            flipped,
        })
    }

    /// Apply the delta to `filter` in place. The filter must match the
    /// delta's geometry and (by XOR semantics) must be the `old` snapshot
    /// the delta was computed from for the result to equal `new`.
    pub fn apply(&self, filter: &mut BloomFilter) -> Result<(), FilterError> {
        if filter.m_bits() != self.m || filter.k() != self.k || filter.seed() != self.seed {
            return Err(FilterError::BadParams("delta geometry mismatch"));
        }
        for &pos in &self.flipped {
            if pos >= self.m {
                return Err(FilterError::Malformed("flip position out of range"));
            }
            filter.words_mut()[(pos / 64) as usize] ^= 1u64 << (pos % 64);
        }
        filter.set_inserted(self.new_inserted);
        Ok(())
    }

    /// Number of flipped bits.
    pub fn flips(&self) -> usize {
        self.flipped.len()
    }

    /// Encode: header + gap-compressed varint positions.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(44 + self.flipped.len() * 3);
        buf.put_u32(MAGIC);
        buf.put_u64(self.m);
        buf.put_u32(self.k);
        buf.put_u64(self.seed);
        buf.put_u64(self.new_inserted);
        buf.put_u64(self.flipped.len() as u64);
        let mut prev = 0u64;
        for &pos in &self.flipped {
            put_varint(&mut buf, pos - prev);
            prev = pos;
        }
        buf.freeze()
    }

    /// Decode from [`BloomDelta::to_bytes`] output.
    pub fn from_bytes(mut data: Bytes) -> Result<BloomDelta, FilterError> {
        if data.remaining() < 40 {
            return Err(FilterError::Malformed("delta header truncated"));
        }
        if data.get_u32() != MAGIC {
            return Err(FilterError::Malformed("bad delta magic"));
        }
        let m = data.get_u64();
        let k = data.get_u32();
        let seed = data.get_u64();
        let new_inserted = data.get_u64();
        let n = data.get_u64() as usize;
        if n > m as usize {
            return Err(FilterError::Malformed("flip count exceeds filter size"));
        }
        let mut flipped = Vec::with_capacity(n);
        let mut pos = 0u64;
        for i in 0..n {
            let gap = get_varint(&mut data).ok_or(FilterError::Malformed("varint truncated"))?;
            pos = pos
                .checked_add(gap)
                .ok_or(FilterError::Malformed("position overflow"))?;
            if i > 0 && gap == 0 {
                return Err(FilterError::Malformed("duplicate flip position"));
            }
            flipped.push(pos);
        }
        Ok(BloomDelta {
            m,
            k,
            seed,
            new_inserted,
            flipped,
        })
    }
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(data: &mut Bytes) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !data.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = data.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_with(keys: impl Iterator<Item = u64>) -> BloomFilter {
        let mut f = BloomFilter::with_params(1 << 16, 6, 42).unwrap();
        for k in keys {
            f.insert(k);
        }
        f
    }

    #[test]
    fn diff_apply_roundtrip() {
        let old = filter_with(0..1000);
        let new = filter_with(0..1100);
        let delta = BloomDelta::diff(&old, &new).unwrap();
        let mut patched = old.clone();
        delta.apply(&mut patched).unwrap();
        assert_eq!(patched, new);
        assert_eq!(patched.inserted(), 1100);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let old = filter_with(0..500);
        let new = filter_with(0..620);
        let delta = BloomDelta::diff(&old, &new).unwrap();
        let decoded = BloomDelta::from_bytes(delta.to_bytes()).unwrap();
        assert_eq!(delta, decoded);
    }

    #[test]
    fn delta_is_much_smaller_than_full_filter() {
        let old = filter_with(0..100_000);
        let new = filter_with(0..100_500); // 0.5% churn
        let delta = BloomDelta::diff(&old, &new).unwrap();
        let full = new.to_bytes().len();
        let d = delta.to_bytes().len();
        assert!(
            d * 2 < full,
            "delta {d} bytes should be far below full {full} bytes"
        );
    }

    #[test]
    fn empty_delta() {
        let f = filter_with(0..100);
        let delta = BloomDelta::diff(&f, &f).unwrap();
        assert_eq!(delta.flips(), 0);
        let decoded = BloomDelta::from_bytes(delta.to_bytes()).unwrap();
        let mut g = f.clone();
        decoded.apply(&mut g).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let a = BloomFilter::with_params(1024, 4, 0).unwrap();
        let b = BloomFilter::with_params(2048, 4, 0).unwrap();
        assert!(BloomDelta::diff(&a, &b).is_err());
        let c = filter_with(0..10);
        let delta = BloomDelta::diff(&c, &c).unwrap();
        let mut wrong = BloomFilter::with_params(128, 2, 9).unwrap();
        assert!(delta.apply(&mut wrong).is_err());
    }

    #[test]
    fn malformed_encodings_rejected() {
        assert!(BloomDelta::from_bytes(Bytes::from_static(b"tiny")).is_err());
        let old = filter_with(0..10);
        let new = filter_with(0..20);
        let good = BloomDelta::diff(&old, &new).unwrap().to_bytes().to_vec();
        // Corrupt magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(BloomDelta::from_bytes(Bytes::from(bad)).is_err());
        // Truncate payload.
        let mut short = good.clone();
        short.truncate(good.len() - 1);
        assert!(BloomDelta::from_bytes(Bytes::from(short)).is_err());
    }

    #[test]
    fn out_of_range_flip_rejected_on_apply() {
        let delta = BloomDelta {
            m: 64,
            k: 2,
            seed: 0,
            new_inserted: 1,
            flipped: vec![64],
        };
        let mut f = BloomFilter::with_params(64, 2, 0).unwrap();
        assert!(delta.apply(&mut f).is_err());
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for &v in &values {
            assert_eq!(get_varint(&mut bytes), Some(v));
        }
        assert!(!bytes.has_remaining());
    }
}
