//! Analytic Bloom-filter formulas used to check measured rates against
//! theory and to regenerate the paper's §4.4 sizing table ("a 1 GB filter
//! would provide a 2 % false-hit rate with a population of 1 billion
//! photos").

/// Expected false-positive rate of a Bloom filter with `m` bits, `n` keys,
/// `k` hash functions: `(1 − e^{−kn/m})^k`.
pub fn bloom_fpr(m_bits: u64, n_keys: u64, k: u32) -> f64 {
    if m_bits == 0 {
        return 1.0;
    }
    if n_keys == 0 {
        return 0.0;
    }
    let exponent = -(k as f64) * (n_keys as f64) / (m_bits as f64);
    (1.0 - exponent.exp()).powi(k as i32)
}

/// Optimal number of hash functions for `m` bits and `n` keys:
/// `k = (m/n)·ln 2`, rounded to the nearest integer ≥ 1.
pub fn optimal_k(m_bits: u64, n_keys: u64) -> u32 {
    if n_keys == 0 {
        return 1;
    }
    let k = (m_bits as f64 / n_keys as f64) * std::f64::consts::LN_2;
    (k.round() as u32).max(1)
}

/// [`optimal_k`] clamped to the `1..=32` range the filter
/// implementations support. When a filter's bit count is floored (tiny
/// capacities get at least 64 bits), the mathematically optimal k can
/// exceed 32; extra hash functions past the clamp only push the FPR
/// further *below* target, so clamping preserves the FPR guarantee.
pub fn optimal_k_clamped(m_bits: u64, n_keys: u64) -> u32 {
    optimal_k(m_bits, n_keys).min(32)
}

/// Bits required per key to achieve a target FPR at the optimal k:
/// `m/n = −ln p / (ln 2)²`.
pub fn bits_per_key_for_fpr(fpr: f64) -> f64 {
    -fpr.ln() / (std::f64::consts::LN_2 * std::f64::consts::LN_2)
}

/// Total filter bits for `n` keys at target `fpr` (optimal sizing).
pub fn bits_for(n_keys: u64, fpr: f64) -> u64 {
    (bits_per_key_for_fpr(fpr) * n_keys as f64).ceil() as u64
}

/// The paper's headline load-reduction estimate: with false-hit rate `p`
/// and a fraction `claimed` of viewed photos actually present in some
/// ledger, the fraction of views that still require a real ledger query is
/// `claimed + (1 − claimed)·p`; the reduction factor is its inverse.
///
/// The paper's "factor of fifty" corresponds to `p = 0.02` with
/// `claimed ≈ 0` (most *viewed* photos are not claimed-and-revoked).
pub fn load_reduction_factor(fpr: f64, claimed_fraction: f64) -> f64 {
    let query_fraction = claimed_fraction + (1.0 - claimed_fraction) * fpr;
    if query_fraction <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / query_fraction
    }
}

/// One row of the paper's sizing argument: population, filter size, k,
/// expected FPR, load-reduction factor.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingRow {
    /// Number of claimed photos in the ecosystem.
    pub population: u64,
    /// Filter size in bytes.
    pub filter_bytes: u64,
    /// Hash functions used.
    pub k: u32,
    /// Analytic false-positive rate.
    pub fpr: f64,
    /// 1 / (fraction of lookups that reach a ledger), assuming a negligible
    /// fraction of viewed photos are claimed.
    pub load_reduction: f64,
}

/// Compute the sizing row for a given population and filter size, using the
/// optimal k for those parameters (the paper's 1 GB / 1 B photos example
/// lands at ~8.6 bits/key, k = 6, FPR ≈ 2.1 %).
pub fn sizing_row(population: u64, filter_bytes: u64) -> SizingRow {
    let m = filter_bytes * 8;
    let k = optimal_k(m, population);
    let fpr = bloom_fpr(m, population, k);
    SizingRow {
        population,
        filter_bytes,
        k,
        fpr,
        load_reduction: load_reduction_factor(fpr, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn paper_1gb_1billion_row() {
        // §4.4: "a 1GB filter would provide a 2% false-hit rate with a
        // population of 1 billion photos, thereby lessening the load on
        // ledgers by a factor of fifty".
        let row = sizing_row(1_000_000_000, GB);
        assert!(
            (0.015..0.025).contains(&row.fpr),
            "fpr {} should be ≈2 %",
            row.fpr
        );
        assert!(
            (40.0..70.0).contains(&row.load_reduction),
            "load reduction {} should be ≈50×",
            row.load_reduction
        );
        assert_eq!(row.k, 6);
    }

    #[test]
    fn paper_100gb_100billion_row() {
        // "a 100GB Bloom filter would provide a similar error rate for a
        // population of 100 billion photos".
        let row = sizing_row(100_000_000_000, 100 * GB);
        assert!((0.015..0.025).contains(&row.fpr), "fpr {}", row.fpr);
    }

    #[test]
    fn fpr_monotone_in_population() {
        let m = 1 << 20;
        let mut last = 0.0;
        for n in [1_000u64, 10_000, 100_000, 1_000_000] {
            let p = bloom_fpr(m, n, 6);
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn optimal_k_examples() {
        // 10 bits/key → k ≈ 6.93 → 7; 8 bits/key → k ≈ 5.5 → 6.
        assert_eq!(optimal_k(10_000, 1_000), 7);
        assert_eq!(optimal_k(8_000, 1_000), 6);
        assert_eq!(optimal_k(100, 0), 1);
    }

    #[test]
    fn bits_per_key_for_common_rates() {
        assert!((bits_per_key_for_fpr(0.01) - 9.585).abs() < 0.01);
        assert!((bits_per_key_for_fpr(0.02) - 8.14).abs() < 0.02);
    }

    #[test]
    fn load_reduction_limits() {
        assert!((load_reduction_factor(0.02, 0.0) - 50.0).abs() < 1e-9);
        // If every viewed photo were claimed, the filter cannot help.
        assert!((load_reduction_factor(0.02, 1.0) - 1.0).abs() < 1e-9);
        assert_eq!(load_reduction_factor(0.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn degenerate_params() {
        assert_eq!(bloom_fpr(0, 10, 3), 1.0);
        assert_eq!(bloom_fpr(100, 0, 3), 0.0);
    }
}
