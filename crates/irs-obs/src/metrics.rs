//! The lock-free metrics registry.
//!
//! Three metric kinds, all `&self`, all safe to hammer from any number
//! of threads:
//!
//! * [`Counter`] — a monotone count, sharded across [`SHARDS`]
//!   cache-line-padded cells; a thread picks its cell once (thread
//!   local) and increments with one relaxed `fetch_add`, so contended
//!   counters scale instead of serializing on a single line.
//! * [`Gauge`] — a point-in-time value (records held, filter version,
//!   consecutive failures); plain relaxed store/add.
//! * [`Histogram`] — log₂-bucketed latency distribution: bucket *i*
//!   holds values in `[2^(i-1), 2^i)`, so 65 buckets cover all of
//!   `u64` with one `leading_zeros` and one relaxed `fetch_add` per
//!   observation. Quantiles read out as the upper bound of the bucket
//!   the rank lands in — exact enough for p50/p95/p99 dashboards at a
//!   fraction of the cost of exact reservoirs.
//!
//! Handles are cheap clones (an `Arc` apiece): look a metric up once,
//! keep the handle in a struct field, and the hot path never touches
//! the registry map again. [`Registry::render`] emits Prometheus-style
//! text exposition; [`parse_exposition`] reads it back (tests, the E18
//! gate, and the wire round-trip use it).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Number of per-counter cells. A power of two ≥ the typical worker
/// thread count; more shards buys less contention at the cost of a
/// longer sum on read (reads are rare).
pub const SHARDS: usize = 16;

/// One cache line per cell so two shards never share a line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Stable small id per thread, used to pick a counter shard. Ids are
/// handed out once per thread and reused for every counter.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotone, shardable counter. Clones share the same cells.
#[derive(Clone)]
pub struct Counter {
    cells: Arc<[PaddedU64; SHARDS]>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter {
            cells: Arc::new(std::array::from_fn(|_| PaddedU64::default())),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`. One relaxed `fetch_add` on this thread's cell.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum across all cells. A point-in-time reading: concurrent
    /// increments may or may not be included.
    pub fn get(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// A settable point-in-time value.
#[derive(Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i)`, bucket 64 tops out at `u64::MAX`.
pub const BUCKETS: usize = 65;

/// Log₂-bucketed distribution with total count, sum, and exact max.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// Which bucket a value lands in.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i` — what quantile readout reports.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation (typically microseconds).
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.inner;
        inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record the elapsed time since `start`, in microseconds.
    #[inline]
    pub fn record_since(&self, start: std::time::Instant) {
        self.record(start.elapsed().as_micros() as u64);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.inner;
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| inner.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A frozen [`Histogram`] reading with quantile lookup.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Observation count per log₂ bucket.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact, not bucketed).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q ∈ [0, 1]`: the inclusive upper bound of
    /// the bucket the rank lands in, clamped to the exact max. Zero
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A registered metric of any kind.
#[derive(Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Counter),
    /// A [`Gauge`].
    Gauge(Gauge),
    /// A [`Histogram`].
    Histogram(Histogram),
}

/// A named collection of metrics. Registration takes a brief write
/// lock; the hot path holds handles and never comes back here. Reads
/// (rendering) take the read lock and see a point-in-time view.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics.write().expect("metrics lock poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.metrics.write().expect("metrics lock poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.metrics.write().expect("metrics lock poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Look up a metric without registering.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.metrics
            .read()
            .expect("metrics lock poisoned")
            .get(name)
            .cloned()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.read().expect("metrics lock poisoned").len()
    }

    /// Whether nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Prometheus-style text exposition, metrics in name order.
    /// Counters and gauges emit one sample; histograms emit a summary
    /// (`{quantile="…"}` samples plus `_count`/`_sum`/`_max`).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let map = self.metrics.read().expect("metrics lock poisoned");
        let mut out = String::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = writeln!(out, "# TYPE {name} summary");
                    for (q, v) in [(0.5, s.p50()), (0.95, s.p95()), (0.99, s.p99())] {
                        let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
                    }
                    let _ = writeln!(out, "{name}_count {}", s.count);
                    let _ = writeln!(out, "{name}_sum {}", s.sum);
                    let _ = writeln!(out, "{name}_max {}", s.max);
                }
            }
        }
        out
    }
}

/// Parse text exposition back into `sample name → value`. Keys keep
/// their label set verbatim (`latency_us{quantile="0.99"}`); `#`
/// comment lines and malformed lines are skipped.
pub fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Split on the last space so label values containing spaces
        // would still parse.
        let Some((name, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if let Ok(v) = value.parse::<f64>() {
            out.insert(name.to_string(), v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::thread;

    #[test]
    fn histogram_bucket_boundaries() {
        // Exactly the powers of two are where buckets roll over.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every boundary value lands in a bucket whose bounds contain it.
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b), "{v} above its bucket {b}");
            assert!(b == 0 || v > bucket_upper(b - 1), "{v} below bucket {b}");
        }
    }

    #[test]
    fn histogram_quantiles_and_max() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // Rank 50 of 1..=100 lands in bucket [32,64); readout is its
        // upper bound.
        assert_eq!(s.p50(), 63);
        // p99 and p100 land in the top bucket, clamped to the exact max.
        assert_eq!(s.p99(), 100);
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.mean(), 50);
        // Empty histogram reads zeros.
        let empty = Histogram::new().snapshot();
        assert_eq!(
            (empty.p50(), empty.p99(), empty.max, empty.mean()),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn concurrent_counter_increments_from_8_threads() {
        let c = Counter::new();
        let barrier = Barrier::new(8);
        thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    barrier.wait();
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_set_add_sub_saturates() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn registry_handles_share_state_and_render_parses_back() {
        let reg = Registry::new();
        let a = reg.counter("irs_requests_total");
        let b = reg.counter("irs_requests_total");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("irs_requests_total").get(), 3);
        reg.gauge("irs_records").set(7);
        let h = reg.histogram("irs_latency_us");
        h.record(100);
        h.record(200);

        let text = reg.render();
        let parsed = parse_exposition(&text);
        assert_eq!(parsed["irs_requests_total"], 3.0);
        assert_eq!(parsed["irs_records"], 7.0);
        assert_eq!(parsed["irs_latency_us_count"], 2.0);
        assert_eq!(parsed["irs_latency_us_sum"], 300.0);
        assert_eq!(parsed["irs_latency_us_max"], 200.0);
        assert!(parsed.contains_key("irs_latency_us{quantile=\"0.99\"}"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_mismatch() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
