//! Span-style tracing for one logical request.
//!
//! A [`SpanRecorder`] is created per traced request and carried down
//! the stack (in `irs-net` it rides in the `CallCtx`). Each layer
//! wraps its work in a [`SpanGuard`] — enter on creation, exit on
//! drop — and stamps a *verdict* (`"ok"`, `"cached"`, `"stale"`,
//! `"exhausted"`, …) describing how that layer disposed of the call.
//! Because layers nest strictly (a layer's inner call returns before
//! the layer itself does), the recorded spans form a proper tree:
//! enter order is stack order, and a span's *self time* is its
//! duration minus its direct children's — which is what the E18
//! attribution table prints and why per-layer self-times sum to the
//! outermost span's wall time.
//!
//! Cost model: recording a span is one `Mutex` lock (per-request, so
//! effectively uncontended) and a `Vec` push; a request with no
//! recorder pays one `Option` check per layer ([`MaybeSpan::none`]).
//! Span names and verdicts are `&'static str` — no allocation on the
//! hot path beyond the spans vector itself.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process-unique id for one traced request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The next id from a process-wide sequence (starts at 1).
    pub fn next() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

/// One completed (or still-open) span.
#[derive(Clone, Debug)]
pub struct Span {
    /// Layer name (`"cache"`, `"retry"`, `"transport"`, …).
    pub name: &'static str,
    /// Nesting depth at enter time; the outermost span is 0.
    pub depth: u16,
    /// Enter time, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Exit time; equals `start_ns` while the span is still open.
    pub end_ns: u64,
    /// How the layer disposed of the call; `""` until set.
    pub verdict: &'static str,
}

impl Span {
    /// Duration in nanoseconds (0 while open).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

struct RecorderInner {
    spans: Vec<Span>,
    depth: u16,
}

/// Collects the spans of one logical request.
///
/// Intended for a single chain of nested calls; it is thread-safe
/// (the batch layer's leader may complete a follower's span on another
/// thread), but depths are only meaningful for properly nested use.
pub struct SpanRecorder {
    id: TraceId,
    epoch: Instant,
    inner: Mutex<RecorderInner>,
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("id", &self.id)
            .finish()
    }
}

impl SpanRecorder {
    /// A fresh recorder with a new [`TraceId`].
    pub fn new() -> Arc<SpanRecorder> {
        Arc::new(SpanRecorder {
            id: TraceId::next(),
            epoch: Instant::now(),
            inner: Mutex::new(RecorderInner {
                spans: Vec::with_capacity(16),
                depth: 0,
            }),
        })
    }

    /// This request's trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Open a span; it closes (records its exit time) when the guard
    /// drops.
    pub fn enter(self: &Arc<Self>, name: &'static str) -> SpanGuard {
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock().expect("trace lock poisoned");
        let idx = inner.spans.len();
        let depth = inner.depth;
        inner.spans.push(Span {
            name,
            depth,
            start_ns: now_ns,
            end_ns: now_ns,
            verdict: "",
        });
        inner.depth += 1;
        SpanGuard {
            rec: Arc::clone(self),
            idx,
            verdict: Cell::new(None),
        }
    }

    /// Open a span if `rec` is present, else a no-op guard — the shape
    /// every layer uses so untraced requests stay free.
    pub fn maybe(rec: Option<&Arc<SpanRecorder>>, name: &'static str) -> MaybeSpan {
        MaybeSpan {
            guard: rec.map(|r| r.enter(name)),
        }
    }

    fn exit(&self, idx: usize, verdict: Option<&'static str>) {
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock().expect("trace lock poisoned");
        inner.depth = inner.depth.saturating_sub(1);
        if let Some(span) = inner.spans.get_mut(idx) {
            span.end_ns = now_ns;
            if let Some(v) = verdict {
                span.verdict = v;
            }
        }
    }

    /// The spans recorded so far, in enter (stack) order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner
            .lock()
            .expect("trace lock poisoned")
            .spans
            .clone()
    }

    /// Per-layer aggregation with self-times (duration minus direct
    /// children), in first-enter order. Self-times of all layers sum
    /// to the duration of the outermost span(s) exactly.
    pub fn breakdown(&self) -> Vec<LayerBreakdown> {
        let spans = self.spans();
        // child_ns[i] = total duration of i's *direct* children. With
        // spans in enter order and proper nesting, a span's parent is
        // the most recent span one level shallower.
        let mut child_ns = vec![0u64; spans.len()];
        let mut last_at_depth: Vec<usize> = Vec::new();
        for (i, span) in spans.iter().enumerate() {
            let d = span.depth as usize;
            last_at_depth.truncate(d);
            if d > 0 {
                if let Some(&parent) = last_at_depth.get(d - 1) {
                    child_ns[parent] += span.duration_ns();
                }
            }
            last_at_depth.push(i);
        }
        let mut order: Vec<&'static str> = Vec::new();
        let mut agg: std::collections::HashMap<&'static str, LayerBreakdown> =
            std::collections::HashMap::new();
        for (i, span) in spans.iter().enumerate() {
            let entry = agg.entry(span.name).or_insert_with(|| {
                order.push(span.name);
                LayerBreakdown {
                    name: span.name,
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                }
            });
            entry.count += 1;
            entry.total_ns += span.duration_ns();
            entry.self_ns += span.duration_ns().saturating_sub(child_ns[i]);
        }
        order.into_iter().filter_map(|n| agg.remove(n)).collect()
    }

    /// The attribution table as text — one row per layer, self-time
    /// percentages against the outermost span's wall time.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let rows = self.breakdown();
        let wall_ns: u64 = rows
            .iter()
            .map(|r| r.self_ns)
            .fold(0u64, u64::saturating_add)
            .max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>12} {:>12} {:>7}",
            "layer", "calls", "total_us", "self_us", "self%"
        );
        for r in &rows {
            let _ = writeln!(
                out,
                "{:<12} {:>6} {:>12.1} {:>12.1} {:>6.1}%",
                r.name,
                r.count,
                r.total_ns as f64 / 1_000.0,
                r.self_ns as f64 / 1_000.0,
                100.0 * r.self_ns as f64 / wall_ns as f64,
            );
        }
        out
    }
}

/// Aggregated timing for one layer name.
#[derive(Clone, Debug)]
pub struct LayerBreakdown {
    /// Layer name.
    pub name: &'static str,
    /// Spans recorded under this name.
    pub count: u64,
    /// Total wall time inside the layer (including inner layers).
    pub total_ns: u64,
    /// Time attributable to the layer itself (total minus direct
    /// children).
    pub self_ns: u64,
}

/// Closes its span on drop. Set a verdict with [`SpanGuard::verdict`]
/// any time before then.
pub struct SpanGuard {
    rec: Arc<SpanRecorder>,
    idx: usize,
    verdict: Cell<Option<&'static str>>,
}

impl SpanGuard {
    /// Stamp how this layer disposed of the call.
    pub fn verdict(&self, v: &'static str) {
        self.verdict.set(Some(v));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.rec.exit(self.idx, self.verdict.get());
    }
}

/// A possibly-absent span: the no-recorder case costs one `Option`
/// check. This is what `CallCtx::span` hands to layers.
#[derive(Default)]
pub struct MaybeSpan {
    guard: Option<SpanGuard>,
}

impl MaybeSpan {
    /// The no-op span.
    pub fn none() -> MaybeSpan {
        MaybeSpan::default()
    }

    /// Whether a real span is being recorded.
    pub fn is_recording(&self) -> bool {
        self.guard.is_some()
    }

    /// Stamp a verdict (no-op when absent).
    pub fn verdict(&self, v: &'static str) {
        if let Some(g) = &self.guard {
            g.verdict(v);
        }
    }

    /// Stamp `ok` on success, the error's verdict otherwise — sugar for
    /// the common tail call pattern.
    pub fn verdict_result<T, E>(&self, result: &Result<T, E>, err_verdict: &'static str) {
        self.verdict(if result.is_ok() { "ok" } else { err_verdict });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn trace_ids_are_unique() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert_ne!(a, b);
        assert_ne!(SpanRecorder::new().id(), SpanRecorder::new().id());
    }

    #[test]
    fn span_nesting_order_and_depths() {
        let rec = SpanRecorder::new();
        {
            let outer = rec.enter("cache");
            outer.verdict("miss");
            {
                let mid = rec.enter("retry");
                {
                    let inner = rec.enter("transport");
                    inner.verdict("ok");
                }
                mid.verdict("ok");
            }
            // A sibling after the nested pair closed.
            let _again = rec.enter("writeback");
        }
        let spans = rec.spans();
        let names: Vec<_> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["cache", "retry", "transport", "writeback"]);
        let depths: Vec<_> = spans.iter().map(|s| s.depth).collect();
        assert_eq!(depths, [0, 1, 2, 1]);
        let verdicts: Vec<_> = spans.iter().map(|s| s.verdict).collect();
        assert_eq!(verdicts, ["miss", "ok", "ok", ""]);
        // Nesting: children start no earlier and end no later.
        assert!(spans[1].start_ns >= spans[0].start_ns);
        assert!(spans[2].end_ns <= spans[1].end_ns);
        assert!(spans[1].end_ns <= spans[0].end_ns);
    }

    #[test]
    fn breakdown_self_times_sum_to_outer_wall() {
        let rec = SpanRecorder::new();
        {
            let _outer = rec.enter("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = rec.enter("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let spans = rec.spans();
        let outer_ns = spans[0].duration_ns();
        let rows = rec.breakdown();
        assert_eq!(rows.len(), 2);
        let total_self: u64 = rows.iter().map(|r| r.self_ns).sum();
        assert_eq!(
            total_self, outer_ns,
            "self-times must account for exactly the outer wall time"
        );
        let outer = &rows[0];
        assert_eq!(outer.name, "outer");
        assert!(outer.self_ns < outer.total_ns);
        let table = rec.render_table();
        assert!(table.contains("outer") && table.contains("inner"));
    }

    #[test]
    fn maybe_span_is_free_when_absent() {
        let none = SpanRecorder::maybe(None, "cache");
        assert!(!none.is_recording());
        none.verdict("ignored");
        let rec = SpanRecorder::new();
        {
            let some = SpanRecorder::maybe(Some(&rec), "cache");
            assert!(some.is_recording());
            some.verdict("hit");
        }
        assert_eq!(rec.spans()[0].verdict, "hit");
    }
}
