//! Observability for the validate pipeline: a dependency-free metrics
//! registry plus span-style request tracing.
//!
//! Two halves, built for two audiences:
//!
//! * [`metrics`] answers *"how is the system doing overall?"* — named
//!   [`Counter`]s, [`Gauge`]s, and log₂-bucketed latency
//!   [`Histogram`]s in a [`Registry`], all lock-free on the hot path
//!   (relaxed atomics; counters are cache-line sharded so eight
//!   threads incrementing the same name never bounce one line).
//!   [`Registry::render`] produces Prometheus-style text exposition,
//!   which `irs-net` serves over the wire as `Request::Metrics`.
//!
//! * [`trace`] answers *"where did THIS request spend its time?"* — a
//!   [`SpanRecorder`] rides along in the per-call context; each layer
//!   on the request path records an enter/exit span with a verdict,
//!   and [`SpanRecorder::breakdown`] turns the nested spans into a
//!   per-layer self-time attribution table (E18 prints it).
//!
//! Design rule: **zero cost when off**. A request with no recorder
//! attached pays one `Option` check per layer; metrics increments are
//! single relaxed atomic adds. E18 keeps the ledger honest (<3% p99
//! overhead on the thread-scaling workload).

pub mod metrics;
pub mod trace;

pub use metrics::{
    parse_exposition, Counter, Gauge, Histogram, HistogramSnapshot, Metric, Registry,
};
pub use trace::{LayerBreakdown, MaybeSpan, Span, SpanGuard, SpanRecorder, TraceId};
