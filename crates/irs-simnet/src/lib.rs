//! Deterministic discrete-event network simulation.
//!
//! The paper's latency and load arguments (§4.3, §4.4) are about an
//! Internet-scale deployment we obviously cannot stand up; this crate is
//! the substitute substrate (DESIGN.md §2): a seeded, bit-reproducible
//! event simulator with latency distributions calibrated to the sources
//! the paper cites (DNSPerf-style resolver latencies \[12\], Oblivious-DNS
//! overheads \[26\], HTTP-Archive page-load distributions \[5\]).
//!
//! * [`sim`] — the event loop: a time-ordered queue of closures over a
//!   user-supplied world type, with stable FIFO tie-breaking so runs are
//!   exactly reproducible;
//! * [`latency`] — latency models (constant, uniform, log-normal,
//!   empirical) and link/topology helpers;
//! * [`metrics`] — histograms and percentile summaries used by every
//!   experiment;
//! * [`queue`] — a c-server FIFO queue coupling ledger load to latency;
//! * [`rngs`] — named, independent RNG streams derived from one master
//!   seed, so adding a new random consumer never perturbs existing ones.

pub mod latency;
pub mod metrics;
pub mod queue;
pub mod rngs;
pub mod sim;

pub use latency::{LatencyModel, Link};
pub use metrics::{Histogram, Summary};
pub use queue::QueueingServer;
pub use rngs::RngStreams;
pub use sim::Sim;
