//! Latency models.
//!
//! §4.3 grounds its argument in measured distributions: DNS-resolver-class
//! services answer in tens of milliseconds \[12\], oblivious proxying adds a
//! bounded overhead \[26\], and page loads spread over seconds \[5\]. These
//! models reproduce those *shapes*; constants are configured per experiment
//! and recorded in EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::Rng;

/// A distribution of one-way network / service delays in milliseconds.
#[derive(Clone, Debug, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this many milliseconds.
    Constant(u64),
    /// Uniform in [lo, hi].
    Uniform {
        /// Lower bound (ms).
        lo: u64,
        /// Upper bound (ms), inclusive.
        hi: u64,
    },
    /// Log-normal parameterized by its median and the σ of the underlying
    /// normal — the standard shape for Internet RTTs and service latencies
    /// (heavy right tail).
    LogNormal {
        /// Median delay in ms.
        median_ms: f64,
        /// Shape parameter (σ of ln X); 0.3–0.6 matches resolver data.
        sigma: f64,
    },
    /// Sample uniformly from an empirical set of observations.
    Empirical(Vec<u64>),
}

impl LatencyModel {
    /// Draw one delay.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            LatencyModel::Constant(ms) => *ms,
            LatencyModel::Uniform { lo, hi } => {
                debug_assert!(lo <= hi);
                rng.gen_range(*lo..=*hi)
            }
            LatencyModel::LogNormal { median_ms, sigma } => {
                let z = standard_normal(rng);
                let v = median_ms * (sigma * z).exp();
                v.round().max(0.0) as u64
            }
            LatencyModel::Empirical(samples) => {
                if samples.is_empty() {
                    0
                } else {
                    samples[rng.gen_range(0..samples.len())]
                }
            }
        }
    }

    /// The distribution's median (exact for constant/log-normal, midpoint
    /// for uniform, sample median for empirical).
    pub fn median(&self) -> f64 {
        match self {
            LatencyModel::Constant(ms) => *ms as f64,
            LatencyModel::Uniform { lo, hi } => (*lo + *hi) as f64 / 2.0,
            LatencyModel::LogNormal { median_ms, .. } => *median_ms,
            LatencyModel::Empirical(samples) => {
                if samples.is_empty() {
                    0.0
                } else {
                    let mut s = samples.clone();
                    s.sort_unstable();
                    s[s.len() / 2] as f64
                }
            }
        }
    }
}

/// Box–Muller standard normal.
fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// A directed link: a latency model plus a fixed processing overhead.
#[derive(Clone, Debug)]
pub struct Link {
    /// Network delay distribution.
    pub latency: LatencyModel,
    /// Fixed per-message service time added on top (ms).
    pub service_ms: u64,
}

impl Link {
    /// A link with the given model and zero service time.
    pub fn new(latency: LatencyModel) -> Link {
        Link {
            latency,
            service_ms: 0,
        }
    }

    /// Draw a total one-way delay.
    pub fn delay(&self, rng: &mut StdRng) -> u64 {
        self.latency.sample(rng) + self.service_ms
    }

    /// Draw a round-trip delay (two independent one-way samples).
    pub fn rtt(&self, rng: &mut StdRng) -> u64 {
        self.delay(rng) + self.delay(rng)
    }
}

/// Canonical links used across experiments, calibrated to the paper's
/// cited sources. All figures are one-way.
pub mod profiles {
    use super::{LatencyModel, Link};

    /// Browser → anonymizing proxy: nearby POP, ~10 ms median.
    pub fn browser_to_proxy() -> Link {
        Link::new(LatencyModel::LogNormal {
            median_ms: 10.0,
            sigma: 0.4,
        })
    }

    /// Proxy → ledger: DNSPerf-class service, ~25 ms median \[12\].
    pub fn proxy_to_ledger() -> Link {
        Link::new(LatencyModel::LogNormal {
            median_ms: 25.0,
            sigma: 0.5,
        })
    }

    /// Browser → ledger directly (no proxy), ~35 ms median.
    pub fn browser_to_ledger() -> Link {
        Link::new(LatencyModel::LogNormal {
            median_ms: 35.0,
            sigma: 0.5,
        })
    }

    /// Browser → content site (image fetches), ~40 ms median with a heavy
    /// tail, as in the HTTP Archive data \[5\].
    pub fn browser_to_site() -> Link {
        Link::new(LatencyModel::LogNormal {
            median_ms: 40.0,
            sigma: 0.6,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(17);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), 17);
        }
        assert_eq!(m.median(), 17.0);
    }

    #[test]
    fn uniform_stays_in_range() {
        let m = LatencyModel::Uniform { lo: 5, hi: 15 };
        let mut r = rng();
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2000 {
            let v = m.sample(&mut r);
            assert!((5..=15).contains(&v));
            seen_low |= v <= 7;
            seen_high |= v >= 13;
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn lognormal_median_close_to_parameter() {
        let m = LatencyModel::LogNormal {
            median_ms: 25.0,
            sigma: 0.5,
        };
        let mut r = rng();
        let mut samples: Vec<u64> = (0..20_000).map(|_| m.sample(&mut r)).collect();
        samples.sort_unstable();
        let med = samples[samples.len() / 2] as f64;
        assert!((20.0..30.0).contains(&med), "median {med}");
        // Heavy right tail: p99 well above median.
        let p99 = samples[(samples.len() as f64 * 0.99) as usize] as f64;
        assert!(p99 > med * 2.0, "p99 {p99} vs median {med}");
    }

    #[test]
    fn empirical_samples_from_set() {
        let m = LatencyModel::Empirical(vec![3, 9, 27]);
        let mut r = rng();
        for _ in 0..100 {
            assert!([3u64, 9, 27].contains(&m.sample(&mut r)));
        }
        assert_eq!(LatencyModel::Empirical(vec![]).sample(&mut r), 0);
    }

    #[test]
    fn link_adds_service_time() {
        let link = Link {
            latency: LatencyModel::Constant(10),
            service_ms: 3,
        };
        let mut r = rng();
        assert_eq!(link.delay(&mut r), 13);
        assert_eq!(link.rtt(&mut r), 26);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = LatencyModel::LogNormal {
            median_ms: 25.0,
            sigma: 0.5,
        };
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..20).map(|_| m.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..20).map(|_| m.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn profiles_have_expected_ordering() {
        // Proxy hop should be closer than direct ledger access.
        assert!(
            profiles::browser_to_proxy().latency.median()
                < profiles::browser_to_ledger().latency.median()
        );
    }
}
