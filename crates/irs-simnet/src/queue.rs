//! A c-server FIFO queue with stochastic service times.
//!
//! §4.4's worry is load: "If every labeled photo must be looked up before
//! being displayed, the load on ledgers could easily become enormous."
//! Latency and load are coupled through queueing — a ledger near
//! saturation answers slowly, which is why the 50× filter cut matters for
//! *latency*, not just hosting cost. This model makes that coupling
//! explicit: arrivals are admitted to the earliest-free of `c` servers and
//! wait if all are busy.

use crate::latency::LatencyModel;
use irs_core::time::TimeMs;
use rand::rngs::StdRng;

/// A multi-server FIFO queue.
#[derive(Clone, Debug)]
pub struct QueueingServer {
    service: LatencyModel,
    busy_until: Vec<TimeMs>,
    /// Jobs admitted.
    pub jobs: u64,
    /// Total queueing delay accumulated (ms, excludes service time).
    pub total_wait_ms: u64,
}

/// Timing of one admitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobTiming {
    /// When service began (≥ arrival).
    pub start: TimeMs,
    /// When service completed.
    pub finish: TimeMs,
    /// Queueing wait (start − arrival).
    pub wait_ms: u64,
}

impl QueueingServer {
    /// `servers` parallel workers with `service`-distributed job times.
    pub fn new(servers: usize, service: LatencyModel) -> QueueingServer {
        assert!(servers > 0, "need at least one server");
        QueueingServer {
            service,
            busy_until: vec![TimeMs::ZERO; servers],
            jobs: 0,
            total_wait_ms: 0,
        }
    }

    /// Admit a job arriving at `arrival`. Arrivals must be fed in
    /// nondecreasing time order (as an event loop naturally does).
    pub fn admit(&mut self, arrival: TimeMs, rng: &mut StdRng) -> JobTiming {
        // Earliest-free server.
        let (idx, &free_at) = self
            .busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one server");
        let start = arrival.max(free_at);
        let service_ms = self.service.sample(rng);
        let finish = start.plus(service_ms);
        self.busy_until[idx] = finish;
        let wait_ms = start.since(arrival);
        self.jobs += 1;
        self.total_wait_ms += wait_ms;
        JobTiming {
            start,
            finish,
            wait_ms,
        }
    }

    /// Mean queueing wait so far.
    pub fn mean_wait_ms(&self) -> f64 {
        if self.jobs == 0 {
            return 0.0;
        }
        self.total_wait_ms as f64 / self.jobs as f64
    }

    /// Offered load ρ for a given arrival rate (jobs/ms), from the service
    /// distribution's median as the mean approximation.
    pub fn utilization(&self, arrivals_per_ms: f64) -> f64 {
        arrivals_per_ms * self.service.median() / self.busy_until.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x90)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut q = QueueingServer::new(2, LatencyModel::Constant(10));
        let mut r = rng();
        let t = q.admit(TimeMs(100), &mut r);
        assert_eq!(t.start, TimeMs(100));
        assert_eq!(t.finish, TimeMs(110));
        assert_eq!(t.wait_ms, 0);
    }

    #[test]
    fn saturated_servers_queue() {
        let mut q = QueueingServer::new(1, LatencyModel::Constant(10));
        let mut r = rng();
        let a = q.admit(TimeMs(0), &mut r);
        let b = q.admit(TimeMs(0), &mut r);
        let c = q.admit(TimeMs(0), &mut r);
        assert_eq!(a.wait_ms, 0);
        assert_eq!(b.wait_ms, 10);
        assert_eq!(c.wait_ms, 20);
        assert_eq!(q.mean_wait_ms(), 10.0);
    }

    #[test]
    fn multiple_servers_share_load() {
        let mut q = QueueingServer::new(2, LatencyModel::Constant(10));
        let mut r = rng();
        let a = q.admit(TimeMs(0), &mut r);
        let b = q.admit(TimeMs(0), &mut r);
        let c = q.admit(TimeMs(0), &mut r);
        assert_eq!(a.wait_ms, 0);
        assert_eq!(b.wait_ms, 0);
        assert_eq!(c.wait_ms, 10);
    }

    #[test]
    fn light_load_has_negligible_wait_heavy_load_blows_up() {
        let service = LatencyModel::Constant(10);
        // Light: inter-arrival 50 ms ≫ service 10 ms.
        let mut light = QueueingServer::new(1, service.clone());
        let mut r = rng();
        for i in 0..200u64 {
            light.admit(TimeMs(i * 50), &mut r);
        }
        assert_eq!(light.mean_wait_ms(), 0.0);
        // Heavy: inter-arrival 8 ms < service 10 ms ⇒ unbounded queue.
        let mut heavy = QueueingServer::new(1, service);
        let mut r = rng();
        for i in 0..200u64 {
            heavy.admit(TimeMs(i * 8), &mut r);
        }
        assert!(heavy.mean_wait_ms() > 50.0, "{}", heavy.mean_wait_ms());
    }

    #[test]
    fn utilization_formula() {
        let q = QueueingServer::new(4, LatencyModel::Constant(20));
        // 0.1 jobs/ms × 20 ms / 4 servers = 0.5.
        assert!((q.utilization(0.1) - 0.5).abs() < 1e-9);
    }
}
