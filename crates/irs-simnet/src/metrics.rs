//! Measurement helpers: histograms and percentile summaries.
//!
//! Every experiment reports latency/load distributions; this keeps the
//! arithmetic in one audited place.

/// A simple exact histogram: stores all samples, sorts on demand.
/// Experiments here collect at most a few million samples, so exactness is
/// affordable and avoids bucket-resolution arguments.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The q-quantile (0.0–1.0), nearest-rank. `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.samples.len() as f64 * q).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Arithmetic mean. `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64)
    }

    /// Maximum. `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Produce the standard summary (p50/p90/p99/mean/max/count).
    pub fn summary(&mut self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean().unwrap_or(0.0),
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
            max: self.max().unwrap_or(0),
        }
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// Percentile summary of a histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p90={} p99={} max={}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// A windowless rate counter: events per simulated second.
#[derive(Clone, Copy, Debug, Default)]
pub struct RateCounter {
    events: u64,
}

impl RateCounter {
    /// Record one event.
    pub fn tick(&mut self) {
        self.events += 1;
    }

    /// Record several events.
    pub fn add(&mut self, n: u64) {
        self.events += n;
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.events
    }

    /// Events per second over an elapsed span.
    pub fn per_second(&self, elapsed_ms: u64) -> f64 {
        if elapsed_ms == 0 {
            return 0.0;
        }
        self.events as f64 * 1000.0 / elapsed_ms as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.50), Some(50));
        assert_eq!(h.quantile(0.90), Some(90));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(h.quantile(0.0), Some(1)); // clamped to rank 1
    }

    #[test]
    fn empty_histogram() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
    }

    #[test]
    fn summary_fields() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 25.0);
        assert_eq!(s.p50, 20);
        assert_eq!(s.max, 40);
    }

    #[test]
    fn unsorted_insertion_order_is_fine() {
        let mut h = Histogram::new();
        for v in [5u64, 1, 9, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(5));
        h.record(0);
        assert_eq!(h.quantile(0.0), Some(0));
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Some(2.0));
    }

    #[test]
    fn rate_counter() {
        let mut r = RateCounter::default();
        r.tick();
        r.add(9);
        assert_eq!(r.total(), 10);
        assert_eq!(r.per_second(1_000), 10.0);
        assert_eq!(r.per_second(2_000), 5.0);
        assert_eq!(r.per_second(0), 0.0);
    }

    #[test]
    fn display_format() {
        let mut h = Histogram::new();
        h.record(7);
        let s = h.summary().to_string();
        assert!(s.contains("n=1"));
        assert!(s.contains("p50=7"));
    }
}
