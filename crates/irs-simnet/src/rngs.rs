//! Named, independent RNG streams.
//!
//! Experiments need multiple random consumers (network latency, workload
//! arrival, photo popularity, …). Deriving each stream from (master seed,
//! stream name) keeps results stable when new consumers are added and
//! makes every figure regenerable from a single seed recorded in
//! EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Factory for named RNG streams.
#[derive(Clone, Copy, Debug)]
pub struct RngStreams {
    master: u64,
}

impl RngStreams {
    /// Create a factory from a master seed.
    pub fn new(master: u64) -> RngStreams {
        RngStreams { master }
    }

    /// Derive the stream for `name`. The same (master, name) always yields
    /// an identical stream; different names yield independent streams.
    pub fn stream(&self, name: &str) -> StdRng {
        // FNV-1a over the name, mixed with the master seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let seed = splitmix(self.master ^ splitmix(h));
        StdRng::seed_from_u64(seed)
    }

    /// Derive a numbered sub-stream (e.g. one per simulated user).
    pub fn indexed(&self, name: &str, index: u64) -> StdRng {
        self.stream(&format!("{name}#{index}"))
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_name_same_stream() {
        let f = RngStreams::new(1);
        let a: Vec<u64> = f
            .stream("net")
            .sample_iter(rand::distributions::Standard)
            .take(5)
            .collect();
        let b: Vec<u64> = f
            .stream("net")
            .sample_iter(rand::distributions::Standard)
            .take(5)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_differ() {
        let f = RngStreams::new(1);
        let a: u64 = f.stream("net").gen();
        let b: u64 = f.stream("workload").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_masters_differ() {
        let a: u64 = RngStreams::new(1).stream("net").gen();
        let b: u64 = RngStreams::new(2).stream("net").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let f = RngStreams::new(3);
        let a: u64 = f.indexed("user", 0).gen();
        let b: u64 = f.indexed("user", 1).gen();
        assert_ne!(a, b);
        let a2: u64 = f.indexed("user", 0).gen();
        assert_eq!(a, a2);
    }
}
