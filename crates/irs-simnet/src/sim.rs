//! The discrete-event loop.
//!
//! Events are boxed closures over a world type `W`, ordered by (time,
//! sequence number) — the sequence number gives stable FIFO ordering for
//! simultaneous events, which is what makes runs bit-reproducible.

use irs_core::time::{Clock, ManualClock, TimeMs};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

type EventFn<W> = Box<dyn FnOnce(&mut Sim<W>)>;

struct Scheduled<W> {
    at: TimeMs,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A discrete-event simulation over a world `W`.
pub struct Sim<W> {
    /// The simulated world, freely mutable from event handlers.
    pub world: W,
    clock: ManualClock,
    queue: BinaryHeap<Scheduled<W>>,
    seq: u64,
    executed: u64,
}

impl<W> Sim<W> {
    /// Create a simulation at time zero.
    pub fn new(world: W) -> Sim<W> {
        Sim {
            world,
            clock: ManualClock::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            executed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> TimeMs {
        self.clock.now()
    }

    /// A clone of the simulation clock, for handing to protocol components
    /// that take `Arc<dyn Clock>`-style dependencies.
    pub fn clock(&self) -> ManualClock {
        self.clock.clone()
    }

    /// Schedule `f` to run `delay_ms` after the current time.
    pub fn schedule_in(&mut self, delay_ms: u64, f: impl FnOnce(&mut Sim<W>) + 'static) {
        let at = self.now().plus(delay_ms);
        self.schedule_at(at, f);
    }

    /// Schedule `f` at an absolute time (clamped to now if in the past).
    pub fn schedule_at(&mut self, at: TimeMs, f: impl FnOnce(&mut Sim<W>) + 'static) {
        let at = at.max(self.now());
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(f),
        });
    }

    /// Run one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now(), "time cannot run backwards");
        self.clock.set(ev.at);
        self.executed += 1;
        (ev.run)(self);
        true
    }

    /// Run until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue is empty or the simulated clock passes
    /// `deadline` (events after the deadline stay queued).
    pub fn run_until(&mut self, deadline: TimeMs) {
        while let Some(next) = self.queue.peek() {
            if next.at > deadline {
                break;
            }
            self.step();
        }
        if self.now() < deadline {
            self.clock.set(deadline);
        }
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_in(30, |s| s.world.push(3));
        sim.schedule_in(10, |s| s.world.push(1));
        sim.schedule_in(20, |s| s.world.push(2));
        sim.run();
        assert_eq!(sim.world, vec![1, 2, 3]);
        assert_eq!(sim.now(), TimeMs(30));
        assert_eq!(sim.executed(), 3);
    }

    #[test]
    fn simultaneous_events_run_fifo() {
        let mut sim = Sim::new(Vec::<u32>::new());
        for i in 0..10u32 {
            sim.schedule_in(5, move |s| s.world.push(i));
        }
        sim.run();
        assert_eq!(sim.world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(Vec::<(u64, &str)>::new());
        sim.schedule_in(10, |s| {
            let t = s.now().0;
            s.world.push((t, "first"));
            s.schedule_in(15, |s| {
                let t = s.now().0;
                s.world.push((t, "second"));
            });
        });
        sim.run();
        assert_eq!(sim.world, vec![(10, "first"), (25, "second")]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(0u32);
        sim.schedule_in(10, |s| s.world += 1);
        sim.schedule_in(100, |s| s.world += 1);
        sim.run_until(TimeMs(50));
        assert_eq!(sim.world, 1);
        assert_eq!(sim.now(), TimeMs(50));
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(sim.world, 2);
        assert_eq!(sim.now(), TimeMs(100));
    }

    #[test]
    fn schedule_at_past_clamps_to_now() {
        let mut sim = Sim::new(Vec::<u64>::new());
        sim.schedule_in(20, |s| {
            // Try to schedule in the past; it must run "now" instead.
            s.schedule_at(TimeMs(5), |s| {
                let t = s.now().0;
                s.world.push(t);
            });
        });
        sim.run();
        assert_eq!(sim.world, vec![20]);
    }

    #[test]
    fn shared_clock_tracks_sim_time() {
        use irs_core::time::Clock;
        let mut sim = Sim::new(());
        let clock = sim.clock();
        sim.schedule_in(42, |_| {});
        sim.run();
        assert_eq!(clock.now(), TimeMs(42));
    }

    #[test]
    fn deterministic_replay() {
        fn run() -> Vec<u32> {
            let mut sim = Sim::new(Vec::new());
            for i in 0..50u32 {
                sim.schedule_in((i as u64 * 7) % 13, move |s| s.world.push(i));
            }
            sim.run();
            sim.world
        }
        assert_eq!(run(), run());
    }
}
