//! Claims and revocation.
//!
//! §3.2: "the camera … generates a unique key pair for the photo, hashes
//! the photo, and then encrypts the hash with the private key" — realized
//! as a detached Ed25519 signature over the photo digest (the modern form
//! of "encrypting a hash with the private key"). "The ledger records the
//! encrypted hash, the public key, an authenticated timestamp, and a
//! Boolean 'revoked' flag."
//!
//! Revocation is a signed request with the claim key; the ledger never
//! learns the owner's identity, only that the request-signer controls the
//! claim key (Goal #1(iv)). Unrevocation is supported because "many photos
//! will be automatically registered and revoked (allowing an owner to
//! manually unrevoke ones they want to share)" (§4.4).

use crate::ids::RecordId;
use crate::tsa::TimestampToken;
use irs_crypto::{Digest, Keypair, PublicKey, Signature};

/// The revocation state of a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RevocationStatus {
    /// Viewing/sharing is permitted.
    NotRevoked,
    /// Owner has revoked; viewing/sharing must be blocked.
    Revoked,
    /// Revoked through the appeals process; cannot be unrevoked
    /// ("they then mark it as permanently revoked", §3.2).
    PermanentlyRevoked,
}

impl RevocationStatus {
    /// Whether content with this status may be displayed/shared.
    pub fn allows_viewing(&self) -> bool {
        matches!(self, RevocationStatus::NotRevoked)
    }
}

/// What an owner submits to claim a photo. Contains no photo content and
/// no owner identity — only the per-photo public key and the signature over
/// the photo hash (which the ledger cannot invert).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClaimRequest {
    /// Per-photo public key.
    pub pubkey: PublicKey,
    /// Signature over the photo digest ("the encrypted hash").
    pub hash_sig: Signature,
}

impl ClaimRequest {
    /// Build a claim request for a photo digest under a per-photo keypair.
    pub fn create(keypair: &Keypair, photo_digest: &Digest) -> ClaimRequest {
        ClaimRequest {
            pubkey: keypair.public,
            hash_sig: keypair.sign(photo_digest.as_bytes()),
        }
    }

    /// Digest that the timestamp authority countersigns.
    pub fn digest(&self) -> Digest {
        Digest::of_parts(&[&self.pubkey.0, &self.hash_sig.0])
    }

    /// Verify this claim against a *revealed* photo digest — used only
    /// during appeals, when the owner voluntarily presents the original
    /// photo ("the original owner presents the ledger with the original
    /// photo and a signed timestamp of the original claim", §3.2).
    pub fn proves_ownership_of(&self, photo_digest: &Digest) -> bool {
        self.pubkey
            .verify_ok(photo_digest.as_bytes(), &self.hash_sig)
    }
}

/// A ledger record: the claim plus its timestamp and status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Claim {
    /// The identifier handed back at claim time.
    pub id: RecordId,
    /// The owner's claim material.
    pub request: ClaimRequest,
    /// Authenticated claim time.
    pub timestamp: TimestampToken,
    /// Current status.
    pub status: RevocationStatus,
    /// Monotone counter of status changes; bound into revoke requests so a
    /// replayed old request cannot roll the flag back.
    pub status_epoch: u64,
}

/// A signed revoke/unrevoke request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RevokeRequest {
    /// Target record.
    pub id: RecordId,
    /// `true` to revoke, `false` to unrevoke.
    pub revoke: bool,
    /// The status epoch this request was built against (replay defense).
    pub epoch: u64,
    /// Signature with the claim key over (id, revoke, epoch).
    pub sig: Signature,
}

impl RevokeRequest {
    /// Create a signed request. `epoch` must be the record's current
    /// `status_epoch` (fetched from the ledger).
    pub fn create(keypair: &Keypair, id: RecordId, revoke: bool, epoch: u64) -> RevokeRequest {
        RevokeRequest {
            id,
            revoke,
            epoch,
            sig: keypair.sign(&Self::message(id, revoke, epoch)),
        }
    }

    fn message(id: RecordId, revoke: bool, epoch: u64) -> Vec<u8> {
        let mut msg = Vec::with_capacity(8 + 12 + 1 + 8);
        msg.extend_from_slice(b"IRS-RVK1");
        msg.extend_from_slice(&id.to_payload());
        msg.push(revoke as u8);
        msg.extend_from_slice(&epoch.to_be_bytes());
        msg
    }

    /// Verify against the claim's public key and current epoch.
    pub fn verify(&self, claim_pubkey: &PublicKey, current_epoch: u64) -> bool {
        self.epoch == current_epoch
            && claim_pubkey.verify_ok(&Self::message(self.id, self.revoke, self.epoch), &self.sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LedgerId;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    #[test]
    fn claim_request_proves_ownership() {
        let keypair = kp(1);
        let digest = Digest::of(b"photo pixels");
        let req = ClaimRequest::create(&keypair, &digest);
        assert!(req.proves_ownership_of(&digest));
        assert!(!req.proves_ownership_of(&Digest::of(b"other pixels")));
    }

    #[test]
    fn claim_request_digest_binds_both_fields() {
        let keypair = kp(2);
        let d1 = ClaimRequest::create(&keypair, &Digest::of(b"a")).digest();
        let d2 = ClaimRequest::create(&keypair, &Digest::of(b"b")).digest();
        assert_ne!(d1, d2);
    }

    #[test]
    fn revoke_request_verifies() {
        let keypair = kp(3);
        let id = RecordId::new(LedgerId(1), 7);
        let req = RevokeRequest::create(&keypair, id, true, 0);
        assert!(req.verify(&keypair.public, 0));
    }

    #[test]
    fn revoke_request_rejects_wrong_key_epoch_or_tamper() {
        let keypair = kp(4);
        let other = kp(5);
        let id = RecordId::new(LedgerId(1), 8);
        let req = RevokeRequest::create(&keypair, id, true, 3);
        assert!(!req.verify(&other.public, 3), "wrong key");
        assert!(!req.verify(&keypair.public, 4), "stale epoch");
        let mut flipped = req;
        flipped.revoke = false;
        assert!(!flipped.verify(&keypair.public, 3), "tampered direction");
        let mut retarget = req;
        retarget.id = RecordId::new(LedgerId(1), 9);
        assert!(!retarget.verify(&keypair.public, 3), "tampered target");
    }

    #[test]
    fn replay_is_blocked_by_epoch() {
        // Owner revokes at epoch 0; attacker replays the same message after
        // the owner unrevoked (epoch now 2). Must fail.
        let keypair = kp(6);
        let id = RecordId::new(LedgerId(2), 1);
        let old = RevokeRequest::create(&keypair, id, true, 0);
        assert!(!old.verify(&keypair.public, 2));
    }

    #[test]
    fn status_semantics() {
        assert!(RevocationStatus::NotRevoked.allows_viewing());
        assert!(!RevocationStatus::Revoked.allows_viewing());
        assert!(!RevocationStatus::PermanentlyRevoked.allows_viewing());
    }
}
