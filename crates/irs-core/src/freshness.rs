//! Freshness proofs — the OCSP-stapling analogue.
//!
//! §3.2: "When an aggregator provides a response … containing a claimed
//! photo, it includes in metadata cryptographic proof that it has recently
//! verified the non-revoked status of the photo." A ledger signs
//! (record, status, issued-at, validity window); browsers accept an
//! unexpired proof instead of issuing their own query, which is what keeps
//! viewing latency flat and ledger load low in the eventual design.

use crate::claim::RevocationStatus;
use crate::ids::RecordId;
use crate::time::TimeMs;
use irs_crypto::{Keypair, PublicKey, Signature};

/// A ledger-signed statement of a record's status at a point in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreshnessProof {
    /// The record attested.
    pub id: RecordId,
    /// Status at issuance.
    pub status: RevocationStatus,
    /// Issuance time.
    pub issued_at: TimeMs,
    /// Validity window in milliseconds.
    pub valid_for_ms: u64,
    /// Issuing ledger's key.
    pub ledger_key: PublicKey,
    /// Ledger signature over all of the above.
    pub sig: Signature,
}

impl FreshnessProof {
    /// Issue a proof under the ledger's signing key.
    pub fn issue(
        ledger: &Keypair,
        id: RecordId,
        status: RevocationStatus,
        issued_at: TimeMs,
        valid_for_ms: u64,
    ) -> FreshnessProof {
        let msg = Self::message(&id, status, issued_at, valid_for_ms);
        FreshnessProof {
            id,
            status,
            issued_at,
            valid_for_ms,
            ledger_key: ledger.public,
            sig: ledger.sign(&msg),
        }
    }

    fn message(
        id: &RecordId,
        status: RevocationStatus,
        issued_at: TimeMs,
        valid_for_ms: u64,
    ) -> Vec<u8> {
        let mut msg = Vec::with_capacity(8 + 12 + 1 + 16);
        msg.extend_from_slice(b"IRS-FRP1");
        msg.extend_from_slice(&id.to_payload());
        msg.push(match status {
            RevocationStatus::NotRevoked => 0,
            RevocationStatus::Revoked => 1,
            RevocationStatus::PermanentlyRevoked => 2,
        });
        msg.extend_from_slice(&issued_at.0.to_be_bytes());
        msg.extend_from_slice(&valid_for_ms.to_be_bytes());
        msg
    }

    /// Verify signature, binding, and freshness at time `now` against a
    /// trusted ledger key.
    pub fn verify(&self, trusted_ledger: &PublicKey, now: TimeMs) -> bool {
        if &self.ledger_key != trusted_ledger {
            return false;
        }
        if now.since(self.issued_at) > self.valid_for_ms {
            return false;
        }
        let msg = Self::message(&self.id, self.status, self.issued_at, self.valid_for_ms);
        trusted_ledger.verify_ok(&msg, &self.sig)
    }

    /// Whether the proof is still within its validity window (signature not
    /// checked).
    pub fn is_fresh(&self, now: TimeMs) -> bool {
        now.since(self.issued_at) <= self.valid_for_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LedgerId;

    fn ledger_kp() -> Keypair {
        Keypair::from_seed(&[42u8; 32])
    }

    fn id() -> RecordId {
        RecordId::new(LedgerId(1), 100)
    }

    #[test]
    fn issue_and_verify() {
        let kp = ledger_kp();
        let proof = FreshnessProof::issue(
            &kp,
            id(),
            RevocationStatus::NotRevoked,
            TimeMs(1000),
            60_000,
        );
        assert!(proof.verify(&kp.public, TimeMs(30_000)));
        assert!(proof.is_fresh(TimeMs(61_000)));
        assert!(!proof.is_fresh(TimeMs(61_001)));
    }

    #[test]
    fn expired_proof_rejected() {
        let kp = ledger_kp();
        let proof =
            FreshnessProof::issue(&kp, id(), RevocationStatus::NotRevoked, TimeMs(0), 10_000);
        assert!(proof.verify(&kp.public, TimeMs(10_000)));
        assert!(!proof.verify(&kp.public, TimeMs(10_001)));
    }

    #[test]
    fn status_tamper_rejected() {
        let kp = ledger_kp();
        let proof = FreshnessProof::issue(&kp, id(), RevocationStatus::Revoked, TimeMs(0), 10_000);
        let mut forged = proof;
        forged.status = RevocationStatus::NotRevoked;
        assert!(!forged.verify(&kp.public, TimeMs(1)));
    }

    #[test]
    fn wrong_ledger_key_rejected() {
        let kp = ledger_kp();
        let other = Keypair::from_seed(&[43u8; 32]);
        let proof =
            FreshnessProof::issue(&kp, id(), RevocationStatus::NotRevoked, TimeMs(0), 10_000);
        assert!(!proof.verify(&other.public, TimeMs(1)));
    }

    #[test]
    fn proof_bound_to_record() {
        let kp = ledger_kp();
        let proof =
            FreshnessProof::issue(&kp, id(), RevocationStatus::NotRevoked, TimeMs(0), 10_000);
        let mut retarget = proof;
        retarget.id = RecordId::new(LedgerId(1), 101);
        assert!(!retarget.verify(&kp.public, TimeMs(1)));
    }
}
