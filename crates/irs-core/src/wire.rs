//! Wire codec and the ledger protocol message set.
//!
//! A compact, explicitly versioned binary encoding over
//! [`bytes::{Buf, BufMut}`], in the style the Tokio framing guide teaches
//! (length-delimited frames are added by the transport in `irs-net`; this
//! module defines the frame *payloads*). Both the discrete-event simulation
//! and the real TCP prototype speak exactly these messages, so measured
//! byte counts (experiment E6) are the same in both.
//!
//! Encoding is fallible: a value that cannot be represented on the wire
//! (today, a string longer than a `u16` length prefix can carry) is
//! rejected with [`WireError::BadValue`] instead of being silently
//! mangled — a truncated error message that decodes cleanly is worse
//! than an encode-time error, because nobody ever notices it.

use crate::claim::{ClaimRequest, RevocationStatus, RevokeRequest};
use crate::freshness::FreshnessProof;
use crate::ids::{LedgerId, RecordId};
use crate::time::TimeMs;
use crate::tsa::TimestampToken;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use irs_crypto::{Digest, PublicKey, Signature};

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 1;

/// Wire codec errors (encode and decode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Not enough bytes.
    Truncated,
    /// Unknown message or enum tag.
    BadTag(u8),
    /// Semantically invalid field (failed checksum, over-long string, …).
    BadValue(&'static str),
    /// Frame declared an unsupported protocol version.
    BadVersion(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::BadTag(t) => write!(f, "unknown tag {t}"),
            WireError::BadValue(what) => write!(f, "invalid field: {what}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Binary encode/decode. Decoding consumes from the front of the buffer.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `buf`. Fails (leaving `buf` in an
    /// unspecified, partially written state) when the value cannot be
    /// represented on the wire; callers that buffer per-message should
    /// use [`Wire::to_bytes`], which never hands out a partial encoding.
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError>;
    /// Decode a value, consuming bytes from `buf`.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Convenience: encode to a fresh buffer.
    fn to_bytes(&self) -> Result<Bytes, WireError> {
        let mut buf = BytesMut::new();
        self.encode(&mut buf)?;
        Ok(buf.freeze())
    }

    /// Convenience: decode, requiring the buffer be fully consumed.
    fn from_bytes(mut data: Bytes) -> Result<Self, WireError> {
        let v = Self::decode(&mut data)?;
        if data.has_remaining() {
            return Err(WireError::BadValue("trailing bytes"));
        }
        Ok(v)
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn get_array<const N: usize>(buf: &mut Bytes) -> Result<[u8; N], WireError> {
    need(buf, N)?;
    let mut out = [0u8; N];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        buf.put_u64(*self);
        Ok(())
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 8)?;
        Ok(buf.get_u64())
    }
}

impl Wire for TimeMs {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        buf.put_u64(self.0);
        Ok(())
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(TimeMs(u64::decode(buf)?))
    }
}

impl Wire for Digest {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        buf.put_slice(&self.0);
        Ok(())
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Digest(get_array(buf)?))
    }
}

impl Wire for PublicKey {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        buf.put_slice(&self.0);
        Ok(())
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(PublicKey(get_array(buf)?))
    }
}

impl Wire for Signature {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        buf.put_slice(&self.0);
        Ok(())
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Signature(get_array(buf)?))
    }
}

impl Wire for RecordId {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        buf.put_slice(&self.to_payload());
        Ok(())
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let payload = get_array(buf)?;
        RecordId::from_payload(&payload).ok_or(WireError::BadValue("record id checksum"))
    }
}

impl Wire for RevocationStatus {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        buf.put_u8(match self {
            RevocationStatus::NotRevoked => 0,
            RevocationStatus::Revoked => 1,
            RevocationStatus::PermanentlyRevoked => 2,
        });
        Ok(())
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(RevocationStatus::NotRevoked),
            1 => Ok(RevocationStatus::Revoked),
            2 => Ok(RevocationStatus::PermanentlyRevoked),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for TimestampToken {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        self.stamped.encode(buf)?;
        self.time.encode(buf)?;
        self.sig.encode(buf)?;
        self.authority.encode(buf)
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(TimestampToken {
            stamped: Digest::decode(buf)?,
            time: TimeMs::decode(buf)?,
            sig: Signature::decode(buf)?,
            authority: PublicKey::decode(buf)?,
        })
    }
}

impl Wire for FreshnessProof {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        self.id.encode(buf)?;
        self.status.encode(buf)?;
        self.issued_at.encode(buf)?;
        self.valid_for_ms.encode(buf)?;
        self.ledger_key.encode(buf)?;
        self.sig.encode(buf)
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(FreshnessProof {
            id: RecordId::decode(buf)?,
            status: RevocationStatus::decode(buf)?,
            issued_at: TimeMs::decode(buf)?,
            valid_for_ms: u64::decode(buf)?,
            ledger_key: PublicKey::decode(buf)?,
            sig: Signature::decode(buf)?,
        })
    }
}

impl Wire for ClaimRequest {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        self.pubkey.encode(buf)?;
        self.hash_sig.encode(buf)
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(ClaimRequest {
            pubkey: PublicKey::decode(buf)?,
            hash_sig: Signature::decode(buf)?,
        })
    }
}

impl Wire for RevokeRequest {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        self.id.encode(buf)?;
        buf.put_u8(self.revoke as u8);
        self.epoch.encode(buf)?;
        self.sig.encode(buf)
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let id = RecordId::decode(buf)?;
        need(buf, 1)?;
        let revoke = match buf.get_u8() {
            0 => false,
            1 => true,
            t => return Err(WireError::BadTag(t)),
        };
        Ok(RevokeRequest {
            id,
            revoke,
            epoch: u64::decode(buf)?,
            sig: Signature::decode(buf)?,
        })
    }
}

/// Maximum accepted length for variable payloads (filters), 256 MiB.
const MAX_BLOB: usize = 256 << 20;
/// Maximum accepted batch size.
const MAX_BATCH: usize = 100_000;

fn put_blob(buf: &mut BytesMut, data: &Bytes) {
    buf.put_u32(data.len() as u32);
    buf.put_slice(data);
}

fn get_blob(buf: &mut Bytes) -> Result<Bytes, WireError> {
    need(buf, 4)?;
    let len = buf.get_u32() as usize;
    if len > MAX_BLOB {
        return Err(WireError::BadValue("blob too large"));
    }
    need(buf, len)?;
    Ok(buf.copy_to_bytes(len))
}

fn put_string(buf: &mut BytesMut, s: &str) -> Result<(), WireError> {
    let bytes = s.as_bytes();
    if bytes.len() > u16::MAX as usize {
        // Refuse rather than truncate: a silently clipped message decodes
        // cleanly and the loss is invisible to every later reader.
        return Err(WireError::BadValue("string exceeds u16 length prefix"));
    }
    buf.put_u16(bytes.len() as u16);
    buf.put_slice(bytes);
    Ok(())
}

fn get_string(buf: &mut Bytes) -> Result<String, WireError> {
    need(buf, 2)?;
    let len = buf.get_u16() as usize;
    need(buf, len)?;
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadValue("non-utf8 string"))
}

/// A request to a ledger.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Claim a photo (§3.1).
    Claim(ClaimRequest),
    /// Query one record's status (the validation path).
    Query {
        /// The record to check.
        id: RecordId,
    },
    /// Revoke or unrevoke (§3.1).
    Revoke(RevokeRequest),
    /// Fetch the claimed-set filter; `have_version` enables a delta reply
    /// (0 = none held).
    GetFilter {
        /// Version the requester already holds.
        have_version: u64,
    },
    /// Request a signed freshness proof for a record (§3.2).
    GetProof {
        /// The record to attest.
        id: RecordId,
    },
    /// Batched status query (proxies aggregate many browsers).
    Batch(Vec<RecordId>),
    /// Liveness check (also used by owner probes).
    Ping,
    /// Fetch the server's metrics exposition (operators scrape this).
    Metrics,
    /// Follower poll: ship durable WAL frames starting at `from_seq`.
    /// Polling `from_seq = n` doubles as the follower's acknowledgement
    /// that every record below `n` is durably applied on its side.
    WalSubscribe {
        /// First sequence number the follower still needs.
        from_seq: u64,
        /// Upper bound on frames per reply (flow control).
        max_frames: u32,
    },
    /// Follower bootstrap: fetch a full state snapshot plus the sequence
    /// number it covers, so tailing can start at `seq + 1`.
    FetchSnapshot,
    /// Fetch the server's current shard directory. Any shard answers;
    /// routers call this to bootstrap and to self-heal after a
    /// [`Response::WrongShard`] refusal.
    GetShardMap,
    /// Epoch-aware filter fetch for the tiered (fuse base + Bloom delta)
    /// pipeline. The server answers with [`Response::FilterDelta`] (same
    /// epoch, one version behind), [`Response::FilterBase`] (single-epoch
    /// roll onto an empty delta), or [`Response::FilterTiered`] (full
    /// resync). Servers predating the tiered pipeline answer
    /// [`Response::Unsupported`] and the client falls back to
    /// [`Request::GetFilter`].
    GetFilterTiered {
        /// Base epoch the requester holds (0 = none).
        have_epoch: u64,
        /// Delta version the requester holds within that epoch.
        have_version: u64,
    },
}

/// A ledger's response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Claim accepted.
    Claimed {
        /// Newly assigned identifier.
        id: RecordId,
        /// Authenticated claim timestamp.
        timestamp: TimestampToken,
    },
    /// Status of a queried record.
    Status {
        /// The record queried.
        id: RecordId,
        /// Its revocation status.
        status: RevocationStatus,
        /// Its status epoch (needed to build revoke requests).
        epoch: u64,
    },
    /// Revocation processed.
    RevokeAck {
        /// The record affected.
        id: RecordId,
        /// Status after the operation.
        status: RevocationStatus,
        /// New status epoch.
        epoch: u64,
    },
    /// Complete filter snapshot.
    FilterFull {
        /// Snapshot version.
        version: u64,
        /// `BloomFilter::to_bytes` payload.
        data: Bytes,
    },
    /// Delta from the requester's version.
    FilterDelta {
        /// Version the delta applies to.
        from_version: u64,
        /// Version after applying.
        to_version: u64,
        /// `BloomDelta::to_bytes` payload.
        data: Bytes,
    },
    /// Signed freshness proof.
    Proof(FreshnessProof),
    /// Batched statuses, in request order.
    BatchStatus(Vec<(RecordId, RevocationStatus)>),
    /// Liveness reply.
    Pong,
    /// Error reply.
    Error {
        /// Numeric code (see `irs-ledger`).
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Status served from degraded state: the upstream ledger was
    /// unreachable (or its circuit breaker is open), so the proxy answered
    /// from its last-good filter snapshot / TTL cache. `age_ms` bounds the
    /// staleness of the answer — the quantitative form of Nongoal #4's
    /// "benefits even if [revocation is not] instantaneous".
    StatusStale {
        /// The record queried.
        id: RecordId,
        /// Last known status.
        status: RevocationStatus,
        /// Milliseconds since this answer was last confirmed upstream.
        age_ms: u64,
    },
    /// The upstream ledger is unreachable and the proxy holds no answer,
    /// stale or otherwise. Viewers map this to
    /// [`crate::policy::ValidationOutcome::Unknown`] and let
    /// [`crate::policy::ViewerPolicy::fail_open`] decide.
    Unavailable {
        /// The record queried.
        id: RecordId,
        /// Milliseconds since the proxy last heard from this ledger
        /// (`u64::MAX` when it never has).
        age_ms: u64,
    },
    /// Metrics exposition text (UTF-8, one sample per line). Carried as
    /// a length-prefixed blob — an exposition routinely outgrows the
    /// `u16` string prefix that caps `Error` messages.
    MetricsText(String),
    /// A batch of sequence-numbered WAL frames for a follower. `frames`
    /// is zero or more CRC-framed WAL records laid end to end; the first
    /// carries sequence number `first_seq` and each subsequent frame the
    /// next integer. Only frames the primary considers durable are ever
    /// shipped.
    WalSegment {
        /// Sequence number of the first frame in `frames` (equals the
        /// requested `from_seq` when the segment is empty).
        first_seq: u64,
        /// Highest durable sequence number on the primary — the follower's
        /// lag is `durable_seq - last_applied`.
        durable_seq: u64,
        /// Oldest sequence number the primary still retains. A follower
        /// asking for something older must re-bootstrap from a snapshot.
        log_start_seq: u64,
        /// Concatenated WAL frames (`[len][crc][payload]`*).
        frames: Bytes,
    },
    /// The server decoded the frame but does not speak this request tag
    /// (a newer peer during a rolling upgrade). Structured, so the
    /// connection survives and the client can degrade instead of treating
    /// the reply as a protocol error.
    Unsupported {
        /// The request tag the server did not recognize.
        tag: u8,
    },
    /// Full state snapshot for follower bootstrap: `data` is a
    /// checksummed `irs-ledger` snapshot covering every record up to and
    /// including sequence number `seq`.
    Snapshot {
        /// Replication sequence number the snapshot covers.
        seq: u64,
        /// `encode_snapshot` payload.
        data: Bytes,
    },
    /// The server is shedding load and refused to process this request.
    /// Unlike `Error`, this is an *admission* verdict, not a processing
    /// failure: the connection is healthy, the server answered, and the
    /// client should back off rather than fail over or trip a breaker.
    Overloaded {
        /// Server's suggested wait before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The server's shard directory. `data` is an opaque
    /// `irs-ledger` `ShardMap::to_bytes` blob (the codec stays
    /// placement-agnostic); `epoch` duplicates the map's version so
    /// routers can discard stale replies without decoding.
    ShardMap {
        /// The carried map's epoch.
        epoch: u64,
        /// `ShardMap::to_bytes` payload.
        data: Bytes,
    },
    /// The keyed request landed on a shard that does not own the key
    /// under the server's directory. Like `Overloaded`, this is an
    /// *admission* verdict, not a failure: the connection is healthy
    /// and breakers must not count it. A router holding an epoch older
    /// than `epoch` should refetch the map and retry; one already at
    /// `epoch` is diverging and must not loop.
    WrongShard {
        /// The refusing server's directory epoch.
        epoch: u64,
    },
    /// A freshly sealed base tier: the requester lagged by exactly one
    /// epoch and the new delta is still empty, so only the fuse base
    /// ships; the client clears its delta tier locally (delta geometry is
    /// fixed per ledger config, so the cleared copy matches the server's
    /// reset one bit for bit).
    FilterBase {
        /// The newly sealed epoch.
        epoch: u64,
        /// `Fuse8::to_bytes` payload.
        data: Bytes,
    },
    /// Full tiered install: base + delta (bootstrap, multi-epoch lag, or
    /// any delta version the server can no longer diff against).
    FilterTiered {
        /// Current epoch.
        epoch: u64,
        /// `Fuse8::to_bytes` payload; empty when no epoch has sealed yet.
        base: Bytes,
        /// Current delta version within `epoch`.
        delta_version: u64,
        /// `BloomFilter::to_bytes` payload for the delta tier.
        delta: Bytes,
    },
}

impl Wire for Request {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        buf.put_u8(PROTOCOL_VERSION);
        match self {
            Request::Claim(c) => {
                buf.put_u8(1);
                c.encode(buf)?;
            }
            Request::Query { id } => {
                buf.put_u8(2);
                id.encode(buf)?;
            }
            Request::Revoke(r) => {
                buf.put_u8(3);
                r.encode(buf)?;
            }
            Request::GetFilter { have_version } => {
                buf.put_u8(4);
                have_version.encode(buf)?;
            }
            Request::GetProof { id } => {
                buf.put_u8(5);
                id.encode(buf)?;
            }
            Request::Batch(ids) => {
                buf.put_u8(6);
                buf.put_u32(ids.len() as u32);
                for id in ids {
                    id.encode(buf)?;
                }
            }
            Request::Ping => buf.put_u8(7),
            Request::Metrics => buf.put_u8(8),
            Request::WalSubscribe {
                from_seq,
                max_frames,
            } => {
                buf.put_u8(9);
                from_seq.encode(buf)?;
                buf.put_u32(*max_frames);
            }
            Request::FetchSnapshot => buf.put_u8(10),
            Request::GetShardMap => buf.put_u8(11),
            Request::GetFilterTiered {
                have_epoch,
                have_version,
            } => {
                buf.put_u8(12);
                have_epoch.encode(buf)?;
                have_version.encode(buf)?;
            }
        }
        Ok(())
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 2)?;
        let version = buf.get_u8();
        if version != PROTOCOL_VERSION {
            return Err(WireError::BadVersion(version));
        }
        match buf.get_u8() {
            1 => Ok(Request::Claim(ClaimRequest::decode(buf)?)),
            2 => Ok(Request::Query {
                id: RecordId::decode(buf)?,
            }),
            3 => Ok(Request::Revoke(RevokeRequest::decode(buf)?)),
            4 => Ok(Request::GetFilter {
                have_version: u64::decode(buf)?,
            }),
            5 => Ok(Request::GetProof {
                id: RecordId::decode(buf)?,
            }),
            6 => {
                need(buf, 4)?;
                let n = buf.get_u32() as usize;
                if n > MAX_BATCH {
                    return Err(WireError::BadValue("batch too large"));
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(RecordId::decode(buf)?);
                }
                Ok(Request::Batch(ids))
            }
            7 => Ok(Request::Ping),
            8 => Ok(Request::Metrics),
            9 => {
                let from_seq = u64::decode(buf)?;
                need(buf, 4)?;
                let max_frames = buf.get_u32();
                Ok(Request::WalSubscribe {
                    from_seq,
                    max_frames,
                })
            }
            10 => Ok(Request::FetchSnapshot),
            11 => Ok(Request::GetShardMap),
            12 => Ok(Request::GetFilterTiered {
                have_epoch: u64::decode(buf)?,
                have_version: u64::decode(buf)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for Response {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        buf.put_u8(PROTOCOL_VERSION);
        match self {
            Response::Claimed { id, timestamp } => {
                buf.put_u8(1);
                id.encode(buf)?;
                timestamp.encode(buf)?;
            }
            Response::Status { id, status, epoch } => {
                buf.put_u8(2);
                id.encode(buf)?;
                status.encode(buf)?;
                epoch.encode(buf)?;
            }
            Response::RevokeAck { id, status, epoch } => {
                buf.put_u8(3);
                id.encode(buf)?;
                status.encode(buf)?;
                epoch.encode(buf)?;
            }
            Response::FilterFull { version, data } => {
                buf.put_u8(4);
                version.encode(buf)?;
                put_blob(buf, data);
            }
            Response::FilterDelta {
                from_version,
                to_version,
                data,
            } => {
                buf.put_u8(5);
                from_version.encode(buf)?;
                to_version.encode(buf)?;
                put_blob(buf, data);
            }
            Response::Proof(p) => {
                buf.put_u8(6);
                p.encode(buf)?;
            }
            Response::BatchStatus(items) => {
                buf.put_u8(7);
                buf.put_u32(items.len() as u32);
                for (id, status) in items {
                    id.encode(buf)?;
                    status.encode(buf)?;
                }
            }
            Response::Pong => buf.put_u8(8),
            Response::Error { code, message } => {
                buf.put_u8(9);
                buf.put_u16(*code);
                put_string(buf, message)?;
            }
            Response::StatusStale { id, status, age_ms } => {
                buf.put_u8(10);
                id.encode(buf)?;
                status.encode(buf)?;
                age_ms.encode(buf)?;
            }
            Response::Unavailable { id, age_ms } => {
                buf.put_u8(11);
                id.encode(buf)?;
                age_ms.encode(buf)?;
            }
            Response::MetricsText(text) => {
                buf.put_u8(12);
                put_blob(buf, &Bytes::copy_from_slice(text.as_bytes()));
            }
            Response::WalSegment {
                first_seq,
                durable_seq,
                log_start_seq,
                frames,
            } => {
                buf.put_u8(13);
                first_seq.encode(buf)?;
                durable_seq.encode(buf)?;
                log_start_seq.encode(buf)?;
                put_blob(buf, frames);
            }
            Response::Unsupported { tag } => {
                buf.put_u8(14);
                buf.put_u8(*tag);
            }
            Response::Snapshot { seq, data } => {
                buf.put_u8(15);
                seq.encode(buf)?;
                put_blob(buf, data);
            }
            Response::Overloaded { retry_after_ms } => {
                buf.put_u8(16);
                retry_after_ms.encode(buf)?;
            }
            Response::ShardMap { epoch, data } => {
                buf.put_u8(17);
                epoch.encode(buf)?;
                put_blob(buf, data);
            }
            Response::WrongShard { epoch } => {
                buf.put_u8(18);
                epoch.encode(buf)?;
            }
            Response::FilterBase { epoch, data } => {
                buf.put_u8(19);
                epoch.encode(buf)?;
                put_blob(buf, data);
            }
            Response::FilterTiered {
                epoch,
                base,
                delta_version,
                delta,
            } => {
                buf.put_u8(20);
                epoch.encode(buf)?;
                put_blob(buf, base);
                delta_version.encode(buf)?;
                put_blob(buf, delta);
            }
        }
        Ok(())
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 2)?;
        let version = buf.get_u8();
        if version != PROTOCOL_VERSION {
            return Err(WireError::BadVersion(version));
        }
        match buf.get_u8() {
            1 => Ok(Response::Claimed {
                id: RecordId::decode(buf)?,
                timestamp: TimestampToken::decode(buf)?,
            }),
            2 => Ok(Response::Status {
                id: RecordId::decode(buf)?,
                status: RevocationStatus::decode(buf)?,
                epoch: u64::decode(buf)?,
            }),
            3 => Ok(Response::RevokeAck {
                id: RecordId::decode(buf)?,
                status: RevocationStatus::decode(buf)?,
                epoch: u64::decode(buf)?,
            }),
            4 => Ok(Response::FilterFull {
                version: u64::decode(buf)?,
                data: get_blob(buf)?,
            }),
            5 => Ok(Response::FilterDelta {
                from_version: u64::decode(buf)?,
                to_version: u64::decode(buf)?,
                data: get_blob(buf)?,
            }),
            6 => Ok(Response::Proof(FreshnessProof::decode(buf)?)),
            7 => {
                need(buf, 4)?;
                let n = buf.get_u32() as usize;
                if n > MAX_BATCH {
                    return Err(WireError::BadValue("batch too large"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push((RecordId::decode(buf)?, RevocationStatus::decode(buf)?));
                }
                Ok(Response::BatchStatus(items))
            }
            8 => Ok(Response::Pong),
            9 => {
                need(buf, 2)?;
                let code = buf.get_u16();
                Ok(Response::Error {
                    code,
                    message: get_string(buf)?,
                })
            }
            10 => Ok(Response::StatusStale {
                id: RecordId::decode(buf)?,
                status: RevocationStatus::decode(buf)?,
                age_ms: u64::decode(buf)?,
            }),
            11 => Ok(Response::Unavailable {
                id: RecordId::decode(buf)?,
                age_ms: u64::decode(buf)?,
            }),
            12 => {
                let raw = get_blob(buf)?;
                let text = String::from_utf8(raw.to_vec())
                    .map_err(|_| WireError::BadValue("non-utf8 metrics text"))?;
                Ok(Response::MetricsText(text))
            }
            13 => Ok(Response::WalSegment {
                first_seq: u64::decode(buf)?,
                durable_seq: u64::decode(buf)?,
                log_start_seq: u64::decode(buf)?,
                frames: get_blob(buf)?,
            }),
            14 => {
                need(buf, 1)?;
                Ok(Response::Unsupported { tag: buf.get_u8() })
            }
            15 => Ok(Response::Snapshot {
                seq: u64::decode(buf)?,
                data: get_blob(buf)?,
            }),
            16 => Ok(Response::Overloaded {
                retry_after_ms: u64::decode(buf)?,
            }),
            17 => Ok(Response::ShardMap {
                epoch: u64::decode(buf)?,
                data: get_blob(buf)?,
            }),
            18 => Ok(Response::WrongShard {
                epoch: u64::decode(buf)?,
            }),
            19 => Ok(Response::FilterBase {
                epoch: u64::decode(buf)?,
                data: get_blob(buf)?,
            }),
            20 => Ok(Response::FilterTiered {
                epoch: u64::decode(buf)?,
                base: get_blob(buf)?,
                delta_version: u64::decode(buf)?,
                delta: get_blob(buf)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Expose `LedgerId` encoding for ancillary messages.
impl Wire for LedgerId {
    fn encode(&self, buf: &mut BytesMut) -> Result<(), WireError> {
        buf.put_u16(self.0);
        Ok(())
    }
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        need(buf, 2)?;
        Ok(LedgerId(buf.get_u16()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_crypto::Keypair;

    fn kp() -> Keypair {
        Keypair::from_seed(&[1u8; 32])
    }

    fn rid(n: u64) -> RecordId {
        RecordId::new(LedgerId(1), n)
    }

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_bytes().expect("encode");
        let decoded = T::from_bytes(bytes).expect("decode");
        assert_eq!(&decoded, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&42u64);
        roundtrip(&TimeMs(123456));
        roundtrip(&Digest::of(b"x"));
        roundtrip(&kp().public);
        roundtrip(&kp().sign(b"m"));
        roundtrip(&rid(999));
        roundtrip(&LedgerId(77));
        for s in [
            RevocationStatus::NotRevoked,
            RevocationStatus::Revoked,
            RevocationStatus::PermanentlyRevoked,
        ] {
            roundtrip(&s);
        }
    }

    #[test]
    fn request_roundtrips() {
        let claim = ClaimRequest::create(&kp(), &Digest::of(b"photo"));
        roundtrip(&Request::Claim(claim));
        roundtrip(&Request::Query { id: rid(1) });
        roundtrip(&Request::Revoke(RevokeRequest::create(
            &kp(),
            rid(2),
            true,
            5,
        )));
        roundtrip(&Request::GetFilter { have_version: 0 });
        roundtrip(&Request::GetProof { id: rid(3) });
        roundtrip(&Request::Batch(vec![rid(1), rid(2), rid(3)]));
        roundtrip(&Request::Ping);
        roundtrip(&Request::Metrics);
        roundtrip(&Request::WalSubscribe {
            from_seq: 42,
            max_frames: 256,
        });
        roundtrip(&Request::FetchSnapshot);
        roundtrip(&Request::GetShardMap);
        roundtrip(&Request::GetFilterTiered {
            have_epoch: 3,
            have_version: 12,
        });
        roundtrip(&Request::GetFilterTiered {
            have_epoch: 0,
            have_version: 0,
        });
    }

    #[test]
    fn response_roundtrips() {
        let tsa = crate::tsa::TimestampAuthority::from_seed(1);
        let tok = tsa.stamp(Digest::of(b"c"), TimeMs(9));
        roundtrip(&Response::Claimed {
            id: rid(1),
            timestamp: tok,
        });
        roundtrip(&Response::Status {
            id: rid(2),
            status: RevocationStatus::Revoked,
            epoch: 3,
        });
        roundtrip(&Response::RevokeAck {
            id: rid(2),
            status: RevocationStatus::NotRevoked,
            epoch: 4,
        });
        roundtrip(&Response::FilterFull {
            version: 7,
            data: Bytes::from_static(b"filter-bytes"),
        });
        roundtrip(&Response::FilterDelta {
            from_version: 7,
            to_version: 8,
            data: Bytes::from_static(b"delta"),
        });
        let proof =
            FreshnessProof::issue(&kp(), rid(5), RevocationStatus::NotRevoked, TimeMs(1), 1000);
        roundtrip(&Response::Proof(proof));
        roundtrip(&Response::BatchStatus(vec![
            (rid(1), RevocationStatus::NotRevoked),
            (rid(2), RevocationStatus::Revoked),
        ]));
        roundtrip(&Response::Pong);
        roundtrip(&Response::Error {
            code: 404,
            message: "unknown record".to_string(),
        });
        roundtrip(&Response::StatusStale {
            id: rid(6),
            status: RevocationStatus::Revoked,
            age_ms: 12_345,
        });
        roundtrip(&Response::Unavailable {
            id: rid(7),
            age_ms: u64::MAX,
        });
        roundtrip(&Response::MetricsText(
            "# TYPE irs_x counter\nirs_x 1\n".to_string(),
        ));
        roundtrip(&Response::WalSegment {
            first_seq: 17,
            durable_seq: 23,
            log_start_seq: 5,
            frames: Bytes::from_static(b"\x01\x02framed-records"),
        });
        roundtrip(&Response::WalSegment {
            first_seq: 1,
            durable_seq: 0,
            log_start_seq: 1,
            frames: Bytes::new(),
        });
        roundtrip(&Response::Unsupported { tag: 0xee });
        roundtrip(&Response::Overloaded {
            retry_after_ms: 250,
        });
        roundtrip(&Response::Snapshot {
            seq: 99,
            data: Bytes::from_static(b"snapshot-bytes"),
        });
        roundtrip(&Response::ShardMap {
            epoch: 12,
            data: Bytes::from_static(b"shard-map-bytes"),
        });
        roundtrip(&Response::ShardMap {
            epoch: 0,
            data: Bytes::new(),
        });
        roundtrip(&Response::WrongShard { epoch: 31 });
        roundtrip(&Response::FilterBase {
            epoch: 2,
            data: Bytes::from_static(b"fuse-base-bytes"),
        });
        roundtrip(&Response::FilterTiered {
            epoch: 5,
            base: Bytes::from_static(b"fuse-base-bytes"),
            delta_version: 9,
            delta: Bytes::from_static(b"delta-bloom-bytes"),
        });
        // Bootstrap shape: no sealed epoch yet, so the base blob is empty.
        roundtrip(&Response::FilterTiered {
            epoch: 1,
            base: Bytes::new(),
            delta_version: 0,
            delta: Bytes::from_static(b"delta-bloom-bytes"),
        });
    }

    #[test]
    fn tiered_filter_messages_truncation_rejected() {
        let full = Response::FilterTiered {
            epoch: 5,
            base: Bytes::from_static(b"base"),
            delta_version: 9,
            delta: Bytes::from_static(b"delta"),
        }
        .to_bytes()
        .unwrap();
        for cut in 0..full.len() {
            assert!(
                Response::from_bytes(full.slice(..cut)).is_err(),
                "cut at {cut} should fail"
            );
        }
        let req = Request::GetFilterTiered {
            have_epoch: 1,
            have_version: 2,
        }
        .to_bytes()
        .unwrap();
        for cut in 0..req.len() {
            assert!(Request::from_bytes(req.slice(..cut)).is_err());
        }
    }

    #[test]
    fn metrics_text_outgrows_the_string_prefix() {
        // An exposition bigger than u16::MAX bytes must still round-trip:
        // it rides the u32 blob codec, not the capped string codec.
        let big = "irs_metric_with_a_long_name_total 123456789\n".repeat(2_000);
        assert!(big.len() > u16::MAX as usize);
        roundtrip(&Response::MetricsText(big));
    }

    #[test]
    fn non_utf8_metrics_text_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(PROTOCOL_VERSION);
        buf.put_u8(12);
        buf.put_u32(2);
        buf.put_slice(&[0xff, 0xfe]);
        assert_eq!(
            Response::from_bytes(buf.freeze()),
            Err(WireError::BadValue("non-utf8 metrics text"))
        );
    }

    #[test]
    fn truncated_inputs_rejected() {
        let full = Request::Query { id: rid(1) }.to_bytes().unwrap();
        for cut in 0..full.len() {
            let r = Request::from_bytes(full.slice(..cut));
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Request::Ping.to_bytes().unwrap().to_vec();
        bytes.push(0);
        assert_eq!(
            Request::from_bytes(Bytes::from(bytes)),
            Err(WireError::BadValue("trailing bytes"))
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = Request::Ping.to_bytes().unwrap().to_vec();
        bytes[0] = 99;
        assert_eq!(
            Request::from_bytes(Bytes::from(bytes)),
            Err(WireError::BadVersion(99))
        );
    }

    #[test]
    fn bad_tag_rejected() {
        let bytes = Bytes::from(vec![PROTOCOL_VERSION, 0xee]);
        assert_eq!(Request::from_bytes(bytes), Err(WireError::BadTag(0xee)));
    }

    #[test]
    fn corrupted_record_id_rejected() {
        let mut bytes = Request::Query { id: rid(1) }.to_bytes().unwrap().to_vec();
        // Flip a bit inside the record id payload (after version + tag).
        bytes[5] ^= 0x40;
        assert!(matches!(
            Request::from_bytes(Bytes::from(bytes)),
            Err(WireError::BadValue(_))
        ));
    }

    #[test]
    fn oversized_batch_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(PROTOCOL_VERSION);
        buf.put_u8(6);
        buf.put_u32(MAX_BATCH as u32 + 1);
        assert!(matches!(
            Request::from_bytes(buf.freeze()),
            Err(WireError::BadValue(_))
        ));
    }

    #[test]
    fn string_encoding_handles_unicode() {
        roundtrip(&Response::Error {
            code: 1,
            message: "únïcødé ✓".to_string(),
        });
    }

    #[test]
    fn string_at_u16_boundary_encodes_and_one_past_fails() {
        // Exactly u16::MAX bytes: the longest representable message.
        let max = Response::Error {
            code: 1,
            message: "a".repeat(u16::MAX as usize),
        };
        let bytes = max.to_bytes().expect("boundary length must encode");
        let Response::Error { message, .. } = Response::from_bytes(bytes).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(message.len(), u16::MAX as usize);

        // One byte past the prefix: refused, never silently truncated.
        let over = Response::Error {
            code: 1,
            message: "a".repeat(u16::MAX as usize + 1),
        };
        assert_eq!(
            over.to_bytes(),
            Err(WireError::BadValue("string exceeds u16 length prefix"))
        );
    }
}
