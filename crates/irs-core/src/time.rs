//! Time representation and the clock abstraction.
//!
//! All protocol logic is written against [`Clock`] so the same ledger,
//! proxy, and browser code runs under the deterministic discrete-event
//! simulator (`irs-simnet` provides a `SimClock`) and on the real network
//! ([`SystemClock`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Milliseconds since the Unix epoch (or since simulation start).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeMs(pub u64);

impl TimeMs {
    /// The zero instant.
    pub const ZERO: TimeMs = TimeMs(0);

    /// Add a duration in milliseconds.
    pub fn plus(self, ms: u64) -> TimeMs {
        TimeMs(self.0.saturating_add(ms))
    }

    /// Milliseconds elapsed since `earlier` (0 if `earlier` is later).
    pub fn since(self, earlier: TimeMs) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl std::fmt::Display for TimeMs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A source of the current time.
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> TimeMs;
}

/// Wall-clock time.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> TimeMs {
        let d = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("system clock before epoch");
        TimeMs(d.as_millis() as u64)
    }
}

/// A manually advanced clock, shareable across threads. Used by tests and
/// as the bridge between `irs-simnet`'s event loop and protocol code.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// Create at time zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Create at a specific time.
    pub fn at(t: TimeMs) -> ManualClock {
        let c = ManualClock::new();
        c.set(t);
        c
    }

    /// Set the current time (monotonicity is the caller's responsibility).
    pub fn set(&self, t: TimeMs) {
        self.now.store(t.0, Ordering::SeqCst);
    }

    /// Advance by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> TimeMs {
        TimeMs(self.now.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = TimeMs(1000);
        assert_eq!(t.plus(500), TimeMs(1500));
        assert_eq!(t.plus(500).since(t), 500);
        assert_eq!(t.since(t.plus(500)), 0);
        assert_eq!(TimeMs(u64::MAX).plus(1), TimeMs(u64::MAX));
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), TimeMs::ZERO);
        c.advance(250);
        assert_eq!(c.now(), TimeMs(250));
        c.set(TimeMs(1_000_000));
        assert_eq!(c.now(), TimeMs(1_000_000));
    }

    #[test]
    fn manual_clock_shared_between_clones() {
        let a = ManualClock::new();
        let b = a.clone();
        a.advance(10);
        assert_eq!(b.now(), TimeMs(10));
    }

    #[test]
    fn system_clock_is_recent() {
        let t = SystemClock.now();
        // After 2020-01-01 in ms.
        assert!(t.0 > 1_577_836_800_000);
    }

    #[test]
    fn display() {
        assert_eq!(TimeMs(42).to_string(), "42ms");
    }
}
