//! The owner's wallet.
//!
//! §3.2: "The owner safely stores the original photo, the private key, and
//! the identifier." The wallet is that store, plus the operations built on
//! it: producing revocation requests and assembling appeal evidence
//! ("the original photo and a signed timestamp of the original claim").

use crate::camera::CapturedPhoto;
use crate::claim::{ClaimRequest, RevokeRequest};
use crate::ids::RecordId;
use crate::photo::PhotoFile;
use crate::tsa::TimestampToken;
use irs_crypto::{Digest, Keypair};
use std::collections::HashMap;

/// Everything the owner keeps for one claimed photo.
#[derive(Clone, Debug)]
pub struct OwnedPhoto {
    /// The record identifier handed back by the ledger.
    pub id: RecordId,
    /// The per-photo keypair.
    pub keypair: Keypair,
    /// The original photo (pre-labeling pixels).
    pub original: PhotoFile,
    /// The original content digest.
    pub digest: Digest,
    /// The claim request as submitted.
    pub claim: ClaimRequest,
    /// The ledger's timestamp token for the claim.
    pub timestamp: TimestampToken,
}

/// Evidence an owner presents in an appeal (§3.2).
#[derive(Clone, Debug)]
pub struct AppealEvidence {
    /// The record being asserted as the true original.
    pub original_id: RecordId,
    /// The original photo, revealed for comparison.
    pub original_photo: PhotoFile,
    /// The claim request (pubkey + hash signature), proving key control.
    pub claim: ClaimRequest,
    /// Timestamp token proving *when* the original claim was made.
    pub timestamp: TimestampToken,
}

/// The owner-side store of claimed photos.
#[derive(Default)]
pub struct OwnerWallet {
    photos: HashMap<RecordId, OwnedPhoto>,
}

impl OwnerWallet {
    /// Empty wallet.
    pub fn new() -> OwnerWallet {
        OwnerWallet::default()
    }

    /// Store a claimed photo (capture + the ledger's response).
    pub fn store(&mut self, shot: CapturedPhoto, id: RecordId, timestamp: TimestampToken) {
        self.photos.insert(
            id,
            OwnedPhoto {
                id,
                keypair: shot.keypair,
                original: shot.photo,
                digest: shot.digest,
                claim: shot.claim,
                timestamp,
            },
        );
    }

    /// Number of photos held.
    pub fn len(&self) -> usize {
        self.photos.len()
    }

    /// True when the wallet holds nothing.
    pub fn is_empty(&self) -> bool {
        self.photos.is_empty()
    }

    /// Look up a photo by identifier.
    pub fn get(&self, id: &RecordId) -> Option<&OwnedPhoto> {
        self.photos.get(id)
    }

    /// All identifiers held.
    pub fn ids(&self) -> impl Iterator<Item = RecordId> + '_ {
        self.photos.keys().copied()
    }

    /// Build a signed revoke (or unrevoke) request for a held photo.
    /// `current_epoch` must be the record's current status epoch.
    pub fn revoke_request(
        &self,
        id: &RecordId,
        revoke: bool,
        current_epoch: u64,
    ) -> Option<RevokeRequest> {
        let photo = self.photos.get(id)?;
        Some(RevokeRequest::create(
            &photo.keypair,
            *id,
            revoke,
            current_epoch,
        ))
    }

    /// Assemble appeal evidence for a held photo.
    pub fn appeal_evidence(&self, id: &RecordId) -> Option<AppealEvidence> {
        let photo = self.photos.get(id)?;
        Some(AppealEvidence {
            original_id: *id,
            original_photo: photo.original.clone(),
            claim: photo.claim,
            timestamp: photo.timestamp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Camera;
    use crate::ids::LedgerId;
    use crate::time::TimeMs;
    use crate::tsa::TimestampAuthority;

    fn wallet_with_one() -> (OwnerWallet, RecordId) {
        let mut cam = Camera::new(1, 64, 64);
        let shot = cam.capture(100);
        let tsa = TimestampAuthority::from_seed(1);
        let tok = tsa.stamp(shot.claim.digest(), TimeMs(100));
        let id = RecordId::new(LedgerId(1), 1);
        let mut w = OwnerWallet::new();
        w.store(shot, id, tok);
        (w, id)
    }

    #[test]
    fn store_and_lookup() {
        let (w, id) = wallet_with_one();
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
        assert!(w.get(&id).is_some());
        assert_eq!(w.ids().collect::<Vec<_>>(), vec![id]);
    }

    #[test]
    fn revoke_request_is_valid() {
        let (w, id) = wallet_with_one();
        let req = w.revoke_request(&id, true, 0).unwrap();
        let photo = w.get(&id).unwrap();
        assert!(req.verify(&photo.keypair.public, 0));
        assert!(req.revoke);
    }

    #[test]
    fn unknown_id_yields_none() {
        let (w, _) = wallet_with_one();
        let other = RecordId::new(LedgerId(9), 9);
        assert!(w.revoke_request(&other, true, 0).is_none());
        assert!(w.appeal_evidence(&other).is_none());
        assert!(w.get(&other).is_none());
    }

    #[test]
    fn appeal_evidence_is_self_consistent() {
        let (w, id) = wallet_with_one();
        let ev = w.appeal_evidence(&id).unwrap();
        assert_eq!(ev.original_id, id);
        // The claim proves ownership of the revealed photo.
        assert!(ev.claim.proves_ownership_of(&ev.original_photo.digest()));
        // The timestamp covers the claim digest.
        assert_eq!(ev.timestamp.stamped, ev.claim.digest());
    }
}
