//! Validation outcomes and enforcement policy.
//!
//! Goal #3: "The ecosystem should let a viewer and/or a system know when
//! they are viewing/displaying or resharing an image against the wishes of
//! the owner. This act should either be prohibited or should require
//! explicit confirmation or action from the user."

use crate::ids::RecordId;

/// The outcome of validating a photo before display/save/share.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidationOutcome {
    /// Unlabeled photo: IRS does not govern it.
    NotClaimed,
    /// Claimed and not revoked: display freely.
    Valid(RecordId),
    /// Claimed and revoked: block (or require explicit user override,
    /// depending on [`EnforcementMode`]).
    Revoked(RecordId),
    /// The label was inconsistent (tampered/partially stripped).
    InconsistentLabel,
    /// Validation could not be completed (ledger unreachable and no cached
    /// answer); policy decides whether to fail open or closed.
    Unknown(RecordId),
}

/// How strictly a viewer-side component enforces revocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnforcementMode {
    /// Revoked content is never displayed.
    Block,
    /// Revoked content prompts the user ("require explicit confirmation").
    Confirm,
    /// Log only (measurement deployments).
    Advisory,
}

/// What the browser/application actually does with a photo.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DisplayAction {
    /// Render normally.
    Show,
    /// Replace with a "revoked by owner" placeholder.
    Placeholder,
    /// Ask the user before rendering.
    Prompt,
}

/// Viewer-side policy: maps validation outcomes to display actions.
#[derive(Clone, Copy, Debug)]
pub struct ViewerPolicy {
    /// Enforcement strictness.
    pub mode: EnforcementMode,
    /// Whether to fail open (show) or closed (placeholder) when validation
    /// is [`ValidationOutcome::Unknown`]. The bootstrap design fails open —
    /// "IRS provides benefits even if it does not implement revocation
    /// instantaneously" (Nongoal #4) — so an unreachable ledger degrades to
    /// today's web rather than breaking it.
    pub fail_open: bool,
}

impl Default for ViewerPolicy {
    fn default() -> Self {
        ViewerPolicy {
            mode: EnforcementMode::Block,
            fail_open: true,
        }
    }
}

impl ViewerPolicy {
    /// Decide what to do with a photo given its validation outcome.
    pub fn display_action(&self, outcome: ValidationOutcome) -> DisplayAction {
        match outcome {
            ValidationOutcome::NotClaimed | ValidationOutcome::Valid(_) => DisplayAction::Show,
            ValidationOutcome::Revoked(_) => match self.mode {
                EnforcementMode::Block => DisplayAction::Placeholder,
                EnforcementMode::Confirm => DisplayAction::Prompt,
                EnforcementMode::Advisory => DisplayAction::Show,
            },
            // Inconsistent labels are suspicious but the *viewer* (unlike
            // the upload gate) cannot distinguish malice from damage; treat
            // like unknown.
            ValidationOutcome::InconsistentLabel | ValidationOutcome::Unknown(_) => {
                if self.fail_open {
                    DisplayAction::Show
                } else {
                    DisplayAction::Placeholder
                }
            }
        }
    }
}

/// The aggregator-side decision for an upload (§3.2 rules).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UploadDecision {
    /// Accept; record was valid (or photo unlabeled and the aggregator
    /// claimed it custodially — carries the custodial id if so).
    Accepted(Option<RecordId>),
    /// Denied: the record is revoked.
    DeniedRevoked(RecordId),
    /// Denied: metadata/watermark missing or in disagreement.
    DeniedInconsistentLabel,
    /// Denied: unlabeled and the aggregator's policy rejects unclaimed
    /// content.
    DeniedUnlabeled,
    /// Denied: ledger unreachable and aggregator fails closed on upload
    /// (upload is the enforcement point, so unlike viewing it defaults
    /// strict).
    DeniedUnverifiable,
    /// Denied: robust-hash match against already-hosted content claimed
    /// under a different record — the upload must "use the original
    /// metadata" (§3.2) so revoking the original also removes derivatives.
    DeniedDerivedFromClaimed(RecordId),
}

impl UploadDecision {
    /// Whether the upload went through.
    pub fn accepted(&self) -> bool {
        matches!(self, UploadDecision::Accepted(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LedgerId;

    fn rid() -> RecordId {
        RecordId::new(LedgerId(1), 1)
    }

    #[test]
    fn block_mode_blocks_revoked() {
        let p = ViewerPolicy::default();
        assert_eq!(
            p.display_action(ValidationOutcome::Revoked(rid())),
            DisplayAction::Placeholder
        );
        assert_eq!(
            p.display_action(ValidationOutcome::Valid(rid())),
            DisplayAction::Show
        );
        assert_eq!(
            p.display_action(ValidationOutcome::NotClaimed),
            DisplayAction::Show
        );
    }

    #[test]
    fn confirm_mode_prompts() {
        let p = ViewerPolicy {
            mode: EnforcementMode::Confirm,
            fail_open: true,
        };
        assert_eq!(
            p.display_action(ValidationOutcome::Revoked(rid())),
            DisplayAction::Prompt
        );
    }

    #[test]
    fn advisory_mode_shows() {
        let p = ViewerPolicy {
            mode: EnforcementMode::Advisory,
            fail_open: true,
        };
        assert_eq!(
            p.display_action(ValidationOutcome::Revoked(rid())),
            DisplayAction::Show
        );
    }

    #[test]
    fn fail_open_vs_closed() {
        let open = ViewerPolicy::default();
        assert_eq!(
            open.display_action(ValidationOutcome::Unknown(rid())),
            DisplayAction::Show
        );
        let closed = ViewerPolicy {
            mode: EnforcementMode::Block,
            fail_open: false,
        };
        assert_eq!(
            closed.display_action(ValidationOutcome::Unknown(rid())),
            DisplayAction::Placeholder
        );
        assert_eq!(
            closed.display_action(ValidationOutcome::InconsistentLabel),
            DisplayAction::Placeholder
        );
    }

    #[test]
    fn upload_decision_accepted() {
        assert!(UploadDecision::Accepted(None).accepted());
        assert!(UploadDecision::Accepted(Some(rid())).accepted());
        assert!(!UploadDecision::DeniedRevoked(rid()).accepted());
        assert!(!UploadDecision::DeniedInconsistentLabel.accepted());
    }
}
