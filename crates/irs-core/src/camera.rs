//! The owner-side capture path.
//!
//! §3.2: "When taking a photo, the camera (or owner-controlled software)
//! generates a unique key pair for the photo, hashes the photo, and then
//! encrypts the hash with the private key." The [`Camera`] produces a
//! [`CapturedPhoto`] — the photo, its per-photo keypair, and a ready-to-
//! submit [`ClaimRequest`] — without ever involving a user identity.

use crate::claim::ClaimRequest;
use crate::photo::PhotoFile;
use irs_crypto::{Digest, Keypair};
use irs_imaging::{Image, MetadataKey, PhotoGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A photo fresh off the sensor, with its claim material.
#[derive(Clone, Debug)]
pub struct CapturedPhoto {
    /// The photo file (metadata stamped with camera model + capture time).
    pub photo: PhotoFile,
    /// The per-photo keypair (stays with the owner).
    pub keypair: Keypair,
    /// Digest of the pixel content at capture.
    pub digest: Digest,
    /// The claim request to submit to a ledger.
    pub claim: ClaimRequest,
}

/// A camera: a deterministic photo source plus per-photo keygen.
pub struct Camera {
    generator: PhotoGenerator,
    rng: StdRng,
    model: String,
    shots: u64,
    width: u32,
    height: u32,
}

impl Camera {
    /// Create a camera. `seed` determines both the photos it takes and the
    /// keys it generates (deterministic for experiments).
    pub fn new(seed: u64, width: u32, height: u32) -> Camera {
        Camera {
            generator: PhotoGenerator::new(seed),
            rng: StdRng::seed_from_u64(seed ^ 0x4341_4d45_5241_2121),
            model: format!("SynthCam-{seed:04x}"),
            shots: 0,
            width,
            height,
        }
    }

    /// Camera model string stamped into metadata.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Take a photo: generate pixels, keygen, hash, sign.
    pub fn capture(&mut self, capture_time_ms: u64) -> CapturedPhoto {
        let image = self.generator.generate(self.shots, self.width, self.height);
        self.shots += 1;
        self.capture_image(image, capture_time_ms)
    }

    /// Run the claim path over an externally supplied image (e.g. imported
    /// media).
    pub fn capture_image(&mut self, image: Image, capture_time_ms: u64) -> CapturedPhoto {
        let mut seed = [0u8; 32];
        self.rng.fill(&mut seed);
        let keypair = Keypair::from_seed(&seed);
        let mut photo = PhotoFile::new(image);
        photo
            .metadata
            .set(MetadataKey::CameraModel, self.model.clone());
        photo
            .metadata
            .set(MetadataKey::CaptureTime, capture_time_ms.to_string());
        let digest = photo.digest();
        let claim = ClaimRequest::create(&keypair, &digest);
        CapturedPhoto {
            photo,
            keypair,
            digest,
            claim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_produces_valid_claim() {
        let mut cam = Camera::new(1, 128, 128);
        let shot = cam.capture(1_000);
        assert!(shot.claim.proves_ownership_of(&shot.digest));
        assert_eq!(shot.digest, shot.photo.digest());
        assert_eq!(
            shot.photo.metadata.get(MetadataKey::CameraModel),
            Some(cam.model())
        );
        assert_eq!(
            shot.photo.metadata.get(MetadataKey::CaptureTime),
            Some("1000")
        );
    }

    #[test]
    fn each_shot_has_unique_key_and_content() {
        let mut cam = Camera::new(2, 96, 96);
        let a = cam.capture(0);
        let b = cam.capture(0);
        assert_ne!(a.keypair.public, b.keypair.public);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut c1 = Camera::new(3, 64, 64);
        let mut c2 = Camera::new(3, 64, 64);
        let a = c1.capture(5);
        let b = c2.capture(5);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.keypair.public, b.keypair.public);
    }

    #[test]
    fn keys_are_per_photo_not_per_camera() {
        // Goal #1(iv): ownership roots in the photo key, so two photos from
        // the same camera are unlinkable at the ledger.
        let mut cam = Camera::new(4, 64, 64);
        let shots: Vec<_> = (0..5).map(|i| cam.capture(i)).collect();
        let mut keys: Vec<_> = shots.iter().map(|s| s.keypair.public).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 5);
    }
}
