//! Timestamp authority (RFC 3161-style).
//!
//! §3.2: the ledger records "an authenticated timestamp (as in \[1\])" with
//! each claim. The token binds (claim signature, claim pubkey, time) under
//! the authority's key, so an owner can later prove *when* the claim was
//! made — the decisive fact in the appeals process ("a signed timestamp of
//! the original claim").

use crate::time::TimeMs;
use irs_crypto::{Digest, Keypair, PublicKey, Signature};

/// A signed timestamp token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimestampToken {
    /// What was stamped: `Digest::of_parts(claim_sig, claim_pubkey)`.
    pub stamped: Digest,
    /// When it was stamped.
    pub time: TimeMs,
    /// Authority signature over (stamped ‖ time).
    pub sig: Signature,
    /// The authority's public key (identifies the TSA).
    pub authority: PublicKey,
}

/// A timestamp authority: a keypair that countersigns claim digests.
#[derive(Clone, Debug)]
pub struct TimestampAuthority {
    keypair: Keypair,
}

impl TimestampAuthority {
    /// Create an authority from a keypair.
    pub fn new(keypair: Keypair) -> TimestampAuthority {
        TimestampAuthority { keypair }
    }

    /// Deterministic authority for tests and simulations.
    pub fn from_seed(seed: u64) -> TimestampAuthority {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&seed.to_le_bytes());
        s[8..16].copy_from_slice(b"IRS-TSA!");
        TimestampAuthority::new(Keypair::from_seed(&s))
    }

    /// The authority's verification key.
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public
    }

    /// Issue a token over a digest at the given time.
    pub fn stamp(&self, stamped: Digest, time: TimeMs) -> TimestampToken {
        let msg = Self::message(&stamped, time);
        TimestampToken {
            stamped,
            time,
            sig: self.keypair.sign(&msg),
            authority: self.keypair.public,
        }
    }

    fn message(stamped: &Digest, time: TimeMs) -> Vec<u8> {
        let mut msg = Vec::with_capacity(32 + 8 + 8);
        msg.extend_from_slice(b"IRS-TST1");
        msg.extend_from_slice(stamped.as_bytes());
        msg.extend_from_slice(&time.0.to_be_bytes());
        msg
    }
}

impl TimestampToken {
    /// Verify the token against a trusted authority key.
    pub fn verify(&self, trusted_authority: &PublicKey) -> bool {
        if &self.authority != trusted_authority {
            return false;
        }
        let msg = TimestampAuthority::message(&self.stamped, self.time);
        trusted_authority.verify_ok(&msg, &self.sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_and_verify() {
        let tsa = TimestampAuthority::from_seed(1);
        let d = Digest::of(b"claim bytes");
        let tok = tsa.stamp(d, TimeMs(12345));
        assert!(tok.verify(&tsa.public_key()));
        assert_eq!(tok.time, TimeMs(12345));
    }

    #[test]
    fn tampered_token_rejected() {
        let tsa = TimestampAuthority::from_seed(2);
        let tok = tsa.stamp(Digest::of(b"x"), TimeMs(1));
        let mut bad_time = tok;
        bad_time.time = TimeMs(2);
        assert!(!bad_time.verify(&tsa.public_key()));
        let mut bad_digest = tok;
        bad_digest.stamped = Digest::of(b"y");
        assert!(!bad_digest.verify(&tsa.public_key()));
    }

    #[test]
    fn wrong_authority_rejected() {
        let tsa1 = TimestampAuthority::from_seed(3);
        let tsa2 = TimestampAuthority::from_seed(4);
        let tok = tsa1.stamp(Digest::of(b"x"), TimeMs(1));
        assert!(!tok.verify(&tsa2.public_key()));
        // A forged token claiming tsa2's identity but signed by tsa1.
        let mut forged = tok;
        forged.authority = tsa2.public_key();
        assert!(!forged.verify(&tsa2.public_key()));
    }

    #[test]
    fn deterministic_seeding() {
        assert_eq!(
            TimestampAuthority::from_seed(9).public_key(),
            TimestampAuthority::from_seed(9).public_key()
        );
        assert_ne!(
            TimestampAuthority::from_seed(9).public_key(),
            TimestampAuthority::from_seed(10).public_key()
        );
    }
}
