//! Record identifiers.
//!
//! §3.1: claiming "hands back a unique identifier that refers to both the
//! ledger and the specific photo". The identifier must fit in the watermark
//! payload, so it is exactly 96 bits: a 16-bit ledger tag, a 64-bit serial,
//! and a 16-bit checksum that catches corrupted labels before they turn
//! into spurious ledger queries.

use irs_imaging::watermark::PAYLOAD_BYTES;

/// Identifies a ledger within the IRS ecosystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LedgerId(pub u16);

impl std::fmt::Display for LedgerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ledger-{}", self.0)
    }
}

/// The 96-bit identifier of a claimed photo: (ledger, serial, checksum).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// The ledger holding the record.
    pub ledger: LedgerId,
    /// The ledger-local record serial number.
    pub serial: u64,
    /// CRC-16 over (ledger, serial); validated on parse.
    check: u16,
}

impl std::fmt::Debug for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RecordId({}:{})", self.ledger.0, self.serial)
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "irs:{}:{}:{:04x}",
            self.ledger.0, self.serial, self.check
        )
    }
}

impl RecordId {
    /// Construct an identifier (checksum computed).
    pub fn new(ledger: LedgerId, serial: u64) -> RecordId {
        RecordId {
            ledger,
            serial,
            check: Self::checksum(ledger, serial),
        }
    }

    fn checksum(ledger: LedgerId, serial: u64) -> u16 {
        let mut data = [0u8; 10];
        data[..2].copy_from_slice(&ledger.0.to_be_bytes());
        data[2..].copy_from_slice(&serial.to_be_bytes());
        irs_imaging::ecc::crc16(&data)
    }

    /// Serialize to the 12-byte watermark payload.
    pub fn to_payload(&self) -> [u8; PAYLOAD_BYTES] {
        let mut out = [0u8; PAYLOAD_BYTES];
        out[..2].copy_from_slice(&self.ledger.0.to_be_bytes());
        out[2..10].copy_from_slice(&self.serial.to_be_bytes());
        out[10..].copy_from_slice(&self.check.to_be_bytes());
        out
    }

    /// Parse from a 12-byte payload; `None` if the checksum fails.
    pub fn from_payload(bytes: &[u8; PAYLOAD_BYTES]) -> Option<RecordId> {
        let ledger = LedgerId(u16::from_be_bytes(bytes[..2].try_into().expect("2 bytes")));
        let serial = u64::from_be_bytes(bytes[2..10].try_into().expect("8 bytes"));
        let check = u16::from_be_bytes(bytes[10..].try_into().expect("2 bytes"));
        if check != Self::checksum(ledger, serial) {
            return None;
        }
        Some(RecordId {
            ledger,
            serial,
            check,
        })
    }

    /// Parse the textual `irs:<ledger>:<serial>:<check>` form used in
    /// metadata fields; `None` on any syntactic or checksum failure.
    pub fn parse(s: &str) -> Option<RecordId> {
        let mut parts = s.split(':');
        if parts.next()? != "irs" {
            return None;
        }
        let ledger = LedgerId(parts.next()?.parse().ok()?);
        let serial: u64 = parts.next()?.parse().ok()?;
        let check = u16::from_str_radix(parts.next()?, 16).ok()?;
        if parts.next().is_some() || check != Self::checksum(ledger, serial) {
            return None;
        }
        Some(RecordId {
            ledger,
            serial,
            check,
        })
    }

    /// A stable 64-bit key for filters and caches (hash of the payload).
    pub fn filter_key(&self) -> u64 {
        irs_crypto::Digest::of(&self.to_payload()).prefix_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let id = RecordId::new(LedgerId(3), 9_876_543_210);
        let p = id.to_payload();
        assert_eq!(RecordId::from_payload(&p), Some(id));
    }

    #[test]
    fn corrupted_payload_rejected() {
        let id = RecordId::new(LedgerId(1), 42);
        let mut p = id.to_payload();
        p[5] ^= 0x01;
        assert_eq!(RecordId::from_payload(&p), None);
        let mut p2 = id.to_payload();
        p2[11] ^= 0x80; // corrupt the checksum itself
        assert_eq!(RecordId::from_payload(&p2), None);
    }

    #[test]
    fn text_roundtrip() {
        let id = RecordId::new(LedgerId(7), 123_456);
        let s = id.to_string();
        assert!(s.starts_with("irs:7:123456:"));
        assert_eq!(RecordId::parse(&s), Some(id));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert_eq!(RecordId::parse("not-an-id"), None);
        assert_eq!(RecordId::parse("irs:1:2"), None);
        assert_eq!(RecordId::parse("irs:1:2:ffff"), None); // bad checksum
        assert_eq!(RecordId::parse("irs:1:2:zzzz"), None);
        let id = RecordId::new(LedgerId(1), 2);
        let extra = format!("{id}:junk");
        assert_eq!(RecordId::parse(&extra), None);
    }

    #[test]
    fn filter_keys_differ() {
        let a = RecordId::new(LedgerId(1), 1).filter_key();
        let b = RecordId::new(LedgerId(1), 2).filter_key();
        let c = RecordId::new(LedgerId(2), 1).filter_key();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, RecordId::new(LedgerId(1), 1).filter_key());
    }

    #[test]
    fn ordering_is_by_ledger_then_serial() {
        let a = RecordId::new(LedgerId(1), 99);
        let b = RecordId::new(LedgerId(2), 1);
        assert!(a < b);
    }
}
