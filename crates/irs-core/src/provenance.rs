//! C2PA-style provenance chains.
//!
//! §2 "Relevant Technologies": C2PA "proposes a new set of media metadata
//! primitives that can be embedded in media files … or be hosted remotely
//! by the content owner. … IRS … shares many technical challenges with
//! C2PA and can benefit from the adoption of the C2PA metadata standard
//! and the infrastructure C2PA industry partners create."
//!
//! This module is that integration point: a chain of signed assertions
//! tracing a photo from capture through edits to publication. Each link
//! binds (previous-link digest, content digest after this step, action,
//! actor key), so the chain is append-only and any tamper breaks
//! verification. The IRS record identifier rides in the capture assertion,
//! which is how a C2PA-hosted manifest doubles as the IRS label's remote
//! home ("be hosted remotely").

use crate::ids::RecordId;
use crate::time::TimeMs;
use irs_crypto::{Digest, Keypair, PublicKey, Signature};

/// What a provenance step did to the content.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Original capture (first link only). Carries the IRS record id when
    /// the photo is claimed.
    Captured {
        /// The IRS claim, if any.
        irs_record: Option<RecordId>,
    },
    /// An edit with a free-form description ("crop", "color-balance", …).
    Edited(String),
    /// Published/transcoded by a site.
    Published(String),
}

/// One link in a provenance chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assertion {
    /// Digest of the previous assertion ([`Digest::ZERO`] for the first).
    pub prev: Digest,
    /// Content digest *after* this step.
    pub content: Digest,
    /// What happened.
    pub action: Action,
    /// When.
    pub at: TimeMs,
    /// Who (per-actor key: camera, editor, publisher).
    pub actor: PublicKey,
    /// Actor signature over all of the above.
    pub sig: Signature,
}

impl Assertion {
    fn message(prev: &Digest, content: &Digest, action: &Action, at: TimeMs) -> Vec<u8> {
        let mut msg = Vec::with_capacity(96);
        msg.extend_from_slice(b"IRS-PRV1");
        msg.extend_from_slice(prev.as_bytes());
        msg.extend_from_slice(content.as_bytes());
        match action {
            Action::Captured { irs_record } => {
                msg.push(0);
                match irs_record {
                    Some(id) => {
                        msg.push(1);
                        msg.extend_from_slice(&id.to_payload());
                    }
                    None => msg.push(0),
                }
            }
            Action::Edited(what) => {
                msg.push(1);
                msg.extend_from_slice(&(what.len() as u32).to_be_bytes());
                msg.extend_from_slice(what.as_bytes());
            }
            Action::Published(site) => {
                msg.push(2);
                msg.extend_from_slice(&(site.len() as u32).to_be_bytes());
                msg.extend_from_slice(site.as_bytes());
            }
        }
        msg.extend_from_slice(&at.0.to_be_bytes());
        msg
    }

    /// Digest of this assertion (what the next link's `prev` points to).
    pub fn digest(&self) -> Digest {
        Digest::of_parts(&[self.prev.as_bytes(), self.content.as_bytes(), &self.sig.0])
    }

    /// Verify this link's signature.
    pub fn verify(&self) -> bool {
        let msg = Self::message(&self.prev, &self.content, &self.action, self.at);
        self.actor.verify_ok(&msg, &self.sig)
    }
}

/// A provenance chain: capture first, then edits/publications.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProvenanceChain {
    links: Vec<Assertion>,
}

/// Why a chain failed verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// Chain has no links.
    Empty,
    /// First link is not a capture, or a later link is.
    BadStructure,
    /// A link's `prev` does not match the previous link's digest.
    BrokenLink(usize),
    /// A link's signature failed.
    BadSignature(usize),
    /// Timestamps are not monotone.
    TimeReversal(usize),
    /// The final content digest does not match the presented photo.
    ContentMismatch,
}

impl ProvenanceChain {
    /// Start a chain with a capture assertion.
    pub fn capture(
        camera: &Keypair,
        content: Digest,
        irs_record: Option<RecordId>,
        at: TimeMs,
    ) -> ProvenanceChain {
        let action = Action::Captured { irs_record };
        let msg = Assertion::message(&Digest::ZERO, &content, &action, at);
        ProvenanceChain {
            links: vec![Assertion {
                prev: Digest::ZERO,
                content,
                action,
                at,
                actor: camera.public,
                sig: camera.sign(&msg),
            }],
        }
    }

    /// Append an edit/publication step.
    pub fn append(&mut self, actor: &Keypair, new_content: Digest, action: Action, at: TimeMs) {
        debug_assert!(!matches!(action, Action::Captured { .. }));
        let prev = self.links.last().expect("chain never empty").digest();
        let msg = Assertion::message(&prev, &new_content, &action, at);
        self.links.push(Assertion {
            prev,
            content: new_content,
            action,
            at,
            actor: actor.public,
            sig: actor.sign(&msg),
        });
    }

    /// Chain length.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when the chain holds no links (only constructible via
    /// `Default`).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The links, capture first.
    pub fn links(&self) -> &[Assertion] {
        &self.links
    }

    /// The IRS record carried in the capture assertion.
    pub fn irs_record(&self) -> Option<RecordId> {
        match self.links.first()?.action {
            Action::Captured { irs_record } => irs_record,
            _ => None,
        }
    }

    /// Verify the whole chain against the photo it accompanies.
    pub fn verify(&self, final_content: &Digest) -> Result<(), ChainError> {
        if self.links.is_empty() {
            return Err(ChainError::Empty);
        }
        for (i, link) in self.links.iter().enumerate() {
            let is_capture = matches!(link.action, Action::Captured { .. });
            if (i == 0) != is_capture {
                return Err(ChainError::BadStructure);
            }
            if i == 0 {
                if link.prev != Digest::ZERO {
                    return Err(ChainError::BrokenLink(0));
                }
            } else {
                if link.prev != self.links[i - 1].digest() {
                    return Err(ChainError::BrokenLink(i));
                }
                if link.at < self.links[i - 1].at {
                    return Err(ChainError::TimeReversal(i));
                }
            }
            if !link.verify() {
                return Err(ChainError::BadSignature(i));
            }
        }
        if &self.links.last().expect("nonempty").content != final_content {
            return Err(ChainError::ContentMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LedgerId;

    fn kp(seed: u8) -> Keypair {
        Keypair::from_seed(&[seed; 32])
    }

    fn chain() -> (ProvenanceChain, Digest) {
        let camera = kp(1);
        let editor = kp(2);
        let site = kp(3);
        let captured = Digest::of(b"raw pixels");
        let mut chain = ProvenanceChain::capture(
            &camera,
            captured,
            Some(RecordId::new(LedgerId(1), 7)),
            TimeMs(100),
        );
        let edited = Digest::of(b"cropped pixels");
        chain.append(&editor, edited, Action::Edited("crop".into()), TimeMs(200));
        let published = Digest::of(b"transcoded pixels");
        chain.append(
            &site,
            published,
            Action::Published("photos.example".into()),
            TimeMs(300),
        );
        (chain, published)
    }

    #[test]
    fn valid_chain_verifies() {
        let (chain, final_digest) = chain();
        assert_eq!(chain.len(), 3);
        chain.verify(&final_digest).unwrap();
        assert_eq!(chain.irs_record(), Some(RecordId::new(LedgerId(1), 7)));
    }

    #[test]
    fn content_mismatch_detected() {
        let (chain, _) = chain();
        assert_eq!(
            chain.verify(&Digest::of(b"other")),
            Err(ChainError::ContentMismatch)
        );
    }

    #[test]
    fn tampered_link_detected() {
        let (mut chain, final_digest) = chain();
        // Rewrite the edit description without re-signing.
        if let Action::Edited(what) = &mut chain.links[1].action {
            *what = "innocent touch-up".into();
        }
        assert_eq!(
            chain.verify(&final_digest),
            Err(ChainError::BadSignature(1))
        );
    }

    #[test]
    fn removed_middle_link_detected() {
        let (mut chain, final_digest) = chain();
        chain.links.remove(1);
        assert_eq!(chain.verify(&final_digest), Err(ChainError::BrokenLink(1)));
    }

    #[test]
    fn reordered_timestamps_detected() {
        let camera = kp(4);
        let editor = kp(5);
        let captured = Digest::of(b"a");
        let mut chain = ProvenanceChain::capture(&camera, captured, None, TimeMs(500));
        chain.append(
            &editor,
            Digest::of(b"b"),
            Action::Edited("e".into()),
            TimeMs(100),
        );
        assert_eq!(
            chain.verify(&Digest::of(b"b")),
            Err(ChainError::TimeReversal(1))
        );
    }

    #[test]
    fn empty_chain_rejected() {
        let chain = ProvenanceChain::default();
        assert!(chain.is_empty());
        assert_eq!(chain.verify(&Digest::of(b"x")), Err(ChainError::Empty));
    }

    #[test]
    fn unclaimed_capture_has_no_record() {
        let chain = ProvenanceChain::capture(&kp(6), Digest::of(b"p"), None, TimeMs(1));
        assert_eq!(chain.irs_record(), None);
        chain.verify(&Digest::of(b"p")).unwrap();
    }
}
