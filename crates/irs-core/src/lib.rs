//! Core protocol types for the Internet Revocation System (IRS).
//!
//! The paper (§3.1) defines four operations — **claim**, **label**,
//! **revoke**, **validate** — over an ecosystem of cameras, ledgers,
//! browsers, proxies, and content aggregators. This crate defines the
//! shared vocabulary those components speak:
//!
//! * [`ids`] — [`RecordId`]: the 96-bit identifier that names a (ledger,
//!   record) pair, sized to fit the watermark payload;
//! * [`claim`] — [`Claim`], [`RevocationStatus`], and the signed
//!   [`ClaimRequest`] / [`RevokeRequest`] messages;
//! * [`tsa`] — the RFC 3161-style timestamp authority that countersigns
//!   claims ("an authenticated timestamp (as in \[1\])");
//! * [`freshness`] — [`FreshnessProof`]: the OCSP-like signed statement a
//!   ledger issues so aggregators can attach "cryptographic proof that it
//!   has recently verified the non-revoked status" (§3.2);
//! * [`photo`] — [`PhotoFile`]: image + metadata as it moves through the
//!   ecosystem, and [`LabelReading`]: the §3.2 metadata/watermark
//!   agreement rules;
//! * [`camera`] — the owner-side capture path: keygen → hash → sign →
//!   claim → label;
//! * [`wallet`] — the owner's store of (keypair, identifier, original),
//!   producing revocation requests and appeal evidence;
//! * [`policy`] — validation outcomes and the viewer-side enforcement
//!   policy (Goal #3);
//! * [`provenance`] — C2PA-style signed assertion chains, the "Relevant
//!   Technologies" integration point the paper expects IRS to ride on;
//! * [`wire`] — a compact, versioned, length-delimited binary codec plus
//!   the ledger request/response message set, shared by the in-process
//!   simulation and the real TCP prototype (`irs-net`);
//! * [`time`] — milliseconds-since-epoch timestamps and the [`Clock`]
//!   abstraction that lets the same protocol code run under the
//!   discrete-event simulator and on the real network.

pub mod camera;
pub mod claim;
pub mod freshness;
pub mod ids;
pub mod photo;
pub mod policy;
pub mod provenance;
pub mod time;
pub mod tsa;
pub mod wallet;
pub mod wire;

pub use camera::{Camera, CapturedPhoto};
pub use claim::{Claim, ClaimRequest, RevocationStatus, RevokeRequest};
pub use freshness::FreshnessProof;
pub use ids::{LedgerId, RecordId};
pub use photo::{LabelReading, PhotoFile};
pub use policy::{UploadDecision, ValidationOutcome};
pub use time::{Clock, SystemClock, TimeMs};
pub use tsa::{TimestampAuthority, TimestampToken};
pub use wallet::{AppealEvidence, OwnedPhoto, OwnerWallet};

/// Errors shared across the IRS protocol layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrsError {
    /// A signature failed to verify.
    BadSignature,
    /// A record identifier failed its checksum or referenced an unknown
    /// ledger.
    BadRecordId,
    /// The referenced record does not exist.
    UnknownRecord,
    /// A timestamp token failed verification.
    BadTimestamp,
    /// A freshness proof is expired or invalid.
    StaleProof,
    /// Wire-format decode failure.
    Wire(wire::WireError),
    /// Operation rejected by policy (e.g. revoking a permanently revoked
    /// record, or a non-revocable ledger refusing revocation).
    PolicyViolation(&'static str),
}

impl std::fmt::Display for IrsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrsError::BadSignature => write!(f, "signature verification failed"),
            IrsError::BadRecordId => write!(f, "malformed record identifier"),
            IrsError::UnknownRecord => write!(f, "unknown record"),
            IrsError::BadTimestamp => write!(f, "timestamp token invalid"),
            IrsError::StaleProof => write!(f, "freshness proof stale or invalid"),
            IrsError::Wire(e) => write!(f, "wire error: {e}"),
            IrsError::PolicyViolation(what) => write!(f, "policy violation: {what}"),
        }
    }
}

impl std::error::Error for IrsError {}

impl From<wire::WireError> for IrsError {
    fn from(e: wire::WireError) -> Self {
        IrsError::Wire(e)
    }
}
