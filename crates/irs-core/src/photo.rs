//! Photo files and label reading.
//!
//! A [`PhotoFile`] is a photo as it travels the ecosystem: pixel data plus
//! the metadata container. Labeling (§3.1) writes the record identifier in
//! both places; [`LabelReading`] implements the §3.2 upload rules — "if the
//! explicit metadata or watermark disagree or one of them is missing
//! (indicating that the photo has been modified in some way that has lost
//! metadata), the upload is also denied".

use crate::ids::RecordId;
use irs_crypto::Digest;
use irs_imaging::watermark::{self, WatermarkConfig};
use irs_imaging::{Image, Metadata, MetadataKey};

/// A photo plus its metadata container.
#[derive(Clone, Debug, PartialEq)]
pub struct PhotoFile {
    /// Pixel data.
    pub image: Image,
    /// EXIF-like metadata.
    pub metadata: Metadata,
}

impl PhotoFile {
    /// Wrap a bare image with empty metadata.
    pub fn new(image: Image) -> PhotoFile {
        PhotoFile {
            image,
            metadata: Metadata::new(),
        }
    }

    /// Content digest (SHA-256 over dimensions + raw pixels). Metadata is
    /// *not* hashed: the digest identifies the photograph itself.
    pub fn digest(&self) -> Digest {
        Digest::of_parts(&[
            &self.image.width().to_be_bytes(),
            &self.image.height().to_be_bytes(),
            self.image.raw(),
        ])
    }

    /// Label the photo with a record identifier: explicit metadata field
    /// plus pixel-domain watermark (§3.1 "Labeling").
    pub fn label(
        &mut self,
        id: RecordId,
        cfg: &WatermarkConfig,
    ) -> Result<(), irs_imaging::ImagingError> {
        let marked = watermark::embed(&self.image, &id.to_payload(), cfg)?;
        self.image = marked;
        self.metadata.set(MetadataKey::IrsRecordId, id.to_string());
        Ok(())
    }

    /// Read both label channels.
    pub fn read_label(&self, cfg: &WatermarkConfig) -> LabelReading {
        let metadata_id = self
            .metadata
            .get(MetadataKey::IrsRecordId)
            .and_then(RecordId::parse);
        let watermark_id = watermark::extract(&self.image, cfg)
            .ok()
            .and_then(|payload| RecordId::from_payload(&payload));
        LabelReading {
            metadata_id,
            watermark_id,
        }
    }
}

/// The result of reading a photo's two label channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelReading {
    /// Identifier from the explicit metadata field, if present and valid.
    pub metadata_id: Option<RecordId>,
    /// Identifier recovered from the watermark, if any.
    pub watermark_id: Option<RecordId>,
}

/// The §3.2 classification of a label reading.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelState {
    /// Both channels present and agree: a validly labeled photo.
    Labeled(RecordId),
    /// Channels disagree, or exactly one is missing: the photo "has been
    /// modified in some way that has lost metadata" — upload denied.
    Inconsistent,
    /// Neither channel present: unclaimed content; the aggregator may
    /// reject it or claim it custodially.
    Unlabeled,
}

impl LabelReading {
    /// Classify per the upload rules.
    pub fn state(&self) -> LabelState {
        match (self.metadata_id, self.watermark_id) {
            (Some(m), Some(w)) if m == w => LabelState::Labeled(m),
            (None, None) => LabelState::Unlabeled,
            _ => LabelState::Inconsistent,
        }
    }

    /// Best-effort identifier for *validation* (viewing): the browser will
    /// check either channel — a viewer-side check is advisory, not an
    /// upload gate, so a single surviving channel still triggers a lookup.
    pub fn any_id(&self) -> Option<RecordId> {
        self.metadata_id.or(self.watermark_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LedgerId;
    use irs_imaging::PhotoGenerator;

    fn photo() -> PhotoFile {
        PhotoFile::new(PhotoGenerator::new(3).generate(0, 256, 256))
    }

    fn cfg() -> WatermarkConfig {
        WatermarkConfig::default()
    }

    #[test]
    fn digest_covers_pixels_not_metadata() {
        let mut a = photo();
        let d1 = a.digest();
        a.metadata.set(MetadataKey::Comment, "hello");
        assert_eq!(a.digest(), d1, "metadata must not affect the digest");
        let b = PhotoFile::new(PhotoGenerator::new(3).generate(1, 256, 256));
        assert_ne!(b.digest(), d1);
    }

    #[test]
    fn label_and_read_back() {
        let mut p = photo();
        let id = RecordId::new(LedgerId(2), 77);
        p.label(id, &cfg()).unwrap();
        let reading = p.read_label(&cfg());
        assert_eq!(reading.metadata_id, Some(id));
        assert_eq!(reading.watermark_id, Some(id));
        assert_eq!(reading.state(), LabelState::Labeled(id));
    }

    #[test]
    fn stripped_metadata_is_inconsistent() {
        let mut p = photo();
        let id = RecordId::new(LedgerId(2), 78);
        p.label(id, &cfg()).unwrap();
        p.metadata.strip_all();
        let reading = p.read_label(&cfg());
        assert_eq!(reading.metadata_id, None);
        assert_eq!(reading.watermark_id, Some(id));
        assert_eq!(reading.state(), LabelState::Inconsistent);
        assert_eq!(reading.any_id(), Some(id));
    }

    #[test]
    fn mismatched_channels_are_inconsistent() {
        let mut p = photo();
        let id = RecordId::new(LedgerId(2), 79);
        p.label(id, &cfg()).unwrap();
        // Attacker rewrites the metadata to a different id.
        let other = RecordId::new(LedgerId(9), 1);
        p.metadata.set(MetadataKey::IrsRecordId, other.to_string());
        assert_eq!(p.read_label(&cfg()).state(), LabelState::Inconsistent);
    }

    #[test]
    fn unlabeled_photo() {
        let p = photo();
        let reading = p.read_label(&cfg());
        assert_eq!(reading.state(), LabelState::Unlabeled);
        assert_eq!(reading.any_id(), None);
    }

    #[test]
    fn garbage_metadata_id_ignored() {
        let mut p = photo();
        p.metadata.set(MetadataKey::IrsRecordId, "irs:not:valid:zz");
        assert_eq!(p.read_label(&cfg()).metadata_id, None);
    }
}
