//! Imaging substrate for the Internet Revocation System reproduction.
//!
//! The paper assumes an ecosystem full of photographs, cameras that label
//! them, sites that transcode them, and two image-processing technologies:
//! robust watermarking (to carry the ledger identifier in pixel data,
//! Goal #5) and robust/perceptual hashing (PhotoDNA-style, for the appeals
//! process in §3.2 and the re-claiming attack in §5). This crate builds all
//! of that synthetically:
//!
//! * [`raster`] — the [`raster::Image`] type (8-bit RGB raster) with crop,
//!   resize, and luma conversion;
//! * [`generator`] — deterministic procedural "photographs" with natural
//!   image statistics (octave value noise, gradients, shapes);
//! * [`dct`] / [`dwt`] — the transform substrate (8×8 and 32×32 DCT-II,
//!   one-level Haar DWT);
//! * [`jpeg`] — JPEG-style lossy transcoding (quality-scaled quantization
//!   of block DCT coefficients), the "benign manipulation" sites apply;
//! * [`manipulate`] — crop, resize, tint, brightness, noise, overlays;
//! * [`metadata`] — the EXIF-like metadata container that carries the
//!   explicit IRS label (and that hostile sites strip);
//! * [`ecc`] — CRC-16 + Hamming(7,4) coding for the watermark payload;
//! * [`watermark`] — DWT–DCT QIM watermark carrying a 96-bit identifier,
//!   robust to JPEG transcoding, cropping, and tinting (experiment E7);
//! * [`phash`] — perceptual hashes (DCT pHash 64/256-bit, difference hash)
//!   with Hamming-distance matching (experiment E8).

pub mod dct;
pub mod dwt;
pub mod ecc;
pub mod generator;
pub mod jpeg;
pub mod manipulate;
pub mod metadata;
pub mod phash;
pub mod raster;
pub mod watermark;

pub use generator::PhotoGenerator;
pub use metadata::{Metadata, MetadataKey};
pub use raster::Image;

/// Errors from imaging operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImagingError {
    /// Image dimensions unusable for the requested operation.
    BadDimensions(&'static str),
    /// Requested region lies outside the image.
    OutOfBounds,
    /// Watermark payload could not be embedded (image too small for the
    /// required redundancy).
    TooSmallForWatermark,
    /// No valid watermark found at extraction time.
    WatermarkNotFound,
}

impl std::fmt::Display for ImagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImagingError::BadDimensions(what) => write!(f, "bad image dimensions: {what}"),
            ImagingError::OutOfBounds => write!(f, "region out of bounds"),
            ImagingError::TooSmallForWatermark => {
                write!(f, "image too small to carry the watermark payload")
            }
            ImagingError::WatermarkNotFound => write!(f, "no valid watermark found"),
        }
    }
}

impl std::error::Error for ImagingError {}
