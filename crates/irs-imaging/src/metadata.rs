//! The EXIF-like metadata container.
//!
//! IRS labels a photo two ways (§3.1 "Labeling"): explicit metadata fields
//! (this module) and a pixel-domain watermark ([`crate::watermark`]). Sites
//! today often strip metadata; the paper assumes IRS-supporting aggregators
//! preserve the IRS fields, while `irs-attacks` models hostile stripping.

use std::collections::BTreeMap;

/// Well-known metadata keys. String-keyed entries are also allowed, mirroring
/// EXIF's maker-note sprawl.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetadataKey {
    /// The IRS ledger identifier ("irs:record-id"): the explicit label.
    IrsRecordId,
    /// C2PA-style provenance chain pointer.
    ProvenanceUri,
    /// Capture timestamp (seconds since epoch, decimal string).
    CaptureTime,
    /// Camera model string.
    CameraModel,
    /// Free-form user comment.
    Comment,
}

impl MetadataKey {
    fn as_str(&self) -> &'static str {
        match self {
            MetadataKey::IrsRecordId => "irs:record-id",
            MetadataKey::ProvenanceUri => "c2pa:provenance",
            MetadataKey::CaptureTime => "exif:capture-time",
            MetadataKey::CameraModel => "exif:camera-model",
            MetadataKey::Comment => "exif:comment",
        }
    }
}

/// An ordered key→value metadata map attached to a photo file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metadata {
    fields: BTreeMap<String, String>,
}

impl Metadata {
    /// Empty metadata.
    pub fn new() -> Metadata {
        Metadata::default()
    }

    /// Set a well-known field.
    pub fn set(&mut self, key: MetadataKey, value: impl Into<String>) {
        self.fields.insert(key.as_str().to_string(), value.into());
    }

    /// Set an arbitrary string-keyed field.
    pub fn set_raw(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.fields.insert(key.into(), value.into());
    }

    /// Get a well-known field.
    pub fn get(&self, key: MetadataKey) -> Option<&str> {
        self.fields.get(key.as_str()).map(String::as_str)
    }

    /// Get an arbitrary field.
    pub fn get_raw(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// Remove a well-known field, returning the old value.
    pub fn remove(&mut self, key: MetadataKey) -> Option<String> {
        self.fields.remove(key.as_str())
    }

    /// Number of fields present.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if no fields are present.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Strip everything — what a non-IRS site does on upload today.
    pub fn strip_all(&mut self) {
        self.fields.clear();
    }

    /// Strip everything *except* the IRS label and provenance fields — what
    /// an IRS-supporting aggregator does ("we assume content aggregators
    /// supporting IRS keep IRS-related metadata intact", §3.2).
    pub fn strip_preserving_irs(&mut self) {
        let keep = [
            MetadataKey::IrsRecordId.as_str(),
            MetadataKey::ProvenanceUri.as_str(),
        ];
        self.fields.retain(|k, _| keep.contains(&k.as_str()));
    }

    /// Iterate fields in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = Metadata::new();
        m.set(MetadataKey::IrsRecordId, "ledger-1:42");
        m.set(MetadataKey::CameraModel, "SynthCam 3000");
        assert_eq!(m.get(MetadataKey::IrsRecordId), Some("ledger-1:42"));
        assert_eq!(m.get(MetadataKey::CameraModel), Some("SynthCam 3000"));
        assert_eq!(m.get(MetadataKey::Comment), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn strip_all_clears() {
        let mut m = Metadata::new();
        m.set(MetadataKey::IrsRecordId, "x");
        m.set_raw("maker:note", "y");
        m.strip_all();
        assert!(m.is_empty());
    }

    #[test]
    fn strip_preserving_irs_keeps_label() {
        let mut m = Metadata::new();
        m.set(MetadataKey::IrsRecordId, "ledger-1:42");
        m.set(MetadataKey::ProvenanceUri, "https://prov/1");
        m.set(MetadataKey::CaptureTime, "1700000000");
        m.set_raw("maker:gps", "secret location");
        m.strip_preserving_irs();
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(MetadataKey::IrsRecordId), Some("ledger-1:42"));
        assert_eq!(m.get(MetadataKey::CaptureTime), None);
        assert_eq!(m.get_raw("maker:gps"), None);
    }

    #[test]
    fn remove_returns_value() {
        let mut m = Metadata::new();
        m.set(MetadataKey::Comment, "hello");
        assert_eq!(m.remove(MetadataKey::Comment), Some("hello".to_string()));
        assert_eq!(m.remove(MetadataKey::Comment), None);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = Metadata::new();
        m.set_raw("z", "1");
        m.set_raw("a", "2");
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }
}
