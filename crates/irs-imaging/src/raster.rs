//! The raster image type used throughout the IRS reproduction.
//!
//! 8-bit RGB, row-major. Deliberately minimal: just what cameras, sites,
//! watermarking, and hashing need.

use crate::ImagingError;

/// An 8-bit RGB raster image.
#[derive(Clone, PartialEq, Eq)]
pub struct Image {
    width: u32,
    height: u32,
    /// `width * height * 3` bytes, row-major RGB.
    pixels: Vec<u8>,
}

impl std::fmt::Debug for Image {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Image({}×{})", self.width, self.height)
    }
}

impl Image {
    /// Create a black image.
    pub fn new(width: u32, height: u32) -> Image {
        Image {
            width,
            height,
            pixels: vec![0u8; (width as usize) * (height as usize) * 3],
        }
    }

    /// Create from raw RGB bytes (must be exactly `w*h*3` long).
    pub fn from_raw(width: u32, height: u32, pixels: Vec<u8>) -> Result<Image, ImagingError> {
        if pixels.len() != (width as usize) * (height as usize) * 3 {
            return Err(ImagingError::BadDimensions("raw buffer length mismatch"));
        }
        Ok(Image {
            width,
            height,
            pixels,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw RGB bytes.
    pub fn raw(&self) -> &[u8] {
        &self.pixels
    }

    /// Get the RGB triple at (x, y).
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> [u8; 3] {
        let i = self.index(x, y);
        [self.pixels[i], self.pixels[i + 1], self.pixels[i + 2]]
    }

    /// Set the RGB triple at (x, y).
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, rgb: [u8; 3]) {
        let i = self.index(x, y);
        self.pixels[i..i + 3].copy_from_slice(&rgb);
    }

    #[inline]
    fn index(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        ((y as usize) * (self.width as usize) + (x as usize)) * 3
    }

    /// ITU-R BT.601 luma as f32 in [0, 255].
    pub fn luma(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity((self.width as usize) * (self.height as usize));
        for px in self.pixels.chunks_exact(3) {
            out.push(0.299 * px[0] as f32 + 0.587 * px[1] as f32 + 0.114 * px[2] as f32);
        }
        out
    }

    /// Replace the luma plane, preserving chroma by scaling each channel by
    /// the luma ratio. Values are clamped to [0, 255].
    pub fn set_luma(&mut self, new_luma: &[f32]) {
        assert_eq!(
            new_luma.len(),
            (self.width as usize) * (self.height as usize),
            "luma plane size mismatch"
        );
        for (px, &ny) in self.pixels.chunks_exact_mut(3).zip(new_luma.iter()) {
            let y = 0.299 * px[0] as f32 + 0.587 * px[1] as f32 + 0.114 * px[2] as f32;
            if y > 0.5 {
                let ratio = ny / y;
                for c in px.iter_mut() {
                    *c = (*c as f32 * ratio).round().clamp(0.0, 255.0) as u8;
                }
            } else {
                // Black pixel: write the luma into all channels.
                let v = ny.round().clamp(0.0, 255.0) as u8;
                px.copy_from_slice(&[v, v, v]);
            }
        }
    }

    /// Crop a `w × h` region with top-left corner `(x, y)`.
    pub fn crop(&self, x: u32, y: u32, w: u32, h: u32) -> Result<Image, ImagingError> {
        if w == 0 || h == 0 {
            return Err(ImagingError::BadDimensions("zero crop size"));
        }
        // `is_some_and` keeps this on the 1.75 MSRV (`is_none_or` is 1.82+).
        let in_bounds = x.checked_add(w).is_some_and(|e| e <= self.width)
            && y.checked_add(h).is_some_and(|e| e <= self.height);
        if !in_bounds {
            return Err(ImagingError::OutOfBounds);
        }
        let mut out = Image::new(w, h);
        for row in 0..h {
            let src = self.index(x, y + row);
            let dst = ((row as usize) * (w as usize)) * 3;
            out.pixels[dst..dst + (w as usize) * 3]
                .copy_from_slice(&self.pixels[src..src + (w as usize) * 3]);
        }
        Ok(out)
    }

    /// Bilinear resize to `w × h`.
    pub fn resize(&self, w: u32, h: u32) -> Result<Image, ImagingError> {
        if w == 0 || h == 0 {
            return Err(ImagingError::BadDimensions("zero resize target"));
        }
        let mut out = Image::new(w, h);
        let sx = self.width as f32 / w as f32;
        let sy = self.height as f32 / h as f32;
        for oy in 0..h {
            for ox in 0..w {
                let fx = ((ox as f32 + 0.5) * sx - 0.5).clamp(0.0, self.width as f32 - 1.0);
                let fy = ((oy as f32 + 0.5) * sy - 0.5).clamp(0.0, self.height as f32 - 1.0);
                let x0 = fx.floor() as u32;
                let y0 = fy.floor() as u32;
                let x1 = (x0 + 1).min(self.width - 1);
                let y1 = (y0 + 1).min(self.height - 1);
                let tx = fx - x0 as f32;
                let ty = fy - y0 as f32;
                let p00 = self.get(x0, y0);
                let p10 = self.get(x1, y0);
                let p01 = self.get(x0, y1);
                let p11 = self.get(x1, y1);
                let mut px = [0u8; 3];
                for c in 0..3 {
                    let top = p00[c] as f32 * (1.0 - tx) + p10[c] as f32 * tx;
                    let bot = p01[c] as f32 * (1.0 - tx) + p11[c] as f32 * tx;
                    px[c] = (top * (1.0 - ty) + bot * ty).round().clamp(0.0, 255.0) as u8;
                }
                out.set(ox, oy, px);
            }
        }
        Ok(out)
    }

    /// Mean absolute per-channel difference against another image of the
    /// same dimensions — a cheap distortion metric used by tests and the
    /// watermark-imperceptibility check.
    pub fn mean_abs_diff(&self, other: &Image) -> Option<f64> {
        if self.width != other.width || self.height != other.height {
            return None;
        }
        let total: u64 = self
            .pixels
            .iter()
            .zip(other.pixels.iter())
            .map(|(&a, &b)| (a as i32 - b as i32).unsigned_abs() as u64)
            .sum();
        Some(total as f64 / self.pixels.len() as f64)
    }

    /// Peak signal-to-noise ratio in dB against a reference image.
    pub fn psnr(&self, reference: &Image) -> Option<f64> {
        if self.width != reference.width || self.height != reference.height {
            return None;
        }
        let mse: f64 = self
            .pixels
            .iter()
            .zip(reference.pixels.iter())
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>()
            / self.pixels.len() as f64;
        if mse == 0.0 {
            return Some(f64::INFINITY);
        }
        Some(10.0 * (255.0 * 255.0 / mse).log10())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: u32, h: u32) -> Image {
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(
                    x,
                    y,
                    [(x % 256) as u8, (y % 256) as u8, ((x + y) % 256) as u8],
                );
            }
        }
        img
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::new(10, 10);
        img.set(3, 7, [1, 2, 3]);
        assert_eq!(img.get(3, 7), [1, 2, 3]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(Image::from_raw(2, 2, vec![0; 12]).is_ok());
        assert!(Image::from_raw(2, 2, vec![0; 11]).is_err());
    }

    #[test]
    fn crop_extracts_expected_region() {
        let img = gradient(32, 32);
        let c = img.crop(4, 8, 10, 12).unwrap();
        assert_eq!(c.width(), 10);
        assert_eq!(c.height(), 12);
        for y in 0..12 {
            for x in 0..10 {
                assert_eq!(c.get(x, y), img.get(x + 4, y + 8));
            }
        }
    }

    #[test]
    fn crop_bounds_checked() {
        let img = gradient(16, 16);
        assert!(img.crop(10, 10, 7, 5).is_err());
        assert!(img.crop(0, 0, 0, 5).is_err());
        assert!(img.crop(u32::MAX, 0, 2, 2).is_err());
        assert!(img.crop(0, 0, 16, 16).is_ok());
    }

    #[test]
    fn resize_identity_is_exactish() {
        let img = gradient(16, 16);
        let same = img.resize(16, 16).unwrap();
        let diff = img.mean_abs_diff(&same).unwrap();
        assert!(diff < 0.5, "identity resize diff {diff}");
    }

    #[test]
    fn resize_changes_dimensions() {
        let img = gradient(64, 48);
        let small = img.resize(32, 24).unwrap();
        assert_eq!((small.width(), small.height()), (32, 24));
        let up = small.resize(64, 48).unwrap();
        // Down-then-up loses detail but stays recognizable.
        let diff = img.mean_abs_diff(&up).unwrap();
        assert!(diff < 10.0, "resize roundtrip diff {diff}");
    }

    #[test]
    fn luma_roundtrip_approx() {
        let img = gradient(32, 32);
        let mut copy = img.clone();
        let y = img.luma();
        copy.set_luma(&y);
        let diff = img.mean_abs_diff(&copy).unwrap();
        assert!(diff < 1.0, "set_luma(luma()) diff {diff}");
    }

    #[test]
    fn set_luma_shifts_brightness() {
        let img = gradient(16, 16);
        let mut brighter = img.clone();
        let y: Vec<f32> = img.luma().iter().map(|v| v + 20.0).collect();
        brighter.set_luma(&y);
        let orig_mean: f64 = img.luma().iter().map(|&v| v as f64).sum::<f64>() / (16.0 * 16.0);
        let new_mean: f64 = brighter.luma().iter().map(|&v| v as f64).sum::<f64>() / (16.0 * 16.0);
        assert!(new_mean > orig_mean + 10.0);
    }

    #[test]
    fn psnr_properties() {
        let img = gradient(16, 16);
        assert_eq!(img.psnr(&img), Some(f64::INFINITY));
        let mut noisy = img.clone();
        noisy.set(0, 0, [255, 255, 255]);
        let p = noisy.psnr(&img).unwrap();
        assert!(p.is_finite() && p > 20.0);
        let other = gradient(8, 8);
        assert_eq!(img.psnr(&other), None);
    }
}
