//! Discrete cosine transforms.
//!
//! Orthonormal DCT-II / DCT-III in one and two dimensions, for arbitrary
//! sizes (the watermark uses 8×8 blocks; the perceptual hash uses 32×32).
//! Plain O(n²) per row/column — block sizes are tiny, so this is both
//! simple and fast enough.

/// Precomputed cosine basis for size-`n` DCT.
#[derive(Clone, Debug)]
pub struct DctPlan {
    n: usize,
    /// `basis[k * n + i] = scale(k) * cos(π (i + ½) k / n)`
    basis: Vec<f32>,
}

impl DctPlan {
    /// Build a plan for transforms of length `n` (n ≥ 1).
    pub fn new(n: usize) -> DctPlan {
        assert!(n >= 1, "DCT length must be ≥ 1");
        let mut basis = vec![0.0f32; n * n];
        for k in 0..n {
            let scale = if k == 0 {
                (1.0 / n as f64).sqrt()
            } else {
                (2.0 / n as f64).sqrt()
            };
            for i in 0..n {
                basis[k * n + i] = (scale
                    * (std::f64::consts::PI * (i as f64 + 0.5) * k as f64 / n as f64).cos())
                    as f32;
            }
        }
        DctPlan { n, basis }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; plans have n ≥ 1.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward (DCT-II) on a length-n slice.
    pub fn forward(&self, input: &[f32], output: &mut [f32]) {
        debug_assert_eq!(input.len(), self.n);
        debug_assert_eq!(output.len(), self.n);
        for (out, row) in output.iter_mut().zip(self.basis.chunks_exact(self.n)) {
            *out = row.iter().zip(input.iter()).map(|(b, x)| b * x).sum();
        }
    }

    /// Inverse (DCT-III) on a length-n slice.
    pub fn inverse(&self, input: &[f32], output: &mut [f32]) {
        debug_assert_eq!(input.len(), self.n);
        debug_assert_eq!(output.len(), self.n);
        for (i, out) in output.iter_mut().enumerate() {
            *out = input
                .iter()
                .enumerate()
                .map(|(k, x)| self.basis[k * self.n + i] * x)
                .sum();
        }
    }

    /// 2D forward DCT on an `n × n` row-major block, in place.
    pub fn forward_2d(&self, block: &mut [f32]) {
        debug_assert_eq!(block.len(), self.n * self.n);
        let n = self.n;
        let mut tmp = vec![0.0f32; n];
        // Rows.
        for r in 0..n {
            tmp.copy_from_slice(&block[r * n..(r + 1) * n]);
            self.forward(&tmp, &mut block[r * n..(r + 1) * n]);
        }
        // Columns.
        let mut col = vec![0.0f32; n];
        for c in 0..n {
            for r in 0..n {
                col[r] = block[r * n + c];
            }
            self.forward(&col, &mut tmp);
            for r in 0..n {
                block[r * n + c] = tmp[r];
            }
        }
    }

    /// 2D inverse DCT on an `n × n` row-major block, in place.
    pub fn inverse_2d(&self, block: &mut [f32]) {
        debug_assert_eq!(block.len(), self.n * self.n);
        let n = self.n;
        let mut tmp = vec![0.0f32; n];
        let mut col = vec![0.0f32; n];
        // Columns first (inverse of forward order; DCT is separable so
        // order does not actually matter).
        for c in 0..n {
            for r in 0..n {
                col[r] = block[r * n + c];
            }
            self.inverse(&col, &mut tmp);
            for r in 0..n {
                block[r * n + c] = tmp[r];
            }
        }
        for r in 0..n {
            tmp.copy_from_slice(&block[r * n..(r + 1) * n]);
            self.inverse(&tmp, &mut block[r * n..(r + 1) * n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_1d() {
        let plan = DctPlan::new(8);
        let input: Vec<f32> = (0..8).map(|i| (i as f32 * 13.7).sin() * 50.0).collect();
        let mut freq = vec![0.0; 8];
        let mut back = vec![0.0; 8];
        plan.forward(&input, &mut freq);
        plan.inverse(&freq, &mut back);
        for (a, b) in input.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_2d() {
        let plan = DctPlan::new(8);
        let mut block: Vec<f32> = (0..64).map(|i| ((i * 37) % 255) as f32).collect();
        let orig = block.clone();
        plan.forward_2d(&mut block);
        plan.inverse_2d(&mut block);
        for (a, b) in orig.iter().zip(block.iter()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_signal_is_pure_dc() {
        let plan = DctPlan::new(8);
        let input = vec![100.0f32; 8];
        let mut freq = vec![0.0; 8];
        plan.forward(&input, &mut freq);
        // DC = 100 * sqrt(8)
        assert!((freq[0] - 100.0 * 8f32.sqrt()).abs() < 1e-2);
        for &f in &freq[1..] {
            assert!(f.abs() < 1e-3);
        }
    }

    #[test]
    fn orthonormality_preserves_energy() {
        let plan = DctPlan::new(16);
        let input: Vec<f32> = (0..16)
            .map(|i| (i as f32).cos() * 30.0 + i as f32)
            .collect();
        let mut freq = vec![0.0; 16];
        plan.forward(&input, &mut freq);
        let e_in: f32 = input.iter().map(|x| x * x).sum();
        let e_out: f32 = freq.iter().map(|x| x * x).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-4, "{e_in} vs {e_out}");
    }

    #[test]
    fn roundtrip_32() {
        let plan = DctPlan::new(32);
        let mut block: Vec<f32> = (0..32 * 32).map(|i| ((i * 7919) % 251) as f32).collect();
        let orig = block.clone();
        plan.forward_2d(&mut block);
        plan.inverse_2d(&mut block);
        let max_err = orig
            .iter()
            .zip(block.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 0.1, "max err {max_err}");
    }
}
