//! Error-control coding for the watermark payload.
//!
//! The watermark carries a 96-bit record identifier. Because individual
//! coefficient decisions are noisy under transcoding, the payload is
//! protected twice: a CRC-32 frames the payload so wrong decodes are
//! rejected (essential because the crop-tolerant extractor scans thousands
//! of candidate grid/tile alignments — a 16-bit check would pass spuriously
//! every ~65k candidates), and a Hamming(7,4) code corrects single-bit
//! errors per codeword *after* spatial majority voting has already
//! suppressed most channel noise.

/// CRC-16/CCITT-FALSE (kept for probe tokens and tests).
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xffff;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// CRC-32 (IEEE 802.3, reflected).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0xedb8_8320;
            } else {
                crc >>= 1;
            }
        }
    }
    !crc
}

/// Encode 4 data bits into a 7-bit Hamming codeword.
/// Layout: [p1, p2, d1, p3, d2, d3, d4] (classic positions 1..7).
fn hamming_encode_nibble(nibble: u8) -> u8 {
    let d1 = (nibble >> 3) & 1;
    let d2 = (nibble >> 2) & 1;
    let d3 = (nibble >> 1) & 1;
    let d4 = nibble & 1;
    let p1 = d1 ^ d2 ^ d4;
    let p2 = d1 ^ d3 ^ d4;
    let p3 = d2 ^ d3 ^ d4;
    (p1 << 6) | (p2 << 5) | (d1 << 4) | (p3 << 3) | (d2 << 2) | (d3 << 1) | d4
}

/// Decode a 7-bit Hamming codeword to 4 data bits, correcting up to one
/// flipped bit.
fn hamming_decode_nibble(code: u8) -> u8 {
    let bit = |i: u8| (code >> (7 - i)) & 1; // positions 1..7, MSB first
    let s1 = bit(1) ^ bit(3) ^ bit(5) ^ bit(7);
    let s2 = bit(2) ^ bit(3) ^ bit(6) ^ bit(7);
    let s3 = bit(4) ^ bit(5) ^ bit(6) ^ bit(7);
    let syndrome = (s3 << 2) | (s2 << 1) | s1;
    let mut code = code;
    if syndrome != 0 {
        code ^= 1 << (7 - syndrome);
    }
    let b = |i: u8| (code >> (7 - i)) & 1;
    (b(3) << 3) | (b(5) << 2) | (b(6) << 1) | b(7)
}

/// Encode a byte payload into coded bits: appends CRC-32, then Hamming(7,4)
/// encodes each nibble. Output is a bit vector (one bool per coded bit).
pub fn encode(payload: &[u8]) -> Vec<bool> {
    let mut with_crc = payload.to_vec();
    with_crc.extend_from_slice(&crc32(payload).to_be_bytes());
    let mut bits = Vec::with_capacity(with_crc.len() * 14);
    for byte in with_crc {
        for nibble in [byte >> 4, byte & 0x0f] {
            let code = hamming_encode_nibble(nibble);
            for i in (0..7).rev() {
                bits.push((code >> i) & 1 == 1);
            }
        }
    }
    bits
}

/// Number of coded bits produced by [`encode`] for an n-byte payload.
pub fn coded_len(payload_bytes: usize) -> usize {
    (payload_bytes + 4) * 14
}

/// Decode coded bits back to the payload. Returns `None` if the length is
/// wrong or the CRC check fails (i.e. more errors than the code could
/// correct).
pub fn decode(bits: &[bool], payload_bytes: usize) -> Option<Vec<u8>> {
    if bits.len() != coded_len(payload_bytes) {
        return None;
    }
    let total = payload_bytes + 4;
    let mut bytes = Vec::with_capacity(total);
    let mut chunks = bits.chunks_exact(7);
    for _ in 0..total {
        let hi_code = pack7(chunks.next()?);
        let lo_code = pack7(chunks.next()?);
        let hi = hamming_decode_nibble(hi_code);
        let lo = hamming_decode_nibble(lo_code);
        bytes.push((hi << 4) | lo);
    }
    let (payload, crc_bytes) = bytes.split_at(payload_bytes);
    let expect = u32::from_be_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(payload) == expect {
        Some(payload.to_vec())
    } else {
        None
    }
}

fn pack7(bits: &[bool]) -> u8 {
    bits.iter().fold(0u8, |acc, &b| (acc << 1) | b as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29b1);
        assert_eq!(crc16(b""), 0xffff);
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32/IEEE("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn hamming_nibble_roundtrip() {
        for n in 0..16u8 {
            assert_eq!(hamming_decode_nibble(hamming_encode_nibble(n)), n);
        }
    }

    #[test]
    fn hamming_corrects_any_single_bit_error() {
        for n in 0..16u8 {
            let code = hamming_encode_nibble(n);
            for bit in 0..7 {
                let corrupted = code ^ (1 << bit);
                assert_eq!(hamming_decode_nibble(corrupted), n, "nibble {n} bit {bit}");
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let payload = [
            0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef,
        ];
        let bits = encode(&payload);
        assert_eq!(bits.len(), coded_len(12));
        assert_eq!(decode(&bits, 12), Some(payload.to_vec()));
    }

    #[test]
    fn single_bit_errors_in_every_codeword_corrected() {
        let payload = [0x12, 0x34, 0x56];
        let mut bits = encode(&payload);
        // Flip one bit in each 7-bit codeword.
        for cw in 0..bits.len() / 7 {
            bits[cw * 7 + (cw % 7)] ^= true;
        }
        assert_eq!(decode(&bits, 3), Some(payload.to_vec()));
    }

    #[test]
    fn double_bit_error_detected_by_crc() {
        let payload = [0x12, 0x34, 0x56, 0x78];
        let mut corrupted_detected = 0;
        for cw in 0..4 {
            let mut bits = encode(&payload);
            bits[cw * 7] ^= true;
            bits[cw * 7 + 1] ^= true;
            if decode(&bits, 4).is_none() {
                corrupted_detected += 1;
            }
        }
        // Hamming(7,4) miscorrects double errors; CRC must catch them.
        assert_eq!(corrupted_detected, 4);
    }

    #[test]
    fn wrong_length_rejected() {
        let bits = encode(&[1, 2, 3]);
        assert_eq!(decode(&bits, 4), None);
        assert_eq!(decode(&bits[..bits.len() - 1], 3), None);
    }

    #[test]
    fn random_bits_rarely_pass_crc() {
        // The extractor scans 64 alignments; spurious CRC passes must be
        // rare (2^-16 per attempt).
        let mut passes = 0;
        for seed in 0..200u64 {
            let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let bits: Vec<bool> = (0..coded_len(12))
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x & 1 == 1
                })
                .collect();
            if decode(&bits, 12).is_some() {
                passes += 1;
            }
        }
        assert!(passes <= 1, "{passes} spurious CRC passes in 200 trials");
    }
}
