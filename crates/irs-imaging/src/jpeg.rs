//! JPEG-style lossy transcoding.
//!
//! Content aggregators recompress uploads; §2 Goal #5 requires the
//! watermark to survive this. We model the lossy core of baseline JPEG —
//! 8×8 block DCT of the luma plane with quality-scaled quantization of the
//! standard table — without the (lossless) entropy-coding stage, which does
//! not affect pixel values. Chroma is carried through the luma-ratio
//! projection of [`Image::set_luma`], approximating 4:2:0's perceptual
//! effect for our purposes (hash + watermark operate on luma).

use crate::dct::DctPlan;
use crate::raster::Image;

/// The Annex-K luminance quantization table (quality 50 baseline).
const Q50: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Build the quantization table for a quality factor in [1, 100]
/// (the libjpeg scaling convention).
pub fn quant_table(quality: u8) -> [u16; 64] {
    let q = quality.clamp(1, 100) as i32;
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut table = [0u16; 64];
    for i in 0..64 {
        let v = (Q50[i] as i32 * scale + 50) / 100;
        table[i] = v.clamp(1, 255) as u16;
    }
    table
}

/// Recompress an image at the given JPEG quality (1–100; higher = better).
pub fn transcode(img: &Image, quality: u8) -> Image {
    let w = img.width() as usize;
    let h = img.height() as usize;
    let mut luma = img.luma();
    let table = quant_table(quality);
    let plan = DctPlan::new(8);

    let mut block = [0.0f32; 64];
    for by in (0..h).step_by(8) {
        for bx in (0..w).step_by(8) {
            let bw = (w - bx).min(8);
            let bh = (h - by).min(8);
            // Load with edge replication for partial blocks.
            for y in 0..8 {
                for x in 0..8 {
                    let sx = bx + x.min(bw - 1);
                    let sy = by + y.min(bh - 1);
                    block[y * 8 + x] = luma[sy * w + sx] - 128.0;
                }
            }
            plan.forward_2d(&mut block);
            for i in 0..64 {
                let q = table[i] as f32;
                block[i] = (block[i] / q).round() * q;
            }
            plan.inverse_2d(&mut block);
            for y in 0..bh {
                for x in 0..bw {
                    luma[(by + y) * w + (bx + x)] = (block[y * 8 + x] + 128.0).clamp(0.0, 255.0);
                }
            }
        }
    }
    let mut out = img.clone();
    out.set_luma(&luma);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PhotoGenerator;

    #[test]
    fn quant_table_scaling() {
        let q50 = quant_table(50);
        assert_eq!(q50[0], 16);
        let q90 = quant_table(90);
        let q10 = quant_table(10);
        // Higher quality ⇒ finer quantization.
        assert!(q90[0] < q50[0]);
        assert!(q10[0] > q50[0]);
        // Steps never hit zero.
        assert!(quant_table(100).iter().all(|&v| v >= 1));
    }

    #[test]
    fn high_quality_is_nearly_lossless() {
        let img = PhotoGenerator::new(1).generate(0, 128, 128);
        let out = transcode(&img, 95);
        let diff = img.mean_abs_diff(&out).unwrap();
        assert!(diff < 4.0, "q95 diff {diff}");
    }

    #[test]
    fn quality_degrades_monotonically() {
        let img = PhotoGenerator::new(2).generate(0, 128, 128);
        let d90 = img.mean_abs_diff(&transcode(&img, 90)).unwrap();
        let d50 = img.mean_abs_diff(&transcode(&img, 50)).unwrap();
        let d10 = img.mean_abs_diff(&transcode(&img, 10)).unwrap();
        assert!(d90 < d50, "q90 {d90} < q50 {d50}");
        assert!(d50 < d10, "q50 {d50} < q10 {d10}");
    }

    #[test]
    fn preserves_dimensions_including_partial_blocks() {
        let img = PhotoGenerator::new(3).generate(0, 67, 45);
        let out = transcode(&img, 75);
        assert_eq!((out.width(), out.height()), (67, 45));
    }

    #[test]
    fn transcode_is_idempotentish() {
        // Transcoding twice at the same quality changes little the second
        // time (coefficients already near quantization lattice).
        let img = PhotoGenerator::new(4).generate(0, 64, 64);
        let once = transcode(&img, 60);
        let twice = transcode(&once, 60);
        let d1 = img.mean_abs_diff(&once).unwrap();
        let d2 = once.mean_abs_diff(&twice).unwrap();
        assert!(
            d2 < d1,
            "second pass {d2} should distort less than first {d1}"
        );
    }
}
