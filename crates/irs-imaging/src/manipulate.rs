//! Photo manipulations — the "benign photo alterations" of Goal #5 and the
//! hostile distortions of §5's direct attacks.
//!
//! Used by experiment E7 (watermark robustness sweep), E8 (perceptual-hash
//! ROC), and `irs-attacks` (watermark-destruction attack).

use crate::raster::Image;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single manipulation applied to a photo.
#[derive(Clone, Debug, PartialEq)]
pub enum Manipulation {
    /// JPEG-style recompression at a quality factor (1–100).
    Jpeg(u8),
    /// Crop a fraction (0.0–0.9) of each dimension, keeping the center,
    /// with a deterministic pseudo-random corner jitter from `seed`.
    CropFraction { fraction: f32, seed: u64 },
    /// Multiply each channel by a factor (tinting / white-balance shift).
    Tint { r: f32, g: f32, b: f32 },
    /// Add a constant to all channels.
    Brightness(i16),
    /// Add Gaussian-ish noise with the given standard deviation.
    Noise { sigma: f32, seed: u64 },
    /// Resize to a fraction of the original dimensions and back (models a
    /// thumbnail pipeline). Fraction in (0, 1].
    ResizeRoundtrip(f32),
    /// Overlay opaque horizontal bars (meme text/caption model): `bars`
    /// bars each `height_px` tall.
    CaptionBars { bars: u32, height_px: u32 },
    /// Horizontal mirror.
    FlipHorizontal,
}

impl Manipulation {
    /// Apply the manipulation, returning the altered image.
    pub fn apply(&self, img: &Image) -> Image {
        match *self {
            Manipulation::Jpeg(q) => crate::jpeg::transcode(img, q),
            Manipulation::CropFraction { fraction, seed } => {
                let f = fraction.clamp(0.0, 0.9);
                let w = img.width();
                let h = img.height();
                let new_w = ((w as f32) * (1.0 - f)).round().max(1.0) as u32;
                let new_h = ((h as f32) * (1.0 - f)).round().max(1.0) as u32;
                let max_x = w - new_w;
                let max_y = h - new_h;
                let mut rng = StdRng::seed_from_u64(seed);
                let x = if max_x > 0 {
                    rng.gen_range(0..=max_x)
                } else {
                    0
                };
                let y = if max_y > 0 {
                    rng.gen_range(0..=max_y)
                } else {
                    0
                };
                img.crop(x, y, new_w, new_h).expect("crop in bounds")
            }
            Manipulation::Tint { r, g, b } => {
                let mut out = img.clone();
                for y in 0..img.height() {
                    for x in 0..img.width() {
                        let px = img.get(x, y);
                        out.set(
                            x,
                            y,
                            [
                                (px[0] as f32 * r).round().clamp(0.0, 255.0) as u8,
                                (px[1] as f32 * g).round().clamp(0.0, 255.0) as u8,
                                (px[2] as f32 * b).round().clamp(0.0, 255.0) as u8,
                            ],
                        );
                    }
                }
                out
            }
            Manipulation::Brightness(delta) => {
                let mut out = img.clone();
                for y in 0..img.height() {
                    for x in 0..img.width() {
                        let px = img.get(x, y);
                        let mut np = [0u8; 3];
                        for c in 0..3 {
                            np[c] = (px[c] as i32 + delta as i32).clamp(0, 255) as u8;
                        }
                        out.set(x, y, np);
                    }
                }
                out
            }
            Manipulation::Noise { sigma, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut out = img.clone();
                for y in 0..img.height() {
                    for x in 0..img.width() {
                        let px = img.get(x, y);
                        // Sum of 4 uniforms ≈ Gaussian (Irwin–Hall).
                        let n: f32 = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).sum::<f32>()
                            / 4.0f32.sqrt()
                            * sigma
                            * 1.732;
                        let mut np = [0u8; 3];
                        for c in 0..3 {
                            np[c] = (px[c] as f32 + n).round().clamp(0.0, 255.0) as u8;
                        }
                        out.set(x, y, np);
                    }
                }
                out
            }
            Manipulation::ResizeRoundtrip(fraction) => {
                let f = fraction.clamp(0.05, 1.0);
                let w = ((img.width() as f32) * f).round().max(1.0) as u32;
                let h = ((img.height() as f32) * f).round().max(1.0) as u32;
                img.resize(w, h)
                    .and_then(|small| small.resize(img.width(), img.height()))
                    .expect("resize in bounds")
            }
            Manipulation::CaptionBars { bars, height_px } => {
                let mut out = img.clone();
                let h = img.height();
                for b in 0..bars {
                    let y0 = (h * (b + 1)) / (bars + 1);
                    for y in y0..(y0 + height_px).min(h) {
                        for x in 0..img.width() {
                            out.set(x, y, [255, 255, 255]);
                        }
                    }
                }
                out
            }
            Manipulation::FlipHorizontal => {
                let mut out = img.clone();
                for y in 0..img.height() {
                    for x in 0..img.width() {
                        out.set(img.width() - 1 - x, y, img.get(x, y));
                    }
                }
                out
            }
        }
    }

    /// Short name for experiment tables.
    pub fn name(&self) -> String {
        match self {
            Manipulation::Jpeg(q) => format!("jpeg-q{q}"),
            Manipulation::CropFraction { fraction, .. } => {
                format!("crop-{:.0}%", fraction * 100.0)
            }
            Manipulation::Tint { r, g, b } => format!("tint-{r:.2}/{g:.2}/{b:.2}"),
            Manipulation::Brightness(d) => format!("brightness{d:+}"),
            Manipulation::Noise { sigma, .. } => format!("noise-σ{sigma:.1}"),
            Manipulation::ResizeRoundtrip(f) => format!("resize-{:.0}%", f * 100.0),
            Manipulation::CaptionBars { bars, .. } => format!("caption-{bars}bars"),
            Manipulation::FlipHorizontal => "flip-h".to_string(),
        }
    }
}

/// Apply a sequence of manipulations left to right.
pub fn apply_all(img: &Image, ops: &[Manipulation]) -> Image {
    ops.iter().fold(img.clone(), |acc, op| op.apply(&acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PhotoGenerator;

    fn photo() -> Image {
        PhotoGenerator::new(5).generate(0, 96, 96)
    }

    #[test]
    fn crop_shrinks_dimensions() {
        let img = photo();
        let out = Manipulation::CropFraction {
            fraction: 0.25,
            seed: 1,
        }
        .apply(&img);
        assert_eq!(out.width(), 72);
        assert_eq!(out.height(), 72);
    }

    #[test]
    fn crop_zero_is_identity_dimensions() {
        let img = photo();
        let out = Manipulation::CropFraction {
            fraction: 0.0,
            seed: 1,
        }
        .apply(&img);
        assert_eq!((out.width(), out.height()), (96, 96));
        assert_eq!(out, img);
    }

    #[test]
    fn tint_scales_channels() {
        let img = photo();
        let out = Manipulation::Tint {
            r: 1.1,
            g: 1.0,
            b: 0.9,
        }
        .apply(&img);
        let (mut ro, mut bo, mut rn, mut bn) = (0u64, 0u64, 0u64, 0u64);
        for y in 0..img.height() {
            for x in 0..img.width() {
                ro += img.get(x, y)[0] as u64;
                bo += img.get(x, y)[2] as u64;
                rn += out.get(x, y)[0] as u64;
                bn += out.get(x, y)[2] as u64;
            }
        }
        assert!(rn > ro, "red should brighten");
        assert!(bn < bo, "blue should darken");
    }

    #[test]
    fn brightness_clamps() {
        let img = photo();
        let bright = Manipulation::Brightness(300).apply(&img);
        assert_eq!(bright.get(0, 0), [255, 255, 255]);
        let dark = Manipulation::Brightness(-300).apply(&img);
        assert_eq!(dark.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn noise_perturbs_roughly_sigma() {
        let img = photo();
        let out = Manipulation::Noise {
            sigma: 5.0,
            seed: 3,
        }
        .apply(&img);
        let diff = img.mean_abs_diff(&out).unwrap();
        // Mean |N(0,5)| ≈ 4; allow wide tolerance for the Irwin–Hall
        // approximation and clamping.
        assert!((1.5..8.0).contains(&diff), "noise diff {diff}");
    }

    #[test]
    fn flip_is_involution() {
        let img = photo();
        let back = Manipulation::FlipHorizontal.apply(&Manipulation::FlipHorizontal.apply(&img));
        assert_eq!(img, back);
    }

    #[test]
    fn caption_bars_paint_white() {
        let img = photo();
        let out = Manipulation::CaptionBars {
            bars: 2,
            height_px: 4,
        }
        .apply(&img);
        let y0 = 96 / 3;
        assert_eq!(out.get(10, y0), [255, 255, 255]);
    }

    #[test]
    fn apply_all_composes() {
        let img = photo();
        let ops = [
            Manipulation::Jpeg(80),
            Manipulation::Brightness(10),
            Manipulation::FlipHorizontal,
        ];
        let manual = ops[2].apply(&ops[1].apply(&ops[0].apply(&img)));
        assert_eq!(apply_all(&img, &ops), manual);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Manipulation::Jpeg(50).name(), "jpeg-q50");
        assert_eq!(
            Manipulation::CropFraction {
                fraction: 0.2,
                seed: 0
            }
            .name(),
            "crop-20%"
        );
    }
}
