//! One-level 2D Haar discrete wavelet transform.
//!
//! The watermark embeds in the LL (low-low) subband: LL coefficients are
//! local averages, so JPEG's high-frequency quantization barely moves them,
//! which is what makes the DWT–DCT family (cited by the paper \[2, 18\])
//! robust to transcoding.

/// Result of a one-level 2D Haar DWT on an even-dimension plane.
#[derive(Clone, Debug)]
pub struct Haar2d {
    /// Half-resolution approximation (scaled averages).
    pub ll: Vec<f32>,
    /// Horizontal detail.
    pub lh: Vec<f32>,
    /// Vertical detail.
    pub hl: Vec<f32>,
    /// Diagonal detail.
    pub hh: Vec<f32>,
    /// Subband width (input width / 2).
    pub w: usize,
    /// Subband height (input height / 2).
    pub h: usize,
}

/// Forward one-level Haar DWT. Input is a row-major `width × height` plane;
/// odd trailing row/column are ignored (callers re-attach them on inverse).
pub fn haar_forward(plane: &[f32], width: usize, height: usize) -> Haar2d {
    let w = width / 2;
    let h = height / 2;
    let mut ll = vec![0.0f32; w * h];
    let mut lh = vec![0.0f32; w * h];
    let mut hl = vec![0.0f32; w * h];
    let mut hh = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let a = plane[(2 * y) * width + 2 * x];
            let b = plane[(2 * y) * width + 2 * x + 1];
            let c = plane[(2 * y + 1) * width + 2 * x];
            let d = plane[(2 * y + 1) * width + 2 * x + 1];
            // Orthonormal Haar: divide by 2.
            ll[y * w + x] = (a + b + c + d) / 2.0;
            lh[y * w + x] = (a - b + c - d) / 2.0;
            hl[y * w + x] = (a + b - c - d) / 2.0;
            hh[y * w + x] = (a - b - c + d) / 2.0;
        }
    }
    Haar2d {
        ll,
        lh,
        hl,
        hh,
        w,
        h,
    }
}

/// Inverse one-level Haar DWT back into a `width × height` plane. Pixels in
/// an odd trailing row/column are taken from `original` unchanged.
pub fn haar_inverse(bands: &Haar2d, width: usize, height: usize, original: &[f32]) -> Vec<f32> {
    let mut out = original.to_vec();
    let w = bands.w;
    for y in 0..bands.h {
        for x in 0..w {
            let ll = bands.ll[y * w + x];
            let lh = bands.lh[y * w + x];
            let hl = bands.hl[y * w + x];
            let hh = bands.hh[y * w + x];
            out[(2 * y) * width + 2 * x] = (ll + lh + hl + hh) / 2.0;
            out[(2 * y) * width + 2 * x + 1] = (ll - lh + hl - hh) / 2.0;
            out[(2 * y + 1) * width + 2 * x] = (ll + lh - hl - hh) / 2.0;
            out[(2 * y + 1) * width + 2 * x + 1] = (ll - lh - hl + hh) / 2.0;
        }
    }
    let _ = height;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(w: usize, h: usize) -> Vec<f32> {
        (0..w * h).map(|i| ((i * 97) % 256) as f32).collect()
    }

    #[test]
    fn perfect_reconstruction_even() {
        let (w, h) = (16, 12);
        let p = plane(w, h);
        let bands = haar_forward(&p, w, h);
        let back = haar_inverse(&bands, w, h, &p);
        for (a, b) in p.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn odd_dimensions_preserve_trailing_pixels() {
        let (w, h) = (15, 9);
        let p = plane(w, h);
        let bands = haar_forward(&p, w, h);
        assert_eq!((bands.w, bands.h), (7, 4));
        let back = haar_inverse(&bands, w, h, &p);
        // Trailing column/row untouched.
        for y in 0..h {
            assert_eq!(back[y * w + 14], p[y * w + 14]);
        }
        for x in 0..w {
            assert_eq!(back[8 * w + x], p[8 * w + x]);
        }
    }

    #[test]
    fn ll_is_scaled_average() {
        let p = vec![10.0f32, 20.0, 30.0, 40.0];
        let bands = haar_forward(&p, 2, 2);
        assert!((bands.ll[0] - 50.0).abs() < 1e-5); // (10+20+30+40)/2
    }

    #[test]
    fn energy_preserved() {
        let (w, h) = (32, 32);
        let p = plane(w, h);
        let bands = haar_forward(&p, w, h);
        let e_in: f32 = p.iter().map(|x| x * x).sum();
        let e_out: f32 = bands
            .ll
            .iter()
            .chain(&bands.lh)
            .chain(&bands.hl)
            .chain(&bands.hh)
            .map(|x| x * x)
            .sum();
        assert!((e_in - e_out).abs() / e_in < 1e-4);
    }

    #[test]
    fn modifying_ll_survives_roundtrip() {
        let (w, h) = (16, 16);
        let p = plane(w, h);
        let mut bands = haar_forward(&p, w, h);
        bands.ll[10] += 40.0;
        let modified = haar_inverse(&bands, w, h, &p);
        let bands2 = haar_forward(&modified, w, h);
        assert!((bands2.ll[10] - bands.ll[10]).abs() < 1e-3);
    }
}
