//! Deterministic procedural "photographs".
//!
//! The paper's workloads involve billions of personal photos; we obviously
//! substitute synthetic ones (DESIGN.md §2). For watermarking and
//! perceptual hashing to behave realistically, the generator produces
//! images with natural-image statistics: an approximately 1/f power
//! spectrum (octave value noise), large-scale illumination gradients, and
//! hard edges (geometric shapes) — rather than white noise or flat fields.

use crate::raster::Image;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates deterministic synthetic photos from a seed.
#[derive(Clone, Debug)]
pub struct PhotoGenerator {
    seed: u64,
}

impl PhotoGenerator {
    /// Create a generator; the same seed always yields the same photos.
    pub fn new(seed: u64) -> PhotoGenerator {
        PhotoGenerator { seed }
    }

    /// Generate photo number `index` at the given dimensions.
    pub fn generate(&self, index: u64, width: u32, height: u32) -> Image {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(index),
        );
        let mut img = Image::new(width, height);

        // Layer 1: smooth illumination gradient between two random colors.
        let c0: [f32; 3] = [
            rng.gen_range(30.0..160.0),
            rng.gen_range(30.0..160.0),
            rng.gen_range(30.0..160.0),
        ];
        let c1: [f32; 3] = [
            rng.gen_range(60.0..220.0),
            rng.gen_range(60.0..220.0),
            rng.gen_range(60.0..220.0),
        ];
        let angle: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let (dx, dy) = (angle.cos(), angle.sin());

        // Layer 2: octave value noise (lattice noise with bilinear
        // interpolation), 4 octaves with 1/f amplitude falloff.
        let octaves: Vec<NoiseLattice> = (0..4)
            .map(|o| NoiseLattice::new(&mut rng, 4 << o))
            .collect();

        let diag = ((width * width + height * height) as f32).sqrt();
        for y in 0..height {
            for x in 0..width {
                let u = x as f32 / width as f32;
                let v = y as f32 / height as f32;
                let t = ((x as f32 * dx + y as f32 * dy) / diag + 1.0) / 2.0;
                let mut px = [0.0f32; 3];
                // Noise contributes ±45 levels, weighted 1/2^octave.
                let mut noise = 0.0f32;
                let mut amp = 1.0f32;
                for lattice in &octaves {
                    noise += amp * lattice.sample(u, v);
                    amp *= 0.5;
                }
                for c in 0..3 {
                    px[c] = c0[c] * (1.0 - t) + c1[c] * t + noise * 45.0;
                }
                img.set(
                    x,
                    y,
                    [
                        px[0].clamp(0.0, 255.0) as u8,
                        px[1].clamp(0.0, 255.0) as u8,
                        px[2].clamp(0.0, 255.0) as u8,
                    ],
                );
            }
        }

        // Layer 3: a few solid shapes (hard edges, like objects/faces).
        let shapes = rng.gen_range(2..6);
        for _ in 0..shapes {
            let cx = rng.gen_range(0..width) as i64;
            let cy = rng.gen_range(0..height) as i64;
            let r = rng.gen_range((width.min(height) / 12).max(2)..(width.min(height) / 4).max(3))
                as i64;
            let color = [rng.gen::<u8>(), rng.gen::<u8>(), rng.gen::<u8>()];
            let alpha: f32 = rng.gen_range(0.4..0.9);
            let rect = rng.gen_bool(0.5);
            let y0 = (cy - r).max(0) as u32;
            let y1 = ((cy + r) as u32).min(height.saturating_sub(1));
            let x0 = (cx - r).max(0) as u32;
            let x1 = ((cx + r) as u32).min(width.saturating_sub(1));
            for py in y0..=y1 {
                for px_ in x0..=x1 {
                    let inside = if rect {
                        true
                    } else {
                        let ddx = px_ as i64 - cx;
                        let ddy = py as i64 - cy;
                        ddx * ddx + ddy * ddy <= r * r
                    };
                    if inside {
                        let old = img.get(px_, py);
                        let mut blended = [0u8; 3];
                        for c in 0..3 {
                            blended[c] = (old[c] as f32 * (1.0 - alpha) + color[c] as f32 * alpha)
                                .round() as u8;
                        }
                        img.set(px_, py, blended);
                    }
                }
            }
        }
        img
    }
}

/// A value-noise lattice: random values at grid points, bilinear
/// interpolation with smoothstep easing in between.
struct NoiseLattice {
    size: usize,
    values: Vec<f32>,
}

impl NoiseLattice {
    fn new(rng: &mut StdRng, size: usize) -> NoiseLattice {
        NoiseLattice {
            size,
            values: (0..(size + 1) * (size + 1))
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
        }
    }

    /// Sample at (u, v) ∈ [0, 1]².
    fn sample(&self, u: f32, v: f32) -> f32 {
        let fu = (u.clamp(0.0, 1.0)) * self.size as f32;
        let fv = (v.clamp(0.0, 1.0)) * self.size as f32;
        let x0 = (fu.floor() as usize).min(self.size - 1);
        let y0 = (fv.floor() as usize).min(self.size - 1);
        let tx = smoothstep(fu - x0 as f32);
        let ty = smoothstep(fv - y0 as f32);
        let stride = self.size + 1;
        let v00 = self.values[y0 * stride + x0];
        let v10 = self.values[y0 * stride + x0 + 1];
        let v01 = self.values[(y0 + 1) * stride + x0];
        let v11 = self.values[(y0 + 1) * stride + x0 + 1];
        let top = v00 * (1.0 - tx) + v10 * tx;
        let bot = v01 * (1.0 - tx) + v11 * tx;
        top * (1.0 - ty) + bot * ty
    }
}

fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let g = PhotoGenerator::new(7);
        let a = g.generate(3, 64, 64);
        let b = g.generate(3, 64, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_across_indices_and_seeds() {
        let g = PhotoGenerator::new(7);
        let a = g.generate(1, 64, 64);
        let b = g.generate(2, 64, 64);
        assert_ne!(a, b);
        let g2 = PhotoGenerator::new(8);
        assert_ne!(a, g2.generate(1, 64, 64));
    }

    #[test]
    fn has_texture_not_flat() {
        let g = PhotoGenerator::new(42);
        let img = g.generate(0, 128, 128);
        let luma = img.luma();
        let mean: f32 = luma.iter().sum::<f32>() / luma.len() as f32;
        let var: f32 =
            luma.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / luma.len() as f32;
        assert!(var > 100.0, "variance {var} too low — image is flat");
    }

    #[test]
    fn spectrum_is_low_frequency_dominated() {
        // Natural images concentrate energy at low frequencies. Compare
        // adjacent-pixel correlation: white noise would be ~0, natural ~0.9.
        let g = PhotoGenerator::new(9);
        let img = g.generate(0, 128, 128);
        let luma = img.luma();
        let mean: f32 = luma.iter().sum::<f32>() / luma.len() as f32;
        let mut cov = 0.0f64;
        let mut var = 0.0f64;
        for y in 0..128usize {
            for x in 0..127usize {
                let a = (luma[y * 128 + x] - mean) as f64;
                let b = (luma[y * 128 + x + 1] - mean) as f64;
                cov += a * b;
                var += a * a;
            }
        }
        let corr = cov / var;
        assert!(corr > 0.7, "adjacent-pixel correlation {corr} too low");
    }

    #[test]
    fn respects_dimensions() {
        let g = PhotoGenerator::new(1);
        let img = g.generate(0, 33, 77);
        assert_eq!((img.width(), img.height()), (33, 77));
    }
}
