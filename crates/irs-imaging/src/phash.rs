//! Perceptual hashing — the reproduction's stand-in for PhotoDNA.
//!
//! The appeals process (§3.2) compares an original photo against an alleged
//! copy "using robust hashing (as in PhotoDNA)"; aggregators keep "a
//! database of robust hashes of their current content". PhotoDNA itself is
//! closed, so we implement the standard published equivalents (Farid,
//! *An Overview of Perceptual Hashing* \[13\]):
//!
//! * [`dct_hash`] — classic 64-bit pHash: 32×32 luma, 2D DCT, sign of the
//!   8×8 low band against its median;
//! * [`dct_hash_256`] — the same with a 16×16 band, for finer ROC curves;
//! * [`dhash`] — 64-bit difference hash (gradient signs on a 9×8 grid).
//!
//! Matching is Hamming distance ([`hamming64`] / [`hamming256`]); experiment
//! E8 measures the distance distributions for manipulated copies vs
//! distinct photos and derives operating thresholds.

use crate::dct::DctPlan;
use crate::raster::Image;

/// A 64-bit perceptual hash.
pub type Hash64 = u64;

/// A 256-bit perceptual hash.
pub type Hash256 = [u64; 4];

/// Classic DCT pHash: 64 bits.
pub fn dct_hash(img: &Image) -> Hash64 {
    let coeffs = low_band(img, 8);
    let mut sorted = coeffs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in DCT output"));
    let median = (sorted[31] + sorted[32]) / 2.0;
    let mut hash = 0u64;
    for (i, &c) in coeffs.iter().enumerate() {
        if c > median {
            hash |= 1 << i;
        }
    }
    hash
}

/// 256-bit DCT hash (16×16 low band).
pub fn dct_hash_256(img: &Image) -> Hash256 {
    let coeffs = low_band(img, 16);
    let mut sorted = coeffs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in DCT output"));
    let median = (sorted[127] + sorted[128]) / 2.0;
    let mut hash = [0u64; 4];
    for (i, &c) in coeffs.iter().enumerate() {
        if c > median {
            hash[i / 64] |= 1 << (i % 64);
        }
    }
    hash
}

/// Extract the `band × band` low-frequency DCT block (DC excluded by
/// replacing it with the next coefficient's scale) from a 32×32 downscale.
fn low_band(img: &Image, band: usize) -> Vec<f32> {
    debug_assert!(band <= 32);
    let small = img.resize(32, 32).expect("32×32 resize");
    let luma = small.luma();
    let mut block: Vec<f32> = luma;
    let plan = DctPlan::new(32);
    plan.forward_2d(&mut block);
    let mut out = Vec::with_capacity(band * band);
    for y in 0..band {
        for x in 0..band {
            if x == 0 && y == 0 {
                // Drop DC — pure brightness.
                out.push(0.0);
            } else {
                out.push(block[y * 32 + x]);
            }
        }
    }
    out
}

/// Difference hash: signs of horizontal gradients on a 9×8 downscale.
pub fn dhash(img: &Image) -> Hash64 {
    let small = img.resize(9, 8).expect("9×8 resize");
    let luma = small.luma();
    let mut hash = 0u64;
    let mut bit = 0;
    for y in 0..8usize {
        for x in 0..8usize {
            if luma[y * 9 + x] < luma[y * 9 + x + 1] {
                hash |= 1 << bit;
            }
            bit += 1;
        }
    }
    hash
}

/// Hamming distance between 64-bit hashes.
pub fn hamming64(a: Hash64, b: Hash64) -> u32 {
    (a ^ b).count_ones()
}

/// Hamming distance between 256-bit hashes.
pub fn hamming256(a: &Hash256, b: &Hash256) -> u32 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x ^ y).count_ones())
        .sum()
}

/// Decision produced by [`RobustMatcher`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchVerdict {
    /// Distance at or below the match threshold: images share provenance.
    Derived,
    /// Distance in the gray zone: escalate to human inspection (the paper's
    /// appeals process allows "robust hashing and/or human inspection").
    Uncertain,
    /// Distance above the clear threshold: independent images.
    Distinct,
}

/// Two-threshold matcher over the 256-bit DCT hash, as used by ledger
/// appeals and aggregator derivative-detection.
#[derive(Clone, Copy, Debug)]
pub struct RobustMatcher {
    /// Distances ≤ this are declared [`MatchVerdict::Derived`].
    pub match_threshold: u32,
    /// Distances > this are declared [`MatchVerdict::Distinct`].
    pub distinct_threshold: u32,
}

impl Default for RobustMatcher {
    fn default() -> Self {
        // Calibrated by experiment E8: manipulated copies cluster well
        // below 60/256; independent photos cluster near 128/256.
        RobustMatcher {
            match_threshold: 60,
            distinct_threshold: 90,
        }
    }
}

impl RobustMatcher {
    /// Compare two images.
    pub fn compare(&self, a: &Image, b: &Image) -> MatchVerdict {
        self.verdict(hamming256(&dct_hash_256(a), &dct_hash_256(b)))
    }

    /// Compare where `copy` may be a *cropped* derivative of `original`.
    ///
    /// Global DCT hashes are not crop-invariant (a 15 % crop moves the
    /// 256-bit hash by ~100+ bits), so the plain comparison misses cropped
    /// copies — the one §5 re-claiming variant a hash DB would otherwise
    /// let through. The appellant possesses the original, so the judge can
    /// afford a candidate-crop search: hash a grid of plausible crops of
    /// the original and take the minimum distance against the copy.
    pub fn compare_with_crop_search(&self, original: &Image, copy: &Image) -> MatchVerdict {
        let copy_hash = dct_hash_256(copy);
        let mut best = hamming256(&dct_hash_256(original), &copy_hash);
        let w = original.width();
        let h = original.height();
        for &fraction in &[0.05f32, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40] {
            let cw = ((w as f32) * (1.0 - fraction)).round().max(1.0) as u32;
            let ch = ((h as f32) * (1.0 - fraction)).round().max(1.0) as u32;
            // 5×5 anchor grid over the possible crop positions (appeals
            // run rarely; ~175 candidate hashes are affordable there).
            for gy in 0..5u32 {
                for gx in 0..5u32 {
                    let x = (w - cw) * gx / 4;
                    let y = (h - ch) * gy / 4;
                    if let Ok(cand) = original.crop(x, y, cw, ch) {
                        let d = hamming256(&dct_hash_256(&cand), &copy_hash);
                        best = best.min(d);
                        if best <= self.match_threshold {
                            return MatchVerdict::Derived;
                        }
                    }
                }
            }
        }
        self.verdict(best)
    }

    /// Verdict for a precomputed distance.
    pub fn verdict(&self, distance: u32) -> MatchVerdict {
        if distance <= self.match_threshold {
            MatchVerdict::Derived
        } else if distance <= self.distinct_threshold {
            MatchVerdict::Uncertain
        } else {
            MatchVerdict::Distinct
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PhotoGenerator;
    use crate::manipulate::Manipulation;

    fn photo(i: u64) -> Image {
        PhotoGenerator::new(77).generate(i, 128, 128)
    }

    #[test]
    fn identical_images_distance_zero() {
        let img = photo(0);
        assert_eq!(hamming64(dct_hash(&img), dct_hash(&img)), 0);
        assert_eq!(hamming256(&dct_hash_256(&img), &dct_hash_256(&img)), 0);
        assert_eq!(hamming64(dhash(&img), dhash(&img)), 0);
    }

    #[test]
    fn jpeg_transcode_keeps_hash_close() {
        let img = photo(1);
        let t = Manipulation::Jpeg(40).apply(&img);
        assert!(hamming64(dct_hash(&img), dct_hash(&t)) <= 8);
        assert!(hamming256(&dct_hash_256(&img), &dct_hash_256(&t)) <= 40);
    }

    #[test]
    fn brightness_and_tint_keep_hash_close() {
        let img = photo(2);
        let b = Manipulation::Brightness(25).apply(&img);
        assert!(
            hamming256(&dct_hash_256(&img), &dct_hash_256(&b)) <= 40,
            "brightness moved hash too far"
        );
        let t = Manipulation::Tint {
            r: 1.15,
            g: 1.0,
            b: 0.85,
        }
        .apply(&img);
        assert!(hamming256(&dct_hash_256(&img), &dct_hash_256(&t)) <= 40);
    }

    #[test]
    fn resize_keeps_hash_close() {
        let img = photo(3);
        let r = Manipulation::ResizeRoundtrip(0.5).apply(&img);
        assert!(hamming256(&dct_hash_256(&img), &dct_hash_256(&r)) <= 30);
    }

    #[test]
    fn distinct_photos_are_far() {
        let mut min_dist = u32::MAX;
        for i in 0..8u64 {
            for j in (i + 1)..8 {
                let d = hamming256(&dct_hash_256(&photo(i)), &dct_hash_256(&photo(j)));
                min_dist = min_dist.min(d);
            }
        }
        assert!(
            min_dist > 60,
            "distinct photos should be far apart; min {min_dist}"
        );
    }

    #[test]
    fn matcher_verdicts() {
        let m = RobustMatcher::default();
        assert_eq!(m.verdict(0), MatchVerdict::Derived);
        assert_eq!(m.verdict(60), MatchVerdict::Derived);
        assert_eq!(m.verdict(75), MatchVerdict::Uncertain);
        assert_eq!(m.verdict(128), MatchVerdict::Distinct);
    }

    #[test]
    fn matcher_on_derived_and_distinct() {
        let m = RobustMatcher::default();
        let img = photo(4);
        let copy = Manipulation::Jpeg(60).apply(&img);
        assert_eq!(m.compare(&img, &copy), MatchVerdict::Derived);
        assert_eq!(m.compare(&img, &photo(5)), MatchVerdict::Distinct);
    }

    #[test]
    fn dhash_robust_to_compression() {
        let img = photo(6);
        let t = Manipulation::Jpeg(50).apply(&img);
        assert!(hamming64(dhash(&img), dhash(&t)) <= 10);
    }

    #[test]
    fn crop_search_finds_cropped_copies() {
        let m = RobustMatcher::default();
        let img = photo(7);
        // A 20% off-center crop defeats the plain comparison…
        let cropped = Manipulation::CropFraction {
            fraction: 0.2,
            seed: 3,
        }
        .apply(&img);
        assert_ne!(m.compare(&img, &cropped), MatchVerdict::Derived);
        // …but the crop search recovers it.
        assert_eq!(
            m.compare_with_crop_search(&img, &cropped),
            MatchVerdict::Derived
        );
        // And does not create false matches on distinct photos.
        assert_eq!(
            m.compare_with_crop_search(&img, &photo(3)),
            MatchVerdict::Distinct
        );
    }

    #[test]
    fn crop_search_handles_transcoded_crop() {
        let m = RobustMatcher::default();
        let img = photo(8);
        let attacked = Manipulation::Jpeg(60).apply(
            &Manipulation::CropFraction {
                fraction: 0.15,
                seed: 5,
            }
            .apply(&img),
        );
        assert_eq!(
            m.compare_with_crop_search(&img, &attacked),
            MatchVerdict::Derived
        );
    }

    #[test]
    fn hamming_symmetry_and_bounds() {
        let a = dct_hash_256(&photo(0));
        let b = dct_hash_256(&photo(1));
        assert_eq!(hamming256(&a, &b), hamming256(&b, &a));
        assert!(hamming256(&a, &b) <= 256);
    }
}
