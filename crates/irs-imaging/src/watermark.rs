//! DWT–DCT QIM watermarking.
//!
//! Carries the 96-bit IRS record identifier inside pixel data (§3.1
//! "Labeling": "a watermark that encodes the metadata into the pixel data
//! itself while causing little or no perceptible distortion"). The paper
//! cites the DWT–DCT family \[2, 6, 18, 24\]; this is a member of it:
//!
//! 1. One-level Haar DWT of the luma plane; the payload lives in the LL
//!    band, where JPEG's high-frequency quantization barely reaches.
//! 2. The LL band is split into 8×8 blocks; each block's DCT carries four
//!    payload bits via quantization index modulation (QIM) on low-mid
//!    frequency coefficients.
//! 3. The 96-bit identifier is CRC-32-framed and Hamming(7,4)-coded to 224
//!    bits ([`crate::ecc`]), then *tiled spatially*: the coded bit carried
//!    by a block depends only on the block's position modulo a 7×8-block
//!    tile, so any translation of the grid permutes tile phases rather than
//!    scrambling the payload. Extraction majority-votes across tile
//!    repetitions before ECC decode.
//! 4. Crop robustness: cropping misaligns the DWT/block grid, so the
//!    extractor scans 2×2 pixel parities × 8×8 LL block offsets (the
//!    expensive DCT passes) × 7×8 tile phases (cheap vote re-aggregations)
//!    and accepts the first CRC-valid decode. The 32-bit CRC makes a
//!    spurious accept vanishingly unlikely (≈ 14 000 candidates × 2⁻³²).
//!
//! "Because the identifier has relatively few bits, the watermark can be
//! made robust to many benign picture manipulations" — experiment E7
//! sweeps JPEG quality, crop fraction, tint, brightness, and noise.

use crate::dct::DctPlan;
use crate::dwt::{haar_forward, haar_inverse};
use crate::ecc;
use crate::raster::Image;
use crate::ImagingError;

/// Payload size carried by the watermark (the 96-bit record identifier).
pub const PAYLOAD_BYTES: usize = 12;

/// Coefficient slots (row-major index in the 8×8 DCT block) that carry one
/// bit each: (1,1), (1,2), (2,1), (2,2) — low-mid band, below JPEG's
/// aggressive quantization region but off the DC/gradient axis.
const SLOTS: [usize; 4] = [9, 10, 17, 18];

/// Spatial tile dimensions in blocks. One tile carries exactly one payload
/// copy: 7 × 8 blocks × 4 slots = 224 coded bits = `ecc::coded_len(12)`.
const TILE_X: usize = 7;
const TILE_Y: usize = 8;

/// Coded-bit index carried by slot `j` of the block at tile-relative
/// position (bx mod TILE_X, by mod TILE_Y). Depends only on spatial
/// position, never on enumeration order — the translation-invariance that
/// makes cropping survivable.
#[inline]
fn bit_index(bx: usize, by: usize, j: usize) -> usize {
    ((by % TILE_Y) * TILE_X + (bx % TILE_X)) * SLOTS.len() + j
}

/// Tunable watermark parameters.
///
/// ```
/// use irs_imaging::watermark::{embed, extract, WatermarkConfig};
/// use irs_imaging::PhotoGenerator;
///
/// let cfg = WatermarkConfig::default();
/// let photo = PhotoGenerator::new(7).generate(0, 256, 256);
/// let marked = embed(&photo, &[0xab; 12], &cfg).unwrap();
/// // Survives a JPEG transcode and a crop:
/// let reshared = irs_imaging::jpeg::transcode(&marked, 70)
///     .crop(11, 5, 230, 240).unwrap();
/// assert_eq!(extract(&reshared, &cfg).unwrap(), [0xab; 12]);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct WatermarkConfig {
    /// QIM step size. Larger = more robust, more visible. The default is
    /// calibrated so PSNR stays above ~38 dB while surviving JPEG q50.
    pub delta: f32,
}

impl Default for WatermarkConfig {
    fn default() -> Self {
        WatermarkConfig { delta: 30.0 }
    }
}

/// Minimum number of LL 8×8 blocks needed for one full payload copy.
fn min_blocks() -> usize {
    ecc::coded_len(PAYLOAD_BYTES).div_ceil(SLOTS.len())
}

/// Embed a 12-byte payload. Errors with
/// [`ImagingError::TooSmallForWatermark`] if the image cannot hold one full
/// payload copy (needs roughly ≥ 128×112 pixels).
pub fn embed(
    img: &Image,
    payload: &[u8; PAYLOAD_BYTES],
    cfg: &WatermarkConfig,
) -> Result<Image, ImagingError> {
    let w = img.width() as usize;
    let h = img.height() as usize;
    let luma = img.luma();
    let mut bands = haar_forward(&luma, w, h);
    let (llw, llh) = (bands.w, bands.h);
    let bx = llw / 8;
    let by = llh / 8;
    if bx * by < min_blocks() {
        return Err(ImagingError::TooSmallForWatermark);
    }
    let bits = ecc::encode(payload);
    debug_assert_eq!(bits.len(), TILE_X * TILE_Y * SLOTS.len());
    let plan = DctPlan::new(8);
    let mut block = [0.0f32; 64];
    for b in 0..bx * by {
        let (gx, gy) = (b % bx, b / bx);
        let ox = gx * 8;
        let oy = gy * 8;
        for y in 0..8 {
            for x in 0..8 {
                block[y * 8 + x] = bands.ll[(oy + y) * llw + ox + x];
            }
        }
        plan.forward_2d(&mut block);
        for (j, &slot) in SLOTS.iter().enumerate() {
            let bit = bits[bit_index(gx, gy, j)];
            block[slot] = qim_embed(block[slot], bit, cfg.delta);
        }
        plan.inverse_2d(&mut block);
        for y in 0..8 {
            for x in 0..8 {
                bands.ll[(oy + y) * llw + ox + x] = block[y * 8 + x];
            }
        }
    }
    let new_luma = haar_inverse(&bands, w, h, &luma);
    let mut out = img.clone();
    out.set_luma(&new_luma);
    Ok(out)
}

/// Extract the payload, scanning candidate alignments to survive cropping.
/// Returns [`ImagingError::WatermarkNotFound`] if no alignment yields a
/// CRC-valid payload.
pub fn extract(img: &Image, cfg: &WatermarkConfig) -> Result<[u8; PAYLOAD_BYTES], ImagingError> {
    let w = img.width();
    let h = img.height();
    let plan = DctPlan::new(8);
    for py in 0..2u32 {
        for px in 0..2u32 {
            if w <= px + 16 || h <= py + 16 {
                continue;
            }
            let sub = img
                .crop(px, py, w - px, h - py)
                .expect("parity crop in bounds");
            let sw = sub.width() as usize;
            let sh = sub.height() as usize;
            let luma = sub.luma();
            let bands = haar_forward(&luma, sw, sh);
            for dy in 0..8usize {
                for dx in 0..8usize {
                    if let Some(payload) =
                        try_alignment(&bands.ll, bands.w, bands.h, dx, dy, &plan, cfg)
                    {
                        return Ok(payload);
                    }
                }
            }
        }
    }
    Err(ImagingError::WatermarkNotFound)
}

/// Attempt a decode with the LL block grid anchored at (dx, dy): one
/// expensive DCT pass over all blocks, then a cheap vote re-aggregation for
/// each of the TILE_X × TILE_Y tile phases.
fn try_alignment(
    ll: &[f32],
    llw: usize,
    llh: usize,
    dx: usize,
    dy: usize,
    plan: &DctPlan,
    cfg: &WatermarkConfig,
) -> Option<[u8; PAYLOAD_BYTES]> {
    let nbits = ecc::coded_len(PAYLOAD_BYTES);
    if llw < dx + 8 || llh < dy + 8 {
        return None;
    }
    let bx = (llw - dx) / 8;
    let by = (llh - dy) / 8;
    if bx * by < min_blocks() {
        return None;
    }
    // Pass 1: decode every slot of every block once.
    let mut decoded: Vec<(bool, i32)> = Vec::with_capacity(bx * by * SLOTS.len());
    let mut block = [0.0f32; 64];
    for b in 0..bx * by {
        let ox = dx + (b % bx) * 8;
        let oy = dy + (b / bx) * 8;
        for y in 0..8 {
            for x in 0..8 {
                block[y * 8 + x] = ll[(oy + y) * llw + ox + x];
            }
        }
        plan.forward_2d(&mut block);
        for &slot in SLOTS.iter() {
            let (bit, margin) = qim_decode(block[slot], cfg.delta);
            let weight = 1 + (margin * 8.0 / cfg.delta) as i32; // soft vote 1..=5
            decoded.push((bit, weight));
        }
    }
    // Pass 2: the embedder's tile phase relative to this grid anchor is
    // unknown, so try all TILE_X × TILE_Y phase shifts.
    for pv in 0..TILE_Y {
        for pu in 0..TILE_X {
            let mut votes = vec![0i32; nbits];
            for b in 0..bx * by {
                let (gx, gy) = (b % bx, b / bx);
                for j in 0..SLOTS.len() {
                    let (bit, weight) = decoded[b * SLOTS.len() + j];
                    let idx = bit_index(gx + pu, gy + pv, j);
                    votes[idx] += if bit { weight } else { -weight };
                }
            }
            let bits: Vec<bool> = votes.iter().map(|&v| v > 0).collect();
            if let Some(v) = ecc::decode(&bits, PAYLOAD_BYTES) {
                let mut out = [0u8; PAYLOAD_BYTES];
                out.copy_from_slice(&v);
                return Some(out);
            }
        }
    }
    None
}

/// QIM embed: move `c` to the nearest point of the lattice for `bit`.
fn qim_embed(c: f32, bit: bool, delta: f32) -> f32 {
    let dither = if bit { delta / 4.0 } else { -delta / 4.0 };
    ((c - dither) / delta).round() * delta + dither
}

/// QIM decode: which lattice is closer, and by what margin.
fn qim_decode(c: f32, delta: f32) -> (bool, f32) {
    let d1 = (c - qim_embed(c, true, delta)).abs();
    let d0 = (c - qim_embed(c, false, delta)).abs();
    ((d1 < d0), (d0 - d1).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PhotoGenerator;
    use crate::manipulate::Manipulation;

    const PAYLOAD: [u8; 12] = [
        0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef, 0x10, 0x32, 0x54, 0x76,
    ];

    fn photo(seed: u64) -> Image {
        PhotoGenerator::new(seed).generate(0, 256, 256)
    }

    fn cfg() -> WatermarkConfig {
        WatermarkConfig::default()
    }

    #[test]
    fn qim_lattice_properties() {
        let delta = 30.0;
        for c in [-100.0f32, -7.3, 0.0, 12.9, 55.5, 200.0] {
            for bit in [false, true] {
                let e = qim_embed(c, bit, delta);
                // Moved by at most delta/2.
                assert!((e - c).abs() <= delta / 2.0 + 1e-3);
                let (d, margin) = qim_decode(e, delta);
                assert_eq!(d, bit, "c={c} bit={bit}");
                assert!(margin > delta / 3.0, "margin {margin}");
            }
        }
    }

    #[test]
    fn clean_roundtrip() {
        let img = photo(1);
        let marked = embed(&img, &PAYLOAD, &cfg()).unwrap();
        assert_eq!(extract(&marked, &cfg()).unwrap(), PAYLOAD);
    }

    #[test]
    fn imperceptibility() {
        let img = photo(2);
        let marked = embed(&img, &PAYLOAD, &cfg()).unwrap();
        let psnr = marked.psnr(&img).unwrap();
        assert!(psnr > 35.0, "watermark PSNR {psnr} dB too low");
    }

    #[test]
    fn unmarked_image_yields_not_found() {
        let img = photo(3);
        assert!(matches!(
            extract(&img, &cfg()),
            Err(ImagingError::WatermarkNotFound)
        ));
    }

    #[test]
    fn too_small_image_rejected() {
        let img = PhotoGenerator::new(4).generate(0, 64, 64);
        assert!(matches!(
            embed(&img, &PAYLOAD, &cfg()),
            Err(ImagingError::TooSmallForWatermark)
        ));
    }

    #[test]
    fn survives_jpeg_q70() {
        let img = photo(5);
        let marked = embed(&img, &PAYLOAD, &cfg()).unwrap();
        let transcoded = Manipulation::Jpeg(70).apply(&marked);
        assert_eq!(extract(&transcoded, &cfg()).unwrap(), PAYLOAD);
    }

    #[test]
    fn survives_even_crop() {
        let img = photo(6);
        let marked = embed(&img, &PAYLOAD, &cfg()).unwrap();
        // Crop 20% off, even offsets (no parity shift).
        let cropped = marked.crop(20, 12, 216, 220).unwrap();
        assert_eq!(extract(&cropped, &cfg()).unwrap(), PAYLOAD);
    }

    #[test]
    fn survives_odd_offset_crop() {
        let img = photo(7);
        let marked = embed(&img, &PAYLOAD, &cfg()).unwrap();
        let cropped = marked.crop(13, 7, 225, 231).unwrap();
        assert_eq!(extract(&cropped, &cfg()).unwrap(), PAYLOAD);
    }

    #[test]
    fn survives_tint() {
        let img = photo(8);
        let marked = embed(&img, &PAYLOAD, &cfg()).unwrap();
        let tinted = Manipulation::Tint {
            r: 1.08,
            g: 1.0,
            b: 0.94,
        }
        .apply(&marked);
        assert_eq!(extract(&tinted, &cfg()).unwrap(), PAYLOAD);
    }

    #[test]
    fn survives_brightness() {
        let img = photo(9);
        let marked = embed(&img, &PAYLOAD, &cfg()).unwrap();
        let bright = Manipulation::Brightness(15).apply(&marked);
        assert_eq!(extract(&bright, &cfg()).unwrap(), PAYLOAD);
    }

    #[test]
    fn distinct_payloads_distinct() {
        let img = photo(10);
        let other: [u8; 12] = [0xff; 12];
        let m1 = embed(&img, &PAYLOAD, &cfg()).unwrap();
        let m2 = embed(&img, &other, &cfg()).unwrap();
        assert_eq!(extract(&m1, &cfg()).unwrap(), PAYLOAD);
        assert_eq!(extract(&m2, &cfg()).unwrap(), other);
    }

    #[test]
    fn heavy_destruction_removes_watermark() {
        // §5 "direct attacks": enough distortion renders the watermark
        // unreadable (and the photo unsharable under IRS policy).
        let img = photo(11);
        let marked = embed(&img, &PAYLOAD, &cfg()).unwrap();
        let destroyed = Manipulation::Noise {
            sigma: 60.0,
            seed: 1,
        }
        .apply(&Manipulation::Jpeg(5).apply(&marked));
        assert!(extract(&destroyed, &cfg()).is_err());
    }
}
