//! Property tests on the imaging transforms: DCT/DWT inversion, image
//! operations, ECC, and label roundtrips over arbitrary inputs.

use irs_imaging::dct::DctPlan;
use irs_imaging::dwt::{haar_forward, haar_inverse};
use irs_imaging::ecc;
use irs_imaging::Image;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DCT-III(DCT-II(x)) = x for arbitrary signals and sizes.
    #[test]
    fn dct_roundtrip(values in prop::collection::vec(-300.0f32..300.0, 1..32)) {
        let n = values.len();
        let plan = DctPlan::new(n);
        let mut freq = vec![0.0f32; n];
        let mut back = vec![0.0f32; n];
        plan.forward(&values, &mut freq);
        plan.inverse(&freq, &mut back);
        for (a, b) in values.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    /// 2D DCT preserves energy (orthonormality) for random 8×8 blocks.
    #[test]
    fn dct2d_energy(block in prop::collection::vec(-255.0f32..255.0, 64..65)) {
        let plan = DctPlan::new(8);
        let mut b = block.clone();
        plan.forward_2d(&mut b);
        let e_in: f64 = block.iter().map(|&x| (x as f64).powi(2)).sum();
        let e_out: f64 = b.iter().map(|&x| (x as f64).powi(2)).sum();
        prop_assert!((e_in - e_out).abs() <= e_in.max(1.0) * 1e-3);
    }

    /// Haar DWT reconstructs arbitrary even-sized planes exactly.
    #[test]
    fn haar_roundtrip(w in 1usize..12, h in 1usize..12, seed in any::<u64>()) {
        let w = w * 2;
        let h = h * 2;
        let plane: Vec<f32> = (0..w * h)
            .map(|i| ((seed.wrapping_mul(i as u64 + 1) >> 16) % 256) as f32)
            .collect();
        let bands = haar_forward(&plane, w, h);
        let back = haar_inverse(&bands, w, h, &plane);
        for (a, b) in plane.iter().zip(back.iter()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    /// Crop of a crop equals the composed crop.
    #[test]
    fn crop_composes(
        seed in any::<u64>(),
        x1 in 0u32..8, y1 in 0u32..8,
        x2 in 0u32..4, y2 in 0u32..4,
    ) {
        let img = irs_imaging::PhotoGenerator::new(seed).generate(0, 32, 32);
        let once = img.crop(x1, y1, 16, 16).unwrap();
        let twice = once.crop(x2, y2, 8, 8).unwrap();
        let direct = img.crop(x1 + x2, y1 + y2, 8, 8).unwrap();
        prop_assert_eq!(twice, direct);
    }

    /// Image raw-buffer roundtrip.
    #[test]
    fn image_raw_roundtrip(w in 1u32..20, h in 1u32..20, fill in any::<u8>()) {
        let raw = vec![fill; (w * h * 3) as usize];
        let img = Image::from_raw(w, h, raw.clone()).unwrap();
        prop_assert_eq!(img.raw(), &raw[..]);
        prop_assert_eq!(img.get(w - 1, h - 1), [fill, fill, fill]);
    }

    /// ECC: clean decode inverts encode for any payload length we use.
    #[test]
    fn ecc_roundtrip(payload in prop::collection::vec(any::<u8>(), 1..24)) {
        let bits = ecc::encode(&payload);
        prop_assert_eq!(bits.len(), ecc::coded_len(payload.len()));
        prop_assert_eq!(ecc::decode(&bits, payload.len()), Some(payload));
    }

    /// ECC: one flipped bit anywhere still decodes.
    #[test]
    fn ecc_single_error(payload in prop::collection::vec(any::<u8>(), 1..16), pos in any::<prop::sample::Index>()) {
        let mut bits = ecc::encode(&payload);
        let i = pos.index(bits.len());
        bits[i] ^= true;
        prop_assert_eq!(ecc::decode(&bits, payload.len()), Some(payload));
    }

    /// Perceptual hash is invariant under identity and deterministic.
    #[test]
    fn phash_deterministic(seed in any::<u64>()) {
        let img = irs_imaging::PhotoGenerator::new(seed).generate(0, 64, 64);
        prop_assert_eq!(
            irs_imaging::phash::dct_hash_256(&img),
            irs_imaging::phash::dct_hash_256(&img.clone())
        );
    }
}
