//! # IRS — the Internet Revocation System
//!
//! A complete, from-scratch reproduction of *Global Content Revocation on
//! the Internet: A Case Study in Technology Ecosystem Transformation*
//! (Galstyan, McCauley, Farid, Ratnasamy, Shenker — HotNets '22).
//!
//! IRS lets the owner of a photograph **claim** it in a ledger at capture
//! time, **label** it (metadata + robust watermark), later **revoke** it,
//! and have every well-behaved browser, proxy, and content aggregator
//! **validate** the label before displaying, saving, or resharing the
//! photo. The paper proposes a two-phase deployment: a bootstrap phase
//! carried by privacy-focused browser vendors (with anonymizing proxies
//! and Bloom filters keeping latency and ledger load down) that grows the
//! ecosystem until incumbent content aggregators adopt IRS out of
//! self-interest — *technology ecosystem transformation*.
//!
//! This crate is a facade over the workspace:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`protocol`] | `irs-core` | identifiers, claims, revocation, labels, freshness proofs, wire codec |
//! | [`crypto`] | `irs-crypto` | SHA-256/512, HMAC, Ed25519 (RFC 8032) — built from scratch |
//! | [`filters`] | `irs-filters` | Bloom / counting / xor / fuse filters, delta updates |
//! | [`imaging`] | `irs-imaging` | synthetic photos, JPEG-style transcode, DWT–DCT watermark, perceptual hash |
//! | [`ledger`] | `irs-ledger` | the ledger service, appeals, adversarial variants, probes |
//! | [`proxy`] | `irs-proxy` | anonymizing proxy: cache + OR'd filters |
//! | [`browser`] | `irs-browser` | validation engine, page-load pipeline, scroll model |
//! | [`aggregator`] | `irs-aggregator` | eventual-solution upload pipeline + rechecks |
//! | [`attacks`] | `irs-attacks` | §5 attacks and defenses, runnable |
//! | [`tet`] | `irs-tet` | adoption-dynamics model of the TET argument |
//! | [`workload`] | `irs-workload` | populations, Zipf traces, page models |
//! | [`simnet`] | `irs-simnet` | deterministic discrete-event simulator |
//! | [`obs`] | `irs-obs` | lock-free metrics registry + span tracing |
//! | [`net`] | `irs-net` | real TCP ledger/proxy prototype |
//!
//! ## Quickstart
//!
//! ```
//! use irs::protocol::{Camera, TimestampAuthority, RevocationStatus};
//! use irs::protocol::wire::{Request, Response};
//! use irs::protocol::time::TimeMs;
//! use irs::ledger::{Ledger, LedgerConfig};
//! use irs::protocol::ids::LedgerId;
//!
//! // A ledger and a camera.
//! let mut ledger = Ledger::new(LedgerConfig::new(LedgerId(1)),
//!                              TimestampAuthority::from_seed(1));
//! let mut camera = Camera::new(7, 256, 256);
//!
//! // Claim a photo.
//! let shot = camera.capture(1_000);
//! let Response::Claimed { id, .. } =
//!     ledger.handle(Request::Claim(shot.claim), TimeMs(1_000)) else { panic!() };
//!
//! // Revoke it.
//! let revoke = irs::protocol::RevokeRequest::create(&shot.keypair, id, true, 0);
//! ledger.handle(Request::Revoke(revoke), TimeMs(2_000));
//!
//! // Validation now blocks it.
//! let Response::Status { status, .. } =
//!     ledger.handle(Request::Query { id }, TimeMs(3_000)) else { panic!() };
//! assert_eq!(status, RevocationStatus::Revoked);
//! ```

/// Core protocol types (re-export of `irs-core`).
pub mod protocol {
    pub use irs_core::*;
}

/// Cryptographic substrate (re-export of `irs-crypto`).
pub mod crypto {
    pub use irs_crypto::*;
}

/// Probabilistic filters (re-export of `irs-filters`).
pub mod filters {
    pub use irs_filters::*;
}

/// Imaging substrate (re-export of `irs-imaging`).
pub mod imaging {
    pub use irs_imaging::*;
}

/// Ledger service (re-export of `irs-ledger`).
pub mod ledger {
    pub use irs_ledger::*;
}

/// Anonymizing proxy (re-export of `irs-proxy`).
pub mod proxy {
    pub use irs_proxy::*;
}

/// Browser-side support (re-export of `irs-browser`).
pub mod browser {
    pub use irs_browser::*;
}

/// Content aggregator (re-export of `irs-aggregator`).
pub mod aggregator {
    pub use irs_aggregator::*;
}

/// Attack scenarios (re-export of `irs-attacks`).
pub mod attacks {
    pub use irs_attacks::*;
}

/// TET adoption dynamics (re-export of `irs-tet`).
pub mod tet {
    pub use irs_tet::*;
}

/// Workload generation (re-export of `irs-workload`).
pub mod workload {
    pub use irs_workload::*;
}

/// Discrete-event simulation (re-export of `irs-simnet`).
pub mod simnet {
    pub use irs_simnet::*;
}

/// Observability: metrics registry + span tracing (re-export of `irs-obs`).
pub mod obs {
    pub use irs_obs::*;
}

/// Real TCP prototype (re-export of `irs-net`).
pub mod net {
    pub use irs_net::*;
}
